//! Conjunctive content-based filters.
//!
//! A [`Filter`] is a conjunction of [`Constraint`]s over distinct attribute
//! names, exactly like the subscriptions in the paper:
//! `(service = "parking"), (location ∈ {…}), (cost < 3)`.
//!
//! Filters are the unit of subscription, of routing-table entries and of the
//! covering/merging optimizations used by the Rebeca routing strategies.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::constraint::Constraint;
use crate::notification::Notification;
use crate::value::Value;

/// A conjunction of per-attribute constraints.
///
/// The empty filter matches every notification (it is the *universal* filter
/// used to model flooding).
///
/// # Examples
///
/// ```
/// use rebeca_filter::{Filter, Constraint, Notification};
///
/// let parking_nearby = Filter::new()
///     .with("service", Constraint::Eq("parking".into()))
///     .with("cost", Constraint::Lt(3.into()));
///
/// let n = Notification::builder()
///     .attr("service", "parking")
///     .attr("cost", 2)
///     .build();
/// assert!(parking_nearby.matches(&n));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct Filter {
    constraints: BTreeMap<String, Constraint>,
}

impl Filter {
    /// Creates the universal filter (matches everything).
    pub fn new() -> Self {
        Self::default()
    }

    /// The universal filter, matching every notification.  Used to express
    /// flooding as a degenerate subscription.
    pub fn universal() -> Self {
        Self::default()
    }

    /// Adds (or replaces) the constraint for one attribute, consuming `self`.
    pub fn with(mut self, attribute: impl Into<String>, constraint: Constraint) -> Self {
        self.constraints.insert(attribute.into(), constraint);
        self
    }

    /// Adds (or replaces) the constraint for one attribute in place.
    pub fn set(&mut self, attribute: impl Into<String>, constraint: Constraint) {
        self.constraints.insert(attribute.into(), constraint);
    }

    /// Removes the constraint on `attribute`, if any, and returns it.
    pub fn remove(&mut self, attribute: &str) -> Option<Constraint> {
        self.constraints.remove(attribute)
    }

    /// Returns the constraint on `attribute`, if any.
    pub fn constraint(&self, attribute: &str) -> Option<&Constraint> {
        self.constraints.get(attribute)
    }

    /// Iterates over `(attribute, constraint)` pairs in attribute order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Constraint)> {
        self.constraints.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of constrained attributes.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// `true` when this is the universal filter.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Evaluates the filter against a notification.
    ///
    /// Every constrained attribute must be present in the notification and
    /// satisfy its constraint (standard conjunctive semantics).
    pub fn matches(&self, notification: &Notification) -> bool {
        self.constraints.iter().all(|(name, constraint)| {
            notification
                .get(name)
                .map(|value| constraint.matches_value(value))
                .unwrap_or(false)
        })
    }

    /// Returns `true` when this filter provably accepts every notification
    /// the other filter accepts (the *covering* relation, written
    /// `self ⊇ other` in the paper).
    ///
    /// For conjunctive filters, `F1` covers `F2` iff every attribute
    /// constrained by `F1` is also constrained by `F2` with a constraint
    /// whose accepted value set is included in `F1`'s.  The per-attribute
    /// check is delegated to [`Constraint::covers`], which is sound but not
    /// complete; a `false` result therefore means "not provably covering".
    pub fn covers(&self, other: &Filter) -> bool {
        self.constraints.iter().all(|(name, c1)| {
            other
                .constraint(name)
                .map(|c2| c1.covers(c2))
                .unwrap_or(false)
        })
    }

    /// Returns `true` when the two filters may both match some notification.
    /// Conservative: `true` when an overlap cannot be ruled out.
    pub fn overlaps(&self, other: &Filter) -> bool {
        self.constraints.iter().all(|(name, c1)| {
            other
                .constraint(name)
                .map(|c2| c1.overlaps(c2))
                .unwrap_or(true)
        })
    }

    /// Identity on the constraint structure: `true` when both filters
    /// constrain the same attributes with equal constraints.
    pub fn is_identical(&self, other: &Filter) -> bool {
        self == other
    }

    /// Attempts a *perfect merge* of two filters (Mühl-style merging used by
    /// Rebeca's merging routing strategy).
    ///
    /// Two filters can be perfectly merged when they constrain the same set
    /// of attributes and differ in **at most one** attribute whose
    /// constraints can be combined into a single constraint accepting
    /// exactly the union of the two accepted sets.  When one filter covers
    /// the other, the covering filter is returned.
    ///
    /// Returns `None` when no perfect merger exists.
    pub fn try_merge(&self, other: &Filter) -> Option<Filter> {
        if self.covers(other) {
            return Some(self.clone());
        }
        if other.covers(self) {
            return Some(other.clone());
        }
        // Same attribute sets required for a perfect merger of conjunctions.
        if self.constraints.len() != other.constraints.len()
            || !self
                .constraints
                .keys()
                .all(|k| other.constraints.contains_key(k))
        {
            return None;
        }
        let differing: Vec<&String> = self
            .constraints
            .iter()
            .filter(|(k, c)| other.constraints.get(*k) != Some(c))
            .map(|(k, _)| k)
            .collect();
        if differing.len() != 1 {
            return None;
        }
        let attr = differing[0];
        let merged_constraint =
            merge_constraints(&self.constraints[attr], &other.constraints[attr])?;
        let mut merged = self.clone();
        merged.set(attr.clone(), merged_constraint);
        Some(merged)
    }
}

/// Merges two constraints into one accepting exactly the union of their
/// accepted sets, when such a single constraint exists.
fn merge_constraints(a: &Constraint, b: &Constraint) -> Option<Constraint> {
    use Constraint::*;
    if a.covers(b) {
        return Some(a.clone());
    }
    if b.covers(a) {
        return Some(b.clone());
    }
    // Finite value sets merge into their union.
    if let (Some(s1), Some(s2)) = (a.as_value_set(), b.as_value_set()) {
        let union: std::collections::BTreeSet<Value> = s1.union(&s2).cloned().collect();
        return Some(In(union));
    }
    match (a, b) {
        // Adjacent or overlapping intervals merge into their hull when the
        // hull contains no gap.
        (Between(lo1, hi1), Between(lo2, hi2)) => {
            let (first_hi, second_lo) = if le(lo1, lo2) { (hi1, lo2) } else { (hi2, lo1) };
            if ge(first_hi, second_lo) || adjacent_ints(first_hi, second_lo) {
                let lo = if le(lo1, lo2) { lo1 } else { lo2 };
                let hi = if ge(hi1, hi2) { hi1 } else { hi2 };
                Some(Between(lo.clone(), hi.clone()))
            } else {
                None
            }
        }
        // Complementary half-lines (x < a ∪ x ≥ b with b ≤ a) would merge
        // into "any numeric value", but the data model is dynamically typed
        // and has no such constraint, so an exact merger does not exist and
        // we decline (keeping `try_merge` a *perfect* merge operator).
        _ => None,
    }
}

fn le(a: &Value, b: &Value) -> bool {
    matches!(
        a.partial_cmp_value(b),
        Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
    )
}
fn ge(a: &Value, b: &Value) -> bool {
    matches!(
        a.partial_cmp_value(b),
        Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
    )
}

/// `true` when `a` and `b` are integers and `b == a + 1` (so the intervals
/// `[.., a]` and `[b, ..]` are adjacent without a gap).
fn adjacent_ints(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Int(a), Value::Int(b)) => *b == a + 1,
        _ => false,
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.constraints.is_empty() {
            return write!(f, "(true)");
        }
        for (i, (name, c)) in self.constraints.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "({name} {c})")?;
        }
        Ok(())
    }
}

impl FromIterator<(String, Constraint)> for Filter {
    fn from_iter<T: IntoIterator<Item = (String, Constraint)>>(iter: T) -> Self {
        Filter {
            constraints: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parking_filter(max_cost: i64) -> Filter {
        Filter::new()
            .with("service", Constraint::Eq("parking".into()))
            .with("cost", Constraint::Lt(max_cost.into()))
    }

    fn parking_notification(cost: i64) -> Notification {
        Notification::builder()
            .attr("service", "parking")
            .attr("cost", cost)
            .attr("location", Value::Location(4))
            .build()
    }

    #[test]
    fn universal_filter_matches_everything() {
        let f = Filter::universal();
        assert!(f.matches(&Notification::new()));
        assert!(f.matches(&parking_notification(10)));
        assert!(f.is_empty());
    }

    #[test]
    fn conjunction_requires_all_constraints() {
        let f = parking_filter(3);
        assert!(f.matches(&parking_notification(2)));
        assert!(!f.matches(&parking_notification(5)));
        let missing = Notification::builder().attr("service", "parking").build();
        assert!(!f.matches(&missing));
    }

    #[test]
    fn paper_example_subscription() {
        // (service = "parking"), (location ∈ {4,5}), (cost < 3)
        let f = Filter::new()
            .with("service", Constraint::Eq("parking".into()))
            .with("location", Constraint::any_location_of([4, 5]))
            .with("cost", Constraint::Lt(3.into()));
        assert!(f.matches(&parking_notification(2)));
        let far_away = parking_notification(2).with_attr("location", Value::Location(9));
        assert!(!f.matches(&far_away));
    }

    #[test]
    fn covering_requires_weaker_constraints_on_fewer_attributes() {
        let wide = parking_filter(10);
        let narrow = parking_filter(3);
        assert!(wide.covers(&narrow));
        assert!(!narrow.covers(&wide));

        // A filter constraining fewer attributes covers one constraining more.
        let service_only = Filter::new().with("service", Constraint::Eq("parking".into()));
        assert!(service_only.covers(&narrow));
        assert!(!narrow.covers(&service_only));

        // Universal filter covers everything.
        assert!(Filter::universal().covers(&narrow));
        assert!(!narrow.covers(&Filter::universal()));
    }

    #[test]
    fn covering_is_reflexive() {
        let f = parking_filter(3);
        assert!(f.covers(&f));
        assert!(Filter::universal().covers(&Filter::universal()));
    }

    #[test]
    fn covering_implies_matching_inclusion() {
        let wide = parking_filter(10);
        let narrow = parking_filter(3);
        for cost in 0..10 {
            let n = parking_notification(cost);
            if narrow.matches(&n) {
                assert!(wide.matches(&n));
            }
        }
    }

    #[test]
    fn overlap_is_conservative_but_detects_disjoint_point_sets() {
        let f1 = Filter::new().with("service", Constraint::Eq("parking".into()));
        let f2 = Filter::new().with("service", Constraint::Eq("weather".into()));
        assert!(!f1.overlaps(&f2));
        let f3 = Filter::new().with("cost", Constraint::Lt(3.into()));
        assert!(f1.overlaps(&f3));
    }

    #[test]
    fn merge_returns_cover_when_one_covers_the_other() {
        let wide = parking_filter(10);
        let narrow = parking_filter(3);
        assert_eq!(wide.try_merge(&narrow), Some(wide.clone()));
        assert_eq!(narrow.try_merge(&wide), Some(wide));
    }

    #[test]
    fn merge_unions_location_sets() {
        let f1 = Filter::new()
            .with("service", Constraint::Eq("parking".into()))
            .with("location", Constraint::any_location_of([1, 2]));
        let f2 = Filter::new()
            .with("service", Constraint::Eq("parking".into()))
            .with("location", Constraint::any_location_of([3]));
        let merged = f1.try_merge(&f2).expect("perfect merger must exist");
        assert_eq!(
            merged.constraint("location"),
            Some(&Constraint::any_location_of([1, 2, 3]))
        );
        // The merger covers both inputs.
        assert!(merged.covers(&f1));
        assert!(merged.covers(&f2));
    }

    #[test]
    fn merge_fails_when_two_attributes_differ() {
        let f1 = Filter::new()
            .with("a", Constraint::Eq(1.into()))
            .with("b", Constraint::Eq(1.into()));
        let f2 = Filter::new()
            .with("a", Constraint::Eq(2.into()))
            .with("b", Constraint::Eq(2.into()));
        assert_eq!(f1.try_merge(&f2), None);
    }

    #[test]
    fn merge_fails_when_attribute_sets_differ_without_covering() {
        let f1 = Filter::new().with("a", Constraint::Eq(1.into()));
        let f2 = Filter::new()
            .with("a", Constraint::Eq(2.into()))
            .with("b", Constraint::Eq(2.into()));
        assert_eq!(f1.try_merge(&f2), None);
    }

    #[test]
    fn merge_adjacent_integer_intervals() {
        let f1 = Filter::new().with("x", Constraint::Between(0.into(), 5.into()));
        let f2 = Filter::new().with("x", Constraint::Between(6.into(), 10.into()));
        let merged = f1.try_merge(&f2).expect("adjacent intervals merge");
        assert_eq!(
            merged.constraint("x"),
            Some(&Constraint::Between(0.into(), 10.into()))
        );
    }

    #[test]
    fn merge_disjoint_intervals_with_gap_fails() {
        let f1 = Filter::new().with("x", Constraint::Between(0.into(), 5.into()));
        let f2 = Filter::new().with("x", Constraint::Between(8.into(), 10.into()));
        assert_eq!(f1.try_merge(&f2), None);
    }

    #[test]
    fn merge_complementary_half_lines_is_declined() {
        // x < 5 ∪ x ≥ 5 covers all numbers but not all values (the data model
        // is dynamically typed), so no *perfect* merger exists.
        let f1 = Filter::new().with("x", Constraint::Lt(5.into()));
        let f2 = Filter::new().with("x", Constraint::Ge(5.into()));
        assert_eq!(f1.try_merge(&f2), None);
    }

    #[test]
    fn set_and_remove_constraints() {
        let mut f = Filter::new();
        f.set("a", Constraint::Eq(1.into()));
        assert_eq!(f.len(), 1);
        assert_eq!(f.remove("a"), Some(Constraint::Eq(1.into())));
        assert!(f.is_empty());
        assert_eq!(f.remove("a"), None);
    }

    #[test]
    fn display_is_readable() {
        let f = parking_filter(3);
        assert_eq!(f.to_string(), "(cost < 3) ∧ (service = \"parking\")");
        assert_eq!(Filter::universal().to_string(), "(true)");
    }

    #[test]
    fn from_iterator_builds_filter() {
        let f: Filter = vec![("a".to_string(), Constraint::Exists)]
            .into_iter()
            .collect();
        assert_eq!(f.constraint("a"), Some(&Constraint::Exists));
    }
}
