//! Movement graphs and the `ploc` (possible future locations) function.
//!
//! A movement graph (Figure 7 of the paper) formalizes which locations can be
//! reached from which locations in one movement step of the consumer.  Given
//! a current location `x` and a number of steps `q`, `ploc(x, q)` is the set
//! of locations the consumer could be in after at most `q` steps — the
//! monotonically growing "uncertainty ball" that the logical-mobility layer
//! subscribes to at brokers further away from the consumer.

use std::collections::{BTreeSet, VecDeque};

use serde::{Deserialize, Serialize};

use crate::space::{LocationId, LocationSpace};

/// An undirected movement graph over a [`LocationSpace`].
///
/// Staying at the current location is always possible (the paper requires
/// `ploc(x, q) ⊆ ploc(x, q+1)`, Equation 1), so implicit self-loops are
/// assumed by [`MovementGraph::ploc`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MovementGraph {
    space: LocationSpace,
    adjacency: Vec<BTreeSet<u32>>,
}

impl MovementGraph {
    /// Creates a movement graph with no edges over the given space.
    pub fn new(space: LocationSpace) -> Self {
        let n = space.len();
        Self {
            space,
            adjacency: vec![BTreeSet::new(); n],
        }
    }

    /// The underlying location space.
    pub fn space(&self) -> &LocationSpace {
        &self.space
    }

    /// Number of locations.
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// `true` when the graph has no locations.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Adds an undirected edge between two locations.
    ///
    /// # Panics
    ///
    /// Panics when either id is not part of the location space.
    pub fn add_edge(&mut self, a: LocationId, b: LocationId) {
        assert!(self.space.contains(a), "unknown location {a}");
        assert!(self.space.contains(b), "unknown location {b}");
        if a != b {
            self.adjacency[a.0 as usize].insert(b.0);
            self.adjacency[b.0 as usize].insert(a.0);
        }
    }

    /// Returns `true` when the two locations are adjacent (one movement step
    /// apart).
    pub fn has_edge(&self, a: LocationId, b: LocationId) -> bool {
        self.adjacency
            .get(a.0 as usize)
            .is_some_and(|s| s.contains(&b.0))
    }

    /// The direct neighbours of a location.
    pub fn neighbours(&self, x: LocationId) -> impl Iterator<Item = LocationId> + '_ {
        self.adjacency
            .get(x.0 as usize)
            .into_iter()
            .flat_map(|s| s.iter().map(|&i| LocationId(i)))
    }

    /// All location ids of the underlying space.
    pub fn all_locations(&self) -> BTreeSet<LocationId> {
        self.space.ids().collect()
    }

    /// `ploc(x, q)`: the set of locations reachable from `x` in **at most**
    /// `q` movement steps (always includes `x` itself).
    ///
    /// The result is monotone in `q` (Equation 1 of the paper) and converges
    /// to the connected component of `x` once `q` is at least the component's
    /// diameter.
    pub fn ploc(&self, x: LocationId, q: usize) -> BTreeSet<LocationId> {
        let mut visited: BTreeSet<LocationId> = BTreeSet::new();
        if !self.space.contains(x) {
            return visited;
        }
        let mut frontier: VecDeque<(LocationId, usize)> = VecDeque::new();
        visited.insert(x);
        frontier.push_back((x, 0));
        while let Some((node, depth)) = frontier.pop_front() {
            if depth == q {
                continue;
            }
            for n in self.neighbours(node) {
                if visited.insert(n) {
                    frontier.push_back((n, depth + 1));
                }
            }
        }
        visited
    }

    /// Shortest-path distance (number of movement steps) between two
    /// locations, or `None` when they are not connected.
    pub fn distance(&self, a: LocationId, b: LocationId) -> Option<usize> {
        if !self.space.contains(a) || !self.space.contains(b) {
            return None;
        }
        if a == b {
            return Some(0);
        }
        let mut visited = BTreeSet::new();
        let mut frontier = VecDeque::new();
        visited.insert(a);
        frontier.push_back((a, 0usize));
        while let Some((node, d)) = frontier.pop_front() {
            for n in self.neighbours(node) {
                if n == b {
                    return Some(d + 1);
                }
                if visited.insert(n) {
                    frontier.push_back((n, d + 1));
                }
            }
        }
        None
    }

    /// The eccentricity-based diameter of the graph (longest shortest path),
    /// or 0 for graphs with fewer than two locations.  Unreachable pairs are
    /// ignored.
    pub fn diameter(&self) -> usize {
        let ids: Vec<LocationId> = self.space.ids().collect();
        let mut max = 0;
        for &a in &ids {
            for &b in &ids {
                if let Some(d) = self.distance(a, b) {
                    max = max.max(d);
                }
            }
        }
        max
    }

    /// `true` when every location can reach every other location.
    pub fn is_connected(&self) -> bool {
        match self.space.ids().next() {
            None => true,
            Some(start) => self.ploc(start, self.len()).len() == self.len(),
        }
    }

    // ----- builders used by tests, examples and the experiment harness -----

    /// The four-location movement graph of Figure 7 of the paper:
    /// locations `a, b, c, d` with edges a–b, a–c, b–d, c–d
    /// (a square; `a` and `d` are opposite corners).
    ///
    /// This graph reproduces the `ploc` values of Table 1:
    /// `ploc(a,1) = {a,b,c}`, `ploc(a,2) = {a,b,c,d}`, etc.
    pub fn paper_example() -> Self {
        let mut space = LocationSpace::new();
        let a = space.add("a");
        let b = space.add("b");
        let c = space.add("c");
        let d = space.add("d");
        let mut g = Self::new(space);
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        g
    }

    /// A path graph `L0 – L1 – … – L{n-1}` (a street of `n` blocks).
    pub fn line(n: usize) -> Self {
        let space = LocationSpace::with_size(n);
        let mut g = Self::new(space);
        for i in 1..n {
            g.add_edge(LocationId(i as u32 - 1), LocationId(i as u32));
        }
        g
    }

    /// A cycle graph over `n` locations.
    pub fn ring(n: usize) -> Self {
        let mut g = Self::line(n);
        if n > 2 {
            g.add_edge(LocationId(0), LocationId(n as u32 - 1));
        }
        g
    }

    /// A `rows × cols` grid (city blocks); location `(r, c)` has id
    /// `r * cols + c`.
    pub fn grid(rows: usize, cols: usize) -> Self {
        let space = LocationSpace::with_size(rows * cols);
        let mut g = Self::new(space);
        let id = |r: usize, c: usize| LocationId((r * cols + c) as u32);
        for r in 0..rows {
            for c in 0..cols {
                if r + 1 < rows {
                    g.add_edge(id(r, c), id(r + 1, c));
                }
                if c + 1 < cols {
                    g.add_edge(id(r, c), id(r, c + 1));
                }
            }
        }
        g
    }

    /// A complete graph over `n` locations (every location reachable from
    /// every other in one step).
    pub fn complete(n: usize) -> Self {
        let space = LocationSpace::with_size(n);
        let mut g = Self::new(space);
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(LocationId(i as u32), LocationId(j as u32));
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(x: u32) -> LocationId {
        LocationId(x)
    }

    #[test]
    fn paper_example_reproduces_table_1() {
        let g = MovementGraph::paper_example();
        let a = g.space().id("a").unwrap();
        let b = g.space().id("b").unwrap();
        let c = g.space().id("c").unwrap();
        let d = g.space().id("d").unwrap();

        let set = |v: &[LocationId]| v.iter().copied().collect::<BTreeSet<_>>();

        // Row t = 0: ploc(x, 0) = {x}
        for &x in &[a, b, c, d] {
            assert_eq!(g.ploc(x, 0), set(&[x]));
        }
        // Row t = 1
        assert_eq!(g.ploc(a, 1), set(&[a, b, c]));
        assert_eq!(g.ploc(b, 1), set(&[a, b, d]));
        assert_eq!(g.ploc(c, 1), set(&[a, c, d]));
        assert_eq!(g.ploc(d, 1), set(&[b, c, d]));
        // Rows t = 2 and t = 3: the whole space
        for &x in &[a, b, c, d] {
            assert_eq!(g.ploc(x, 2), set(&[a, b, c, d]));
            assert_eq!(g.ploc(x, 3), set(&[a, b, c, d]));
        }
    }

    #[test]
    fn ploc_is_monotone_in_q() {
        let g = MovementGraph::grid(4, 4);
        for x in g.space().ids() {
            for q in 0..6 {
                let small = g.ploc(x, q);
                let large = g.ploc(x, q + 1);
                assert!(small.is_subset(&large), "ploc not monotone at q={q}");
            }
        }
    }

    #[test]
    fn ploc_converges_to_all_locations_on_connected_graphs() {
        let g = MovementGraph::ring(6);
        let all = g.all_locations();
        assert_eq!(g.ploc(id(0), g.diameter()), all);
    }

    #[test]
    fn ploc_of_unknown_location_is_empty() {
        let g = MovementGraph::line(3);
        assert!(g.ploc(id(99), 2).is_empty());
    }

    #[test]
    fn line_distances_and_diameter() {
        let g = MovementGraph::line(5);
        assert_eq!(g.distance(id(0), id(4)), Some(4));
        assert_eq!(g.distance(id(2), id(2)), Some(0));
        assert_eq!(g.diameter(), 4);
        assert!(g.is_connected());
    }

    #[test]
    fn disconnected_graph_reports_unreachable_pairs() {
        let mut space = LocationSpace::new();
        let a = space.add("a");
        let b = space.add("b");
        space.add("isolated");
        let mut g = MovementGraph::new(space);
        g.add_edge(a, b);
        assert_eq!(g.distance(a, LocationId(2)), None);
        assert!(!g.is_connected());
    }

    #[test]
    fn grid_structure() {
        let g = MovementGraph::grid(3, 3);
        assert_eq!(g.len(), 9);
        // centre has 4 neighbours
        assert_eq!(g.neighbours(id(4)).count(), 4);
        // corner has 2 neighbours
        assert_eq!(g.neighbours(id(0)).count(), 2);
        assert_eq!(g.diameter(), 4);
    }

    #[test]
    fn complete_graph_has_diameter_one() {
        let g = MovementGraph::complete(5);
        assert_eq!(g.diameter(), 1);
        assert_eq!(g.ploc(id(0), 1), g.all_locations());
    }

    #[test]
    fn self_edges_are_ignored() {
        let mut g = MovementGraph::line(2);
        g.add_edge(id(0), id(0));
        assert!(!g.has_edge(id(0), id(0)));
        assert!(g.has_edge(id(0), id(1)));
    }

    #[test]
    #[should_panic(expected = "unknown location")]
    fn adding_edge_with_unknown_location_panics() {
        let mut g = MovementGraph::line(2);
        g.add_edge(id(0), id(7));
    }

    #[test]
    fn ring_wraps_around() {
        let g = MovementGraph::ring(6);
        assert!(g.has_edge(id(0), id(5)));
        assert_eq!(g.distance(id(0), id(3)), Some(3));
        assert_eq!(g.distance(id(0), id(5)), Some(1));
    }
}
