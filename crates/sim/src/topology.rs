//! Abstract broker-network topologies.
//!
//! The paper assumes an acyclic, connected communication topology (Figure 1).
//! A [`Topology`] is a purely structural description — node count plus an
//! edge list — that the broker crate turns into a concrete simulated or
//! threaded network.  Builders cover the shapes used in the paper's figures
//! and evaluation (lines, stars, balanced trees, the Figure 5 relocation
//! scenario) plus random trees for property tests.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A structural description of a broker network: `n` nodes (numbered
/// `0..n`) and undirected edges.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    nodes: usize,
    edges: Vec<(usize, usize)>,
}

impl Topology {
    /// Creates a topology with `nodes` nodes and no edges.
    pub fn new(nodes: usize) -> Self {
        Self {
            nodes,
            edges: Vec::new(),
        }
    }

    /// Adds an undirected edge.
    ///
    /// # Panics
    ///
    /// Panics when an endpoint is out of range, the edge is a self-loop, or
    /// the edge already exists.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        assert!(
            a < self.nodes && b < self.nodes,
            "edge endpoint out of range"
        );
        assert_ne!(a, b, "self loops are not allowed");
        assert!(!self.has_edge(a, b), "duplicate edge {a} - {b}");
        self.edges.push((a.min(b), a.max(b)));
    }

    /// `true` when the undirected edge exists.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        let (a, b) = (a.min(b), a.max(b));
        self.edges.contains(&(a, b))
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes
    }

    /// `true` when the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes == 0
    }

    /// The undirected edges.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Neighbours of a node.
    pub fn neighbours(&self, node: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter_map(|&(a, b)| {
                if a == node {
                    Some(b)
                } else if b == node {
                    Some(a)
                } else {
                    None
                }
            })
            .collect()
    }

    /// `true` when the topology is connected and acyclic (a tree), the shape
    /// the paper assumes for the broker graph.
    pub fn is_tree(&self) -> bool {
        if self.nodes == 0 {
            return true;
        }
        if self.edges.len() != self.nodes - 1 {
            return false;
        }
        self.is_connected()
    }

    /// `true` when every node is reachable from node 0.
    pub fn is_connected(&self) -> bool {
        if self.nodes == 0 {
            return true;
        }
        let mut seen = vec![false; self.nodes];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(n) = stack.pop() {
            for m in self.neighbours(n) {
                if !seen[m] {
                    seen[m] = true;
                    stack.push(m);
                }
            }
        }
        seen.into_iter().all(|s| s)
    }

    /// The unique path between two nodes of a tree topology, endpoints
    /// included.  Returns `None` when no path exists.
    pub fn path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        if from >= self.nodes || to >= self.nodes {
            return None;
        }
        if from == to {
            return Some(vec![from]);
        }
        let mut parent = vec![usize::MAX; self.nodes];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(from);
        parent[from] = from;
        while let Some(n) = queue.pop_front() {
            for m in self.neighbours(n) {
                if parent[m] == usize::MAX {
                    parent[m] = n;
                    if m == to {
                        let mut path = vec![to];
                        let mut cur = to;
                        while cur != from {
                            cur = parent[cur];
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(m);
                }
            }
        }
        None
    }

    // ----- builders -----

    /// A line `0 – 1 – … – n-1` (the Figure 6 setting generalised).
    pub fn line(n: usize) -> Self {
        let mut t = Self::new(n);
        for i in 1..n {
            t.add_edge(i - 1, i);
        }
        t
    }

    /// A star with node 0 at the centre.
    pub fn star(leaves: usize) -> Self {
        let mut t = Self::new(leaves + 1);
        for i in 1..=leaves {
            t.add_edge(0, i);
        }
        t
    }

    /// A balanced tree of the given branching factor and depth (depth 0 is a
    /// single root).  Node 0 is the root; children are numbered breadth-first.
    pub fn balanced_tree(branching: usize, depth: usize) -> Self {
        assert!(branching >= 1, "branching factor must be at least 1");
        let mut nodes = 1usize;
        let mut level = 1usize;
        for _ in 0..depth {
            level *= branching;
            nodes += level;
        }
        let mut t = Self::new(nodes);
        // Parent of node i (i > 0) in a breadth-first numbering.
        for i in 1..nodes {
            let parent = (i - 1) / branching;
            t.add_edge(parent, i);
        }
        t
    }

    /// The eight-broker topology of Figure 5 of the paper (the relocation
    /// walk-through).  Node numbering follows the figure: brokers 1..=8 map
    /// to indices 0..=7.  The old border broker is B6 (index 5), the new
    /// border broker is B1 (index 0) and the junction broker is B4 (index 3).
    ///
    /// Structure (a tree):
    /// B1–B2, B2–B3, B3–B4, B4–B5, B5–B6, B4–B7, B7–B8.
    /// The producer attaches at B8 and reaches B6 through B7/B4/B5, so the
    /// old and new delivery paths meet at B4 as in the figure.
    pub fn figure5() -> Self {
        let mut t = Self::new(8);
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (3, 6), (6, 7)] {
            t.add_edge(a, b);
        }
        t
    }

    /// A uniformly random tree over `n` nodes (each node `i > 0` picks a
    /// random parent among `0..i`).
    pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let mut t = Self::new(n);
        for i in 1..n {
            let parent = rng.gen_range(0..i);
            t.add_edge(parent, i);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn line_is_a_tree_with_a_simple_path() {
        let t = Topology::line(5);
        assert!(t.is_tree());
        assert_eq!(t.path(0, 4), Some(vec![0, 1, 2, 3, 4]));
        assert_eq!(t.path(2, 2), Some(vec![2]));
        assert_eq!(t.neighbours(2), vec![1, 3]);
    }

    #[test]
    fn star_structure() {
        let t = Topology::star(4);
        assert_eq!(t.len(), 5);
        assert!(t.is_tree());
        assert_eq!(t.neighbours(0).len(), 4);
        assert_eq!(t.path(1, 2), Some(vec![1, 0, 2]));
    }

    #[test]
    fn balanced_tree_counts_nodes_correctly() {
        let t = Topology::balanced_tree(2, 3);
        assert_eq!(t.len(), 1 + 2 + 4 + 8);
        assert!(t.is_tree());
        let t3 = Topology::balanced_tree(3, 2);
        assert_eq!(t3.len(), 1 + 3 + 9);
        assert!(t3.is_tree());
    }

    #[test]
    fn figure5_topology_matches_the_paper_layout() {
        let t = Topology::figure5();
        assert_eq!(t.len(), 8);
        assert!(t.is_tree());
        // Old path from producer's broker B8 (7) to old border broker B6 (5):
        assert_eq!(t.path(7, 5), Some(vec![7, 6, 3, 4, 5]));
        // New path from B8 (7) to new border broker B1 (0):
        assert_eq!(t.path(7, 0), Some(vec![7, 6, 3, 2, 1, 0]));
        // The two paths share B8, B7 and the junction B4 (index 3).
    }

    #[test]
    fn random_trees_are_trees() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for n in 1..20 {
            let t = Topology::random_tree(n, &mut rng);
            assert!(t.is_tree(), "random tree with {n} nodes is not a tree");
        }
    }

    #[test]
    fn disconnected_topology_is_detected() {
        let mut t = Topology::new(4);
        t.add_edge(0, 1);
        t.add_edge(2, 3);
        assert!(!t.is_connected());
        assert!(!t.is_tree());
        assert_eq!(t.path(0, 3), None);
    }

    #[test]
    fn cyclic_topology_is_not_a_tree() {
        let mut t = Topology::line(3);
        t.add_edge(0, 2);
        assert!(t.is_connected());
        assert!(!t.is_tree());
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edges_are_rejected() {
        let mut t = Topology::line(3);
        t.add_edge(1, 0);
    }

    #[test]
    fn empty_topology_is_trivially_a_tree() {
        let t = Topology::new(0);
        assert!(t.is_tree());
        assert!(t.is_empty());
    }
}
