//! Event notifications: the messages published into the pub/sub system.
//!
//! A notification reifies an occurred event as a flat set of name/value
//! pairs.  It is injected into the broker network by a producer and conveyed
//! to every consumer with a matching subscription.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// An immutable event notification: a set of named attribute values.
///
/// # Examples
///
/// ```
/// use rebeca_filter::{Notification, Value};
///
/// let n = Notification::builder()
///     .attr("service", "parking")
///     .attr("location", Value::Location(17))
///     .attr("cost", 2)
///     .build();
/// assert_eq!(n.get("cost"), Some(&Value::Int(2)));
/// assert_eq!(n.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct Notification {
    attributes: BTreeMap<String, Value>,
}

impl Notification {
    /// Creates an empty notification (rarely useful on its own; prefer
    /// [`Notification::builder`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts building a notification attribute by attribute.
    pub fn builder() -> NotificationBuilder {
        NotificationBuilder::default()
    }

    /// Returns the value of attribute `name`, if present.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.attributes.get(name)
    }

    /// Returns `true` when the notification carries attribute `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.attributes.contains_key(name)
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// `true` when the notification has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// Iterates over `(name, value)` pairs in attribute-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.attributes.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Returns a copy of this notification with `name` set to `value`
    /// (replacing an existing value of the same name).
    pub fn with_attr(&self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        let mut attributes = self.attributes.clone();
        attributes.insert(name.into(), value.into());
        Self { attributes }
    }
}

impl fmt::Display for Notification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k} = {v}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(String, Value)> for Notification {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        Self {
            attributes: iter.into_iter().collect(),
        }
    }
}

/// Incremental builder for [`Notification`]s.
#[derive(Debug, Default, Clone)]
pub struct NotificationBuilder {
    attributes: BTreeMap<String, Value>,
}

impl NotificationBuilder {
    /// Adds (or replaces) one attribute.
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.attributes.insert(name.into(), value.into());
        self
    }

    /// Finishes the notification.
    pub fn build(self) -> Notification {
        Notification {
            attributes: self.attributes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_attributes() {
        let n = Notification::builder()
            .attr("a", 1)
            .attr("b", "two")
            .attr("c", 3.0)
            .build();
        assert_eq!(n.len(), 3);
        assert_eq!(n.get("a"), Some(&Value::Int(1)));
        assert_eq!(n.get("b"), Some(&Value::Str("two".into())));
        assert_eq!(n.get("c"), Some(&Value::Float(3.0)));
        assert!(n.contains("a"));
        assert!(!n.contains("d"));
    }

    #[test]
    fn builder_replaces_duplicate_names() {
        let n = Notification::builder().attr("a", 1).attr("a", 2).build();
        assert_eq!(n.len(), 1);
        assert_eq!(n.get("a"), Some(&Value::Int(2)));
    }

    #[test]
    fn with_attr_does_not_mutate_original() {
        let n = Notification::builder().attr("a", 1).build();
        let m = n.with_attr("b", 2);
        assert_eq!(n.len(), 1);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get("b"), Some(&Value::Int(2)));
    }

    #[test]
    fn empty_notification_reports_empty() {
        let n = Notification::new();
        assert!(n.is_empty());
        assert_eq!(n.len(), 0);
    }

    #[test]
    fn display_lists_attributes_in_name_order() {
        let n = Notification::builder().attr("b", 2).attr("a", 1).build();
        assert_eq!(n.to_string(), "{a = 1, b = 2}");
    }

    #[test]
    fn iteration_order_is_deterministic() {
        let n = Notification::builder()
            .attr("z", 1)
            .attr("a", 2)
            .attr("m", 3)
            .build();
        let names: Vec<&str> = n.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
    }

    #[test]
    fn from_iterator_builds_notification() {
        let n: Notification = vec![("x".to_string(), Value::Int(1))].into_iter().collect();
        assert_eq!(n.get("x"), Some(&Value::Int(1)));
    }
}
