//! Identifiers for clients and subscriptions.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a client (producer or consumer) of the notification
/// service.
///
/// Clients keep their identity while roaming between border brokers; the
/// physical-mobility protocol uses the pair `(ClientId, Filter)` to identify
/// the subscription state that has to be relocated.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ClientId(u32);

impl ClientId {
    /// Creates a client id from its raw numeric identity.
    pub const fn new(raw: u32) -> Self {
        ClientId(raw)
    }

    /// The raw numeric identity (e.g. for wire encodings and displays).
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<u32> for ClientId {
    fn from(v: u32) -> Self {
        ClientId(v)
    }
}

/// Identifier of one location-dependent subscription of a client (a client
/// may hold several).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SubscriptionId {
    /// The owning client.
    pub client: ClientId,
    /// A client-local sequence number distinguishing its subscriptions.
    pub index: u32,
}

impl SubscriptionId {
    /// Creates a subscription id.
    pub fn new(client: ClientId, index: u32) -> Self {
        Self { client, index }
    }
}

impl fmt::Display for SubscriptionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#s{}", self.client, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(ClientId(3).to_string(), "c3");
        assert_eq!(SubscriptionId::new(ClientId(3), 1).to_string(), "c3#s1");
    }

    #[test]
    fn ordering_and_conversion() {
        assert!(ClientId(1) < ClientId(2));
        assert_eq!(ClientId::from(7u32), ClientId(7));
        let s1 = SubscriptionId::new(ClientId(1), 0);
        let s2 = SubscriptionId::new(ClientId(1), 1);
        assert!(s1 < s2);
    }
}
