//! Interactive client sessions.
//!
//! A [`Session`] is a lightweight handle to one client of a
//! [`MobilitySystem`](crate::MobilitySystem), obtained from
//! [`MobilitySystem::connect`](crate::MobilitySystem::connect).  Its methods
//! are imperative — subscribe, publish, move, poll — and take the system as
//! an explicit argument, so any number of session handles coexist and
//! interleave freely with [`run_until`](crate::MobilitySystem::run_until) /
//! [`step`](crate::MobilitySystem::step):
//!
//! ```
//! use rebeca_broker::ClientId;
//! use rebeca_core::SystemBuilder;
//! use rebeca_filter::{Constraint, Filter, Notification};
//! use rebeca_sim::{DelayModel, SimTime, Topology};
//!
//! # fn main() -> Result<(), rebeca_core::RebecaError> {
//! let mut system = SystemBuilder::new(&Topology::line(2))
//!     .link_delay(DelayModel::constant_millis(2))
//!     .build()?;
//! let consumer = system.connect(ClientId::new(1), 0)?;
//! consumer.subscribe(
//!     &mut system,
//!     Filter::new().with("service", Constraint::Eq("news".into())),
//! )?;
//! let producer = system.connect(ClientId::new(2), 1)?;
//! system.run_until(SimTime::from_millis(10));
//!
//! producer.publish(
//!     &mut system,
//!     Notification::builder().attr("service", "news").build(),
//! )?;
//! system.run_until(SimTime::from_millis(20));
//!
//! // The application reacts to what actually arrived.
//! let inbox = consumer.poll_deliveries(&mut system)?;
//! assert_eq!(inbox.len(), 1);
//! # Ok(())
//! # }
//! ```
//!
//! Under the hood every call appends a [`ClientAction`] to the client's
//! action queue and schedules its execution at the driver's current time —
//! exactly the mechanism the scripted
//! [`add_client`](crate::MobilitySystem::add_client) path uses, so session
//! traffic takes the same code path through broker and protocol code as
//! every existing test.

use rebeca_broker::{ClientId, ConsumerLog, Delivery};
use rebeca_filter::{Filter, LocationDependentFilter, Notification};
use rebeca_location::{AdaptivityPlan, LocationId};

use crate::client::ClientAction;
use crate::error::RebecaError;
use crate::system::MobilitySystem;

/// An interactive handle to one client of a
/// [`MobilitySystem`](crate::MobilitySystem).
///
/// The handle is `Copy`: it holds only the client identity.  All methods
/// take effect when the system next runs (they are queued at the current
/// time), matching the sans-IO execution model of the drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Session {
    client: ClientId,
}

impl Session {
    pub(crate) fn new(client: ClientId) -> Self {
        Self { client }
    }

    /// The identity of the client this session drives.
    pub fn client(&self) -> ClientId {
        self.client
    }

    /// Issues a plain (location-independent) subscription.
    pub fn subscribe(
        &self,
        system: &mut MobilitySystem,
        filter: Filter,
    ) -> Result<(), RebecaError> {
        system.enqueue_now(self.client, ClientAction::Subscribe(filter))
    }

    /// Issues a time-aware subscription: like [`Session::subscribe`], but
    /// the border broker additionally replays retained publications with a
    /// timestamp at or after `since_micros` (virtual micros since the
    /// simulation epoch), merged exactly once and in time order with live
    /// traffic.  Requires [`BrokerConfig::retention`](crate::BrokerConfig)
    /// to be configured on the brokers; without it only the live
    /// subscription is installed.  The canonical detach/reattach pattern:
    /// note the detach time, and reattach elsewhere with
    /// `subscribe_since(detached_at)` to close the gap.
    pub fn subscribe_since(
        &self,
        system: &mut MobilitySystem,
        filter: Filter,
        since_micros: u64,
    ) -> Result<(), RebecaError> {
        system.enqueue_now(
            self.client,
            ClientAction::SubscribeSince(filter, since_micros),
        )
    }

    /// Retracts a plain subscription.
    pub fn unsubscribe(
        &self,
        system: &mut MobilitySystem,
        filter: Filter,
    ) -> Result<(), RebecaError> {
        system.enqueue_now(self.client, ClientAction::Unsubscribe(filter))
    }

    /// Advertises future publications.
    pub fn advertise(
        &self,
        system: &mut MobilitySystem,
        filter: Filter,
    ) -> Result<(), RebecaError> {
        system.enqueue_now(self.client, ClientAction::Advertise(filter))
    }

    /// Publishes one notification.
    pub fn publish(
        &self,
        system: &mut MobilitySystem,
        notification: Notification,
    ) -> Result<(), RebecaError> {
        system.enqueue_now(self.client, ClientAction::Publish(notification))
    }

    /// Publishes a whole queue of notifications in one message; the border
    /// broker routes the queue through its batch matching path.
    pub fn publish_batch(
        &self,
        system: &mut MobilitySystem,
        notifications: Vec<Notification>,
    ) -> Result<(), RebecaError> {
        system.enqueue_now(self.client, ClientAction::PublishBatch(notifications))
    }

    /// Physically relocates to the border broker with topology index
    /// `broker` using the paper's relocation protocol: the old broker
    /// buffers, the new broker merges the replay, and the application keeps
    /// receiving every notification exactly once, in order.
    pub fn move_to(&self, system: &mut MobilitySystem, broker: usize) -> Result<(), RebecaError> {
        let target = system.broker_node(broker)?;
        system.enqueue_now(self.client, ClientAction::MoveTo { broker: target })
    }

    /// Detaches from the current border broker (explicit sign-off).  The
    /// broker keeps buffering through a virtual counterpart, so a later
    /// [`Session::move_to`] resumes the stream without loss.
    pub fn detach(&self, system: &mut MobilitySystem) -> Result<(), RebecaError> {
        system.enqueue_now(self.client, ClientAction::Detach)
    }

    /// Re-attaches to the border broker with topology index `broker` after
    /// a [`Session::detach`] — a plain attach, without the relocation
    /// protocol.  Combine with [`Session::subscribe_since`] to close the
    /// offline gap from retained history instead of a counterpart replay.
    pub fn reattach(&self, system: &mut MobilitySystem, broker: usize) -> Result<(), RebecaError> {
        let target = system.broker_node(broker)?;
        system.enqueue_now(self.client, ClientAction::Attach { broker: target })
    }

    /// Issues a location-dependent subscription (Section 5 of the paper)
    /// with the given template, adaptivity plan and initial location.
    pub fn loc_subscribe(
        &self,
        system: &mut MobilitySystem,
        template: LocationDependentFilter,
        plan: AdaptivityPlan,
        location: LocationId,
    ) -> Result<(), RebecaError> {
        system.enqueue_now(
            self.client,
            ClientAction::LocSubscribe {
                template,
                plan,
                location,
            },
        )
    }

    /// Retracts a previously issued location-dependent subscription,
    /// addressed by issue order (the first
    /// [`Session::loc_subscribe`] has index 0).
    pub fn loc_unsubscribe(
        &self,
        system: &mut MobilitySystem,
        index: u32,
    ) -> Result<(), RebecaError> {
        system.enqueue_now(self.client, ClientAction::LocUnsubscribe { index })
    }

    /// Announces a new location (logical mobility).
    pub fn set_location(
        &self,
        system: &mut MobilitySystem,
        location: LocationId,
    ) -> Result<(), RebecaError> {
        system.enqueue_now(self.client, ClientAction::SetLocation(location))
    }

    /// Drains every delivery received since the previous poll, in arrival
    /// order — the reactive read side of the session.  Interleave with
    /// [`MobilitySystem::run_until`](crate::MobilitySystem::run_until) to
    /// react to notifications mid-run (e.g. re-subscribe based on content).
    pub fn poll_deliveries(
        &self,
        system: &mut MobilitySystem,
    ) -> Result<Vec<Delivery>, RebecaError> {
        system.drain_client_deliveries(self.client)
    }

    /// The client's full delivery log (every delivery ever received, with
    /// QoS violation tracking) — unlike
    /// [`Session::poll_deliveries`] this does not drain anything.
    pub fn log<'a>(&self, system: &'a MobilitySystem) -> Result<&'a ConsumerLog, RebecaError> {
        system.client_log(self.client)
    }
}
