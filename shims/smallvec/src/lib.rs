//! Offline API stand-in for the `smallvec` crate.
//!
//! Implements the slice of the smallvec API the workspace uses: a vector
//! that stores up to `N` elements inline (no heap allocation) and spills to
//! a `Vec<T>` beyond that.  The matcher's posting lists and partition class
//! lists are overwhelmingly short (most predicates are used by one or two
//! filters, most bound classes hold one predicate), so inline storage
//! removes a pointer chase and a heap allocation from the hot matching walk.
//!
//! Differences from the real crate, deliberately accepted for an offline
//! build environment:
//!
//! * the element type must be `Copy + Default` (the inline buffer is a plain
//!   `[T; N]`, so the shim needs no `unsafe` code and can keep
//!   `#![forbid(unsafe_code)]`);
//! * the generic parameters are `SmallVec<T, N>` (const generics) instead of
//!   the real crate's `SmallVec<[T; N]>` array-type parameter;
//! * only the API subset used by this workspace is provided.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A vector storing up to `N` elements inline, spilling to the heap beyond.
#[derive(Clone)]
pub struct SmallVec<T: Copy + Default, const N: usize> {
    /// Number of live elements when not spilled (`heap.is_empty()`).
    len: usize,
    buf: [T; N],
    /// Once spilled, all elements live here and `buf`/`len` are ignored.
    heap: Vec<T>,
    spilled: bool,
}

impl<T: Copy + Default, const N: usize> SmallVec<T, N> {
    /// Creates an empty vector (no heap allocation).
    pub fn new() -> Self {
        SmallVec {
            len: 0,
            buf: [T::default(); N],
            heap: Vec::new(),
            spilled: false,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        if self.spilled {
            self.heap.len()
        } else {
            self.len
        }
    }

    /// `true` when no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` once the contents have moved to the heap.
    pub fn spilled(&self) -> bool {
        self.spilled
    }

    /// Appends an element, spilling to the heap when the inline buffer is
    /// full.
    pub fn push(&mut self, value: T) {
        if self.spilled {
            self.heap.push(value);
        } else if self.len < N {
            self.buf[self.len] = value;
            self.len += 1;
        } else {
            self.heap.reserve(N + 1);
            self.heap.extend_from_slice(&self.buf[..self.len]);
            self.heap.push(value);
            self.spilled = true;
        }
    }

    /// Removes and returns the element at `index`, shifting the tail left.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    pub fn remove(&mut self, index: usize) -> T {
        if self.spilled {
            self.heap.remove(index)
        } else {
            assert!(index < self.len, "index {index} out of bounds");
            let value = self.buf[index];
            self.buf.copy_within(index + 1..self.len, index);
            self.len -= 1;
            value
        }
    }

    /// Removes and returns the last element.
    pub fn pop(&mut self) -> Option<T> {
        if self.spilled {
            self.heap.pop()
        } else if self.len > 0 {
            self.len -= 1;
            Some(self.buf[self.len])
        } else {
            None
        }
    }

    /// Removes every element (the spilled allocation is kept).
    pub fn clear(&mut self) {
        self.heap.clear();
        self.len = 0;
        self.spilled = false;
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        if self.spilled {
            &self.heap
        } else {
            &self.buf[..self.len]
        }
    }

    /// The elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if self.spilled {
            &mut self.heap
        } else {
            &mut self.buf[..self.len]
        }
    }
}

impl<T: Copy + Default, const N: usize> Default for SmallVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default, const N: usize> Deref for SmallVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> DerefMut for SmallVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + Default + fmt::Debug, const N: usize> fmt::Debug for SmallVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for SmallVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for SmallVec<T, N> {}

impl<T: Copy + Default, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = SmallVec::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

impl<T: Copy + Default, const N: usize> Extend<T> for SmallVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a SmallVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_until_capacity() {
        let mut v: SmallVec<u32, 3> = SmallVec::new();
        assert!(v.is_empty());
        v.push(1);
        v.push(2);
        v.push(3);
        assert!(!v.spilled());
        assert_eq!(v.as_slice(), &[1, 2, 3]);
        v.push(4);
        assert!(v.spilled());
        assert_eq!(v.as_slice(), &[1, 2, 3, 4]);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn remove_preserves_order_inline_and_spilled() {
        let mut v: SmallVec<u32, 2> = [10, 20].into_iter().collect();
        assert_eq!(v.remove(0), 10);
        assert_eq!(v.as_slice(), &[20]);
        let mut v: SmallVec<u32, 2> = [1, 2, 3, 4].into_iter().collect();
        assert!(v.spilled());
        assert_eq!(v.remove(1), 2);
        assert_eq!(v.as_slice(), &[1, 3, 4]);
    }

    #[test]
    fn pop_and_clear() {
        let mut v: SmallVec<u32, 2> = [1, 2, 3].into_iter().collect();
        assert_eq!(v.pop(), Some(3));
        v.clear();
        assert!(v.is_empty());
        assert_eq!(v.pop(), None);
        v.push(9);
        assert_eq!(v.as_slice(), &[9]);
    }

    #[test]
    fn deref_and_iteration() {
        let v: SmallVec<u32, 4> = [5, 6].into_iter().collect();
        let doubled: Vec<u32> = v.iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![10, 12]);
        assert_eq!(v[1], 6);
        let w: SmallVec<u32, 4> = [5, 6].into_iter().collect();
        assert_eq!(v, w);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn remove_out_of_bounds_panics() {
        let mut v: SmallVec<u32, 2> = SmallVec::new();
        v.push(1);
        v.remove(1);
    }
}
