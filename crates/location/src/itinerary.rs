//! Consumer itineraries: the function `loc : T → L` describing the movement
//! of a client over time.
//!
//! The paper models time as natural numbers and movement as one
//! movement-graph step per time step; for the simulation-based experiments
//! we additionally attach a *residence time* (the `Δ` of Section 5.3) to
//! every visited location.

use serde::{Deserialize, Serialize};

use crate::graph::MovementGraph;
use crate::space::LocationId;

/// One stop of an itinerary: a location and how long the client stays there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stop {
    /// The location visited.
    pub location: LocationId,
    /// Residence time in microseconds of simulated time.
    pub residence_micros: u64,
}

/// A scripted movement of a client: the sequence of locations it visits and
/// how long it remains at each (`loc : T → L` plus residence times).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Itinerary {
    stops: Vec<Stop>,
}

impl Itinerary {
    /// Creates an empty itinerary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an itinerary visiting the given locations, staying
    /// `residence_micros` at each.
    pub fn uniform<I: IntoIterator<Item = LocationId>>(
        locations: I,
        residence_micros: u64,
    ) -> Self {
        Self {
            stops: locations
                .into_iter()
                .map(|location| Stop {
                    location,
                    residence_micros,
                })
                .collect(),
        }
    }

    /// Appends a stop.
    pub fn push(&mut self, location: LocationId, residence_micros: u64) {
        self.stops.push(Stop {
            location,
            residence_micros,
        });
    }

    /// Appends a stop, builder style.
    pub fn then(mut self, location: LocationId, residence_micros: u64) -> Self {
        self.push(location, residence_micros);
        self
    }

    /// The stops in visiting order.
    pub fn stops(&self) -> &[Stop] {
        &self.stops
    }

    /// Number of stops.
    pub fn len(&self) -> usize {
        self.stops.len()
    }

    /// `true` when the itinerary has no stops.
    pub fn is_empty(&self) -> bool {
        self.stops.is_empty()
    }

    /// Total duration of the itinerary in microseconds.
    pub fn total_micros(&self) -> u64 {
        self.stops.iter().map(|s| s.residence_micros).sum()
    }

    /// `loc(t)`: the location occupied at absolute simulated time
    /// `t_micros`, where time 0 is the start of the itinerary.  After the
    /// last stop's residence time has elapsed the client is assumed to stay
    /// at the last location; `None` is returned only for an empty itinerary.
    pub fn location_at(&self, t_micros: u64) -> Option<LocationId> {
        let mut elapsed = 0u64;
        for stop in &self.stops {
            elapsed = elapsed.saturating_add(stop.residence_micros);
            if t_micros < elapsed {
                return Some(stop.location);
            }
        }
        self.stops.last().map(|s| s.location)
    }

    /// The absolute times (in microseconds) at which the client *changes*
    /// location, paired with the new location.  The first stop (time 0) is
    /// not a change.
    pub fn change_times(&self) -> Vec<(u64, LocationId)> {
        let mut changes = Vec::new();
        let mut elapsed = 0u64;
        for (i, stop) in self.stops.iter().enumerate() {
            if i > 0 {
                changes.push((elapsed, stop.location));
            }
            elapsed = elapsed.saturating_add(stop.residence_micros);
        }
        changes
    }

    /// Checks that every consecutive pair of stops is either the same
    /// location or one movement-graph step apart (the "maximum speed"
    /// restriction of Section 5.1).
    pub fn respects(&self, graph: &MovementGraph) -> bool {
        self.stops
            .windows(2)
            .all(|w| w[0].location == w[1].location || graph.has_edge(w[0].location, w[1].location))
    }

    /// Generates a random walk itinerary of `steps` stops on the graph,
    /// starting at `start`, each with the given residence time.  Useful for
    /// experiments and property tests.
    pub fn random_walk<R: rand::Rng>(
        graph: &MovementGraph,
        start: LocationId,
        steps: usize,
        residence_micros: u64,
        rng: &mut R,
    ) -> Self {
        let mut stops = Vec::with_capacity(steps);
        let mut current = start;
        for _ in 0..steps {
            stops.push(Stop {
                location: current,
                residence_micros,
            });
            let neighbours: Vec<LocationId> = graph.neighbours(current).collect();
            if !neighbours.is_empty() {
                // Staying put is always allowed; choose uniformly among
                // {stay} ∪ neighbours.
                let idx = rng.gen_range(0..=neighbours.len());
                if idx < neighbours.len() {
                    current = neighbours[idx];
                }
            }
        }
        Self { stops }
    }
}

impl FromIterator<Stop> for Itinerary {
    fn from_iter<T: IntoIterator<Item = Stop>>(iter: T) -> Self {
        Self {
            stops: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn id(x: u32) -> LocationId {
        LocationId(x)
    }

    #[test]
    fn location_at_respects_residence_times() {
        let it = Itinerary::new()
            .then(id(0), 100)
            .then(id(1), 50)
            .then(id(2), 50);
        assert_eq!(it.location_at(0), Some(id(0)));
        assert_eq!(it.location_at(99), Some(id(0)));
        assert_eq!(it.location_at(100), Some(id(1)));
        assert_eq!(it.location_at(149), Some(id(1)));
        assert_eq!(it.location_at(150), Some(id(2)));
        // After the itinerary ends the client stays at the last stop.
        assert_eq!(it.location_at(10_000), Some(id(2)));
        assert_eq!(it.total_micros(), 200);
    }

    #[test]
    fn empty_itinerary_has_no_location() {
        let it = Itinerary::new();
        assert_eq!(it.location_at(0), None);
        assert!(it.is_empty());
        assert_eq!(it.total_micros(), 0);
        assert!(it.change_times().is_empty());
    }

    #[test]
    fn change_times_skip_the_first_stop() {
        let it = Itinerary::new()
            .then(id(0), 100)
            .then(id(1), 50)
            .then(id(3), 10);
        assert_eq!(it.change_times(), vec![(100, id(1)), (150, id(3))]);
    }

    #[test]
    fn uniform_builder_sets_equal_residence() {
        let it = Itinerary::uniform([id(0), id(1), id(2)], 30);
        assert_eq!(it.len(), 3);
        assert!(it.stops().iter().all(|s| s.residence_micros == 30));
    }

    #[test]
    fn respects_checks_movement_graph_edges() {
        let g = MovementGraph::line(4);
        let legal = Itinerary::uniform([id(0), id(1), id(1), id(2)], 10);
        let illegal = Itinerary::uniform([id(0), id(3)], 10);
        assert!(legal.respects(&g));
        assert!(!illegal.respects(&g));
    }

    #[test]
    fn paper_example_itinerary_a_b_d() {
        // Section 5.2: at time 1 the client is at a, time 2 at b, time 3 at d.
        let g = MovementGraph::paper_example();
        let a = g.space().id("a").unwrap();
        let b = g.space().id("b").unwrap();
        let d = g.space().id("d").unwrap();
        let it = Itinerary::uniform([a, b, d], 1);
        assert!(it.respects(&g));
    }

    #[test]
    fn random_walk_respects_the_graph() {
        let g = MovementGraph::grid(3, 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let it = Itinerary::random_walk(&g, id(0), 50, 10, &mut rng);
        assert_eq!(it.len(), 50);
        assert!(it.respects(&g));
    }

    #[test]
    fn from_iterator_collects_stops() {
        let it: Itinerary = vec![Stop {
            location: id(1),
            residence_micros: 5,
        }]
        .into_iter()
        .collect();
        assert_eq!(it.len(), 1);
    }
}
