//! Loopback TCP transport bench: publish→deliver throughput and relocation
//! latency of [`TcpDriver`] vs the in-process [`ThreadedDriver`], plus the
//! cost of surviving forced connection drops (`net/reconnect`).
//!
//! One iteration = one full wall-clock deployment run: build the system(s),
//! settle the subscription, publish `PUBLICATIONS` vacancies (relocating
//! the consumer mid-stream in the `relocation` group), and poll until every
//! delivery arrived.  The TCP side runs TWO drivers in one process — the
//! brokers pumped by a background thread, the clients driven by the bench
//! thread — so every client↔broker message crosses a real loopback socket.
//!
//! Both variants share the completion-driven structure (the same settle
//! window and poll cadence), so their within-run ratio isolates the
//! transport cost.  The `reconnect` group runs the TCP quickstart with a
//! recurring [`FaultPlan`] tearing the client's links down every
//! [`DROP_EVERY`] frames, publishing one vacancy at a time so each
//! publish→deliver latency is observed individually; the pooled p99 rides
//! the synthetic sample `net/reconnect/publish_p99/40`.
//! `scripts/bench_gate.py` gates the `threaded` vs `tcp` ratios, the
//! quickstart-vs-reconnect ratio, and the absolute medians against
//! `BENCH_net.json`.
//!
//! Each variant is verified once outside the timed loop: exactly-once
//! delivery of all publications, clean log — for the reconnect variant the
//! verification additionally asserts the injected drops actually fired and
//! frames were resent, so the gated number measures real healing work.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use rebeca_broker::{ClientId, ConsumerLog};
use rebeca_core::{BrokerConfig, MobilitySystem, SystemBuilder};
use rebeca_filter::{Constraint, Filter, Notification};
use rebeca_location::MovementGraph;
use rebeca_net::{Endpoint, FaultPlan, NetConfig, SystemBuilderTcp, TcpDriver};
use rebeca_routing::RoutingStrategyKind;
use rebeca_sim::{DelayModel, SimDuration, Topology};

const CONSUMER: ClientId = ClientId::new(1);
const PRODUCER: ClientId = ClientId::new(2);
const PUBLICATIONS: u64 = 40;
/// Wall-clock window left for attach + subscription flooding per run.
const SETTLE: SimDuration = SimDuration::from_millis(30);
/// Poll cadence while waiting for deliveries.
const POLL: SimDuration = SimDuration::from_millis(5);
/// The reconnect group's fault plan tears the client's writer links down
/// after every this many frames, so one run crosses several redial +
/// resend cycles.
const DROP_EVERY: u64 = 12;
/// Verification rounds pooled into the publish→deliver p99 sample.
const P99_ROUNDS: usize = 3;

fn subscription() -> Filter {
    Filter::new().with("service", Constraint::Eq("parking".into()))
}

fn vacancy(i: u64) -> Notification {
    Notification::builder()
        .attr("service", "parking")
        .attr("spot", i as i64)
        .build()
}

fn builder() -> SystemBuilder {
    SystemBuilder::new(&Topology::line(3))
        .config(
            BrokerConfig::default()
                .with_strategy(RoutingStrategyKind::Covering)
                .with_movement_graph(MovementGraph::paper_example())
                .with_relocation_timeout(SimDuration::from_secs(5)),
        )
        .link_delay(DelayModel::Constant(200))
        .seed(7)
}

fn wait_for_deliveries(sys: &mut MobilitySystem, want: usize) {
    let deadline = sys.now() + SimDuration::from_secs(10);
    loop {
        if sys.client_log(CONSUMER).expect("consumer log").len() >= want {
            return;
        }
        let now = sys.now();
        assert!(now < deadline, "deliveries stalled at {want} wanted");
        sys.run_until(now + POLL);
    }
}

/// The scenario body shared by both drivers (the system is already built).
fn drive(sys: &mut MobilitySystem, relocate: bool) {
    let consumer = sys.connect(CONSUMER, 0).expect("consumer");
    consumer.subscribe(sys, subscription()).expect("subscribe");
    let producer = sys.connect(PRODUCER, 2).expect("producer");
    let now = sys.now();
    sys.run_until(now + SETTLE);

    let half = PUBLICATIONS / 2;
    for i in 1..=half {
        producer.publish(sys, vacancy(i)).expect("publish");
    }
    wait_for_deliveries(sys, half as usize);
    if relocate {
        consumer.move_to(sys, 1).expect("relocate");
    }
    for i in half + 1..=PUBLICATIONS {
        producer.publish(sys, vacancy(i)).expect("publish");
    }
    wait_for_deliveries(sys, PUBLICATIONS as usize);
}

fn run_threaded(relocate: bool) -> ConsumerLog {
    let mut sys = builder().build_threaded().expect("threaded system");
    drive(&mut sys, relocate);
    sys.client_log(CONSUMER).expect("consumer log").clone()
}

/// Broker process stand-in shared by the TCP variants: one driver hosting
/// all brokers on an ephemeral loopback listener, pumped by a background
/// thread until the host is dropped.
struct BrokerHost {
    endpoint: Endpoint,
    stop: Arc<AtomicBool>,
    pump: Option<std::thread::JoinHandle<()>>,
}

impl BrokerHost {
    fn spawn() -> Self {
        let placeholder = vec![Endpoint::new("127.0.0.1", 0); 3];
        let driver = TcpDriver::new(NetConfig::new(placeholder).host_all().seed(11))
            .expect("bind broker listener");
        let endpoint = driver.listen_endpoint().clone();
        let broker_sys = builder()
            .build_with(Box::new(driver))
            .expect("broker system");
        let stop = Arc::new(AtomicBool::new(false));
        let pump = {
            let stop = stop.clone();
            let mut sys = broker_sys;
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    let now = sys.now();
                    sys.run_until(now + SimDuration::from_millis(10));
                }
            })
        };
        BrokerHost {
            endpoint,
            stop,
            pump: Some(pump),
        }
    }
}

impl Drop for BrokerHost {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(pump) = self.pump.take() {
            pump.join().expect("broker pump");
        }
    }
}

fn run_tcp(relocate: bool) -> ConsumerLog {
    let host = BrokerHost::spawn();
    let mut client_sys = builder()
        .build_tcp(NetConfig::new(vec![host.endpoint.clone(); 3]).seed(13))
        .expect("client system");
    drive(&mut client_sys, relocate);
    client_sys
        .client_log(CONSUMER)
        .expect("consumer log")
        .clone()
}

/// The quickstart scenario over TCP with the client's links forcibly torn
/// down every [`DROP_EVERY`] frames.  Publishes one vacancy at a time and
/// records each wall-clock publish→deliver latency in nanoseconds, so
/// the pooled p99 captures the messages that straddle a redial + resend
/// cycle.  Returns the log, the latencies, and the count of injected
/// drops the client survived.
fn run_reconnect() -> (ConsumerLog, Vec<f64>, u64) {
    let host = BrokerHost::spawn();
    let fault = FaultPlan::drop_after(DROP_EVERY).recurring();
    let mut sys = builder()
        .build_tcp(
            NetConfig::new(vec![host.endpoint.clone(); 3])
                .seed(13)
                .fault(fault),
        )
        .expect("client system");
    let consumer = sys.connect(CONSUMER, 0).expect("consumer");
    consumer
        .subscribe(&mut sys, subscription())
        .expect("subscribe");
    let producer = sys.connect(PRODUCER, 2).expect("producer");
    let now = sys.now();
    sys.run_until(now + SETTLE);

    let mut latencies = Vec::with_capacity(PUBLICATIONS as usize);
    for i in 1..=PUBLICATIONS {
        let published = std::time::Instant::now();
        producer.publish(&mut sys, vacancy(i)).expect("publish");
        wait_for_deliveries(&mut sys, i as usize);
        latencies.push(published.elapsed().as_nanos() as f64);
    }
    let drops = sys.metrics().counter("net.link_down");
    let log = sys.client_log(CONSUMER).expect("consumer log").clone();
    (log, latencies, drops)
}

/// Appends the pooled publish→deliver p99 to `CRITERION_JSON` in the same
/// concatenated-array format the criterion shim emits, so
/// `scripts/bench_gate.py` gates it alongside the regular samples.
fn report_reconnect_p99(mut pooled: Vec<f64>) {
    assert!(!pooled.is_empty(), "no reconnect latency samples");
    pooled.sort_by(|a, b| a.total_cmp(b));
    let idx = ((pooled.len() as f64 * 0.99).ceil() as usize).clamp(1, pooled.len()) - 1;
    let p99 = pooled[idx];
    let samples = pooled.len();
    println!(
        "{:<60} p99: {:>10.1} us ({samples} publishes across forced drops)",
        "net/reconnect/publish_p99/40",
        p99 / 1000.0
    );
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let record = format!(
        "[\n  {{\"name\": \"net/reconnect/publish_p99/40\", \"ns_per_iter\": {p99:.1}, \"iters\": {samples}}}\n]\n"
    );
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, record.as_bytes()));
    if let Err(e) = result {
        eprintln!("net_bench: cannot write {path}: {e}");
    }
}

fn verify(log: &ConsumerLog, label: &str) {
    assert!(log.is_clean(), "{label}: {:?}", log.violations());
    assert_eq!(
        log.distinct_publisher_seqs(PRODUCER),
        (1..=PUBLICATIONS).collect::<Vec<u64>>(),
        "{label}: incomplete delivery"
    );
}

fn bench_net(c: &mut Criterion) {
    // Equivalent work outside the timed loops: both transports deliver the
    // full stream exactly once, with and without the mid-run relocation.
    verify(&run_threaded(false), "threaded/quickstart");
    verify(&run_tcp(false), "tcp/quickstart");
    verify(&run_threaded(true), "threaded/relocation");
    verify(&run_tcp(true), "tcp/relocation");

    // Reconnect variant: exactly-once across real injected drops, with the
    // per-publish latencies pooled into the p99 sample.  Requiring at
    // least one drop and one resend per round keeps the gated number
    // honest — a fault plan that silently stopped firing would otherwise
    // make the bench measure a clean run.
    let mut pooled = Vec::with_capacity(P99_ROUNDS * PUBLICATIONS as usize);
    for round in 0..P99_ROUNDS {
        let (log, latencies, drops) = run_reconnect();
        verify(&log, "tcp/reconnect");
        assert!(drops >= 1, "round {round}: no injected drop fired");
        pooled.extend(latencies);
    }
    report_reconnect_p99(pooled);

    let mut group = c.benchmark_group("net/quickstart");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("threaded", PUBLICATIONS), &(), |b, _| {
        b.iter(|| black_box(run_threaded(false)))
    });
    group.bench_with_input(BenchmarkId::new("tcp", PUBLICATIONS), &(), |b, _| {
        b.iter(|| black_box(run_tcp(false)))
    });
    group.finish();

    let mut group = c.benchmark_group("net/relocation");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("threaded", PUBLICATIONS), &(), |b, _| {
        b.iter(|| black_box(run_threaded(true)))
    });
    group.bench_with_input(BenchmarkId::new("tcp", PUBLICATIONS), &(), |b, _| {
        b.iter(|| black_box(run_tcp(true)))
    });
    group.finish();

    let mut group = c.benchmark_group("net/reconnect");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("tcp", PUBLICATIONS), &(), |b, _| {
        b.iter(|| black_box(run_reconnect()))
    });
    group.finish();
}

criterion_group!(benches, bench_net);
criterion_main!(benches);
