//! The deployment facade: a broker network plus scripted clients in one
//! simulated system.
//!
//! [`MobilitySystem`] is the public entry point used by the examples, the
//! integration tests and the experiment harness: it instantiates a
//! [`MobileBroker`] per node of a [`Topology`], wires the FIFO links, attaches
//! scripted [`ClientNode`]s to border brokers, schedules their actions and
//! runs the discrete-event simulation.

use std::collections::BTreeMap;

use rebeca_broker::{BrokerRole, Message};
use rebeca_broker::{ClientId, ConsumerLog};
use rebeca_mobility::{HandoffLog, LogBackend};
use rebeca_sim::{
    Context, DelayModel, Incoming, Metrics, Network, Node, NodeId, SimDuration, SimTime, Topology,
};

use crate::client::{ClientAction, ClientNode, LogicalMobilityMode};
use crate::mobile_broker::{BrokerConfig, MobileBroker};

/// A node of the simulated system: either a broker or a client.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // one node per simulated process; size is irrelevant
pub enum SystemNode {
    /// A mobility-aware broker.
    Broker(MobileBroker),
    /// A scripted client.
    Client(ClientNode),
}

impl Node for SystemNode {
    type Message = Message;

    fn handle(&mut self, ctx: &mut Context<'_, Message>, event: Incoming<Message>) {
        match self {
            SystemNode::Broker(b) => b.handle(ctx, event),
            SystemNode::Client(c) => c.handle(ctx, event),
        }
    }
}

/// A complete simulated deployment: broker network plus clients.
pub struct MobilitySystem {
    network: Network<SystemNode>,
    broker_nodes: Vec<NodeId>,
    clients: BTreeMap<ClientId, NodeId>,
    client_link_delay: DelayModel,
    /// Per-broker handles to the write-ahead handoff log backends.  The
    /// handles share storage with the brokers' own backends (the "disk"),
    /// so a crashed broker's log survives and a restarted broker recovers
    /// from it.
    wal_backends: Vec<Box<dyn LogBackend>>,
}

impl MobilitySystem {
    /// Builds a broker network with one [`MobileBroker`] per topology node.
    /// Every broker is created with [`BrokerRole::Border`] so that clients can
    /// attach anywhere, matching the paper's figures where clients appear at
    /// arbitrary brokers.
    pub fn new(
        topology: &Topology,
        config: BrokerConfig,
        broker_link_delay: DelayModel,
        seed: u64,
    ) -> Self {
        let mut network: Network<SystemNode> = Network::new(seed);

        // First pass: allocate node ids so that broker index i gets NodeId(i).
        let mut wal_backends: Vec<Box<dyn LogBackend>> = Vec::with_capacity(topology.len());
        let broker_nodes: Vec<NodeId> = (0..topology.len())
            .map(|i| {
                let links: Vec<NodeId> = topology.neighbours(i).into_iter().map(NodeId).collect();
                let backend = config.persistence.backend_for(i);
                let log = HandoffLog::with_backend(backend.boxed_clone())
                    .checkpoint_every(config.wal_checkpoint_every);
                wal_backends.push(backend);
                network.add_node(SystemNode::Broker(MobileBroker::with_log(
                    NodeId(i),
                    BrokerRole::Border,
                    links,
                    config.clone(),
                    log,
                )))
            })
            .collect();
        for &(a, b) in topology.edges() {
            network.connect(broker_nodes[a], broker_nodes[b], broker_link_delay);
        }

        Self {
            network,
            broker_nodes,
            clients: BTreeMap::new(),
            client_link_delay: broker_link_delay,
            wal_backends,
        }
    }

    /// Sets the delay model used for client ↔ broker links created by
    /// subsequent [`MobilitySystem::add_client`] calls (defaults to the broker
    /// link delay).
    pub fn set_client_link_delay(&mut self, delay: DelayModel) {
        self.client_link_delay = delay;
    }

    /// The simulation node of broker `index` (the topology numbering).
    pub fn broker_node(&self, index: usize) -> NodeId {
        self.broker_nodes[index]
    }

    /// Number of brokers.
    pub fn broker_count(&self) -> usize {
        self.broker_nodes.len()
    }

    /// Adds a scripted client.
    ///
    /// * `reachable_brokers` — topology indices of every broker the client
    ///   will ever attach to (links are created up front; attachment itself
    ///   is a scripted [`ClientAction::Attach`] / [`ClientAction::MoveTo`]).
    /// * `script` — `(time, action)` pairs executed at the given virtual
    ///   times.
    pub fn add_client(
        &mut self,
        id: ClientId,
        mode: LogicalMobilityMode,
        reachable_brokers: &[usize],
        script: Vec<(SimTime, ClientAction)>,
    ) -> NodeId {
        let movement_graph = match self.network.node(self.broker_nodes[0]) {
            SystemNode::Broker(b) => b.config().movement_graph.clone(),
            SystemNode::Client(_) => unreachable!("broker nodes are created first"),
        };
        let (times, actions): (Vec<SimTime>, Vec<ClientAction>) = script.into_iter().unzip();
        let node = self.network.add_node(SystemNode::Client(ClientNode::new(
            id,
            actions,
            mode,
            movement_graph,
        )));
        for &broker in reachable_brokers {
            self.network
                .connect(node, self.broker_nodes[broker], self.client_link_delay);
        }
        for (i, time) in times.into_iter().enumerate() {
            let delay = SimDuration::from_micros(time.as_micros());
            self.network.schedule_timer(node, delay, i as u64);
        }
        self.clients.insert(id, node);
        node
    }

    /// Runs the simulation until the given virtual time.
    pub fn run_until(&mut self, until: SimTime) -> u64 {
        self.network.run_until(until)
    }

    /// Runs the simulation until no further events are scheduled (clients
    /// stop publishing and all in-flight messages are drained), with an event
    /// budget as a safety net.
    pub fn run_to_idle(&mut self, max_events: u64) -> u64 {
        self.network.run(max_events)
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.network.now()
    }

    /// The global metrics store.
    pub fn metrics(&self) -> &Metrics {
        self.network.metrics()
    }

    /// Mutable access to the global metrics (for time-series sampling from
    /// experiment drivers).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        self.network.metrics_mut()
    }

    /// Total number of messages transmitted over links so far (notifications
    /// plus administrative messages), the quantity plotted in Figure 9.
    pub fn total_messages(&self) -> u64 {
        self.network.metrics().counter("network.messages")
    }

    /// Crashes broker `index` and immediately restarts it from its
    /// write-ahead handoff log, as a quickly rebooting process would: every
    /// in-memory state of the broker is discarded, then the mobility-relevant
    /// state (virtual counterparts, disconnected client records, sequence
    /// watermarks, routing re-points, unresolved relocation holdings) is
    /// reconstructed from the surviving log.  Links and in-flight messages
    /// addressed to the broker are untouched; recovered relocation holdings
    /// get their timeout re-armed from the current virtual time.  Returns
    /// the crashed broker state (e.g. for post-mortem assertions).
    pub fn crash_and_restart_broker(&mut self, index: usize) -> MobileBroker {
        let node_id = self.broker_nodes[index];
        let (role, links, config) = match self.network.node(node_id) {
            SystemNode::Broker(b) => (
                b.core().role(),
                b.core().broker_links().to_vec(),
                b.config().clone(),
            ),
            SystemNode::Client(_) => unreachable!("broker index maps to a broker node"),
        };
        let log = HandoffLog::with_backend(self.wal_backends[index].boxed_clone())
            .checkpoint_every(config.wal_checkpoint_every);
        let relocation_timeout = config.relocation_timeout;
        let (restarted, recovered_tags) = MobileBroker::recover(node_id, role, links, config, log);
        let old = match self
            .network
            .replace_node(node_id, SystemNode::Broker(restarted))
        {
            SystemNode::Broker(b) => b,
            SystemNode::Client(_) => unreachable!("broker index maps to a broker node"),
        };
        for tag in recovered_tags {
            self.network
                .schedule_timer(node_id, relocation_timeout, tag);
        }
        self.network.metrics_mut().incr("mobility.broker_restart");
        old
    }

    /// A durable handle to the write-ahead log backend of broker `index`
    /// (shares storage with the broker's own backend).
    pub fn wal_backend(&self, index: usize) -> Box<dyn LogBackend> {
        self.wal_backends[index].boxed_clone()
    }

    /// Read access to a broker by topology index.
    pub fn broker(&self, index: usize) -> &MobileBroker {
        match self.network.node(self.broker_nodes[index]) {
            SystemNode::Broker(b) => b,
            SystemNode::Client(_) => unreachable!("broker index maps to a broker node"),
        }
    }

    /// Read access to a client.
    ///
    /// # Panics
    ///
    /// Panics when the client id is unknown.
    pub fn client(&self, id: ClientId) -> &ClientNode {
        let node = self.clients[&id];
        match self.network.node(node) {
            SystemNode::Client(c) => c,
            SystemNode::Broker(_) => unreachable!("client id maps to a client node"),
        }
    }

    /// The delivery log of a client.
    pub fn client_log(&self, id: ClientId) -> &ConsumerLog {
        self.client(id).log()
    }

    /// Ids of all clients added to the system.
    pub fn client_ids(&self) -> impl Iterator<Item = ClientId> + '_ {
        self.clients.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebeca_filter::{Constraint, Filter, Notification};
    use rebeca_location::MovementGraph;
    use rebeca_routing::RoutingStrategyKind;

    fn parking_filter() -> Filter {
        Filter::new().with("service", Constraint::Eq("parking".into()))
    }

    fn vacancy(seq: i64) -> Notification {
        Notification::builder()
            .attr("service", "parking")
            .attr("spot", seq)
            .build()
    }

    fn config() -> BrokerConfig {
        BrokerConfig {
            strategy: RoutingStrategyKind::Covering,
            movement_graph: MovementGraph::paper_example(),
            relocation_timeout: SimDuration::from_secs(5),
            ..BrokerConfig::default()
        }
    }

    /// Static scenario: a consumer at broker 0 and a producer at broker 2 of
    /// a 3-broker line; every publication must arrive exactly once, in order.
    #[test]
    fn static_end_to_end_delivery_over_a_line() {
        let topo = Topology::line(3);
        let mut sys = MobilitySystem::new(&topo, config(), DelayModel::constant_millis(5), 1);

        let consumer = ClientId(1);
        let producer = ClientId(2);
        sys.add_client(
            consumer,
            LogicalMobilityMode::LocationDependent,
            &[0],
            vec![
                (
                    SimTime::from_millis(1),
                    ClientAction::Attach {
                        broker: sys.broker_node(0),
                    },
                ),
                (
                    SimTime::from_millis(2),
                    ClientAction::Subscribe(parking_filter()),
                ),
            ],
        );
        let mut script = vec![(
            SimTime::from_millis(1),
            ClientAction::Attach {
                broker: sys.broker_node(2),
            },
        )];
        for i in 0..10 {
            script.push((
                SimTime::from_millis(100 + i * 10),
                ClientAction::Publish(vacancy(i as i64)),
            ));
        }
        sys.add_client(
            producer,
            LogicalMobilityMode::LocationDependent,
            &[2],
            script,
        );

        sys.run_until(SimTime::from_secs(2));

        let log = sys.client_log(consumer);
        assert!(log.is_clean(), "violations: {:?}", log.violations());
        assert_eq!(log.len(), 10);
        assert_eq!(
            log.distinct_publisher_seqs(producer),
            (1..=10).collect::<Vec<u64>>()
        );
    }

    /// The same scenario under flooding routing: delivery is identical (the
    /// flooding baseline over-transmits but the border broker still filters
    /// for its local client).
    #[test]
    fn flooding_strategy_delivers_the_same_notifications() {
        let topo = Topology::line(3);
        let mut cfg = config();
        cfg.strategy = RoutingStrategyKind::Flooding;
        let mut sys = MobilitySystem::new(&topo, cfg, DelayModel::constant_millis(5), 1);

        let consumer = ClientId(1);
        let producer = ClientId(2);
        sys.add_client(
            consumer,
            LogicalMobilityMode::LocationDependent,
            &[0],
            vec![
                (
                    SimTime::from_millis(1),
                    ClientAction::Attach {
                        broker: sys.broker_node(0),
                    },
                ),
                (
                    SimTime::from_millis(2),
                    ClientAction::Subscribe(parking_filter()),
                ),
            ],
        );
        sys.add_client(
            producer,
            LogicalMobilityMode::LocationDependent,
            &[2],
            vec![
                (
                    SimTime::from_millis(1),
                    ClientAction::Attach {
                        broker: sys.broker_node(2),
                    },
                ),
                (SimTime::from_millis(100), ClientAction::Publish(vacancy(1))),
                (SimTime::from_millis(110), ClientAction::Publish(vacancy(2))),
            ],
        );
        sys.run_until(SimTime::from_secs(1));
        assert_eq!(sys.client_log(consumer).len(), 2);
        assert!(sys.client_log(consumer).is_clean());
    }

    /// Batched publications travel the same delivery paths as single ones:
    /// the consumer receives every notification of the batch exactly once,
    /// in publisher-FIFO order, end to end over the broker line.
    #[test]
    fn batched_publications_deliver_like_single_ones() {
        let topo = Topology::line(3);
        let mut sys = MobilitySystem::new(&topo, config(), DelayModel::constant_millis(5), 1);

        let consumer = ClientId(1);
        let producer = ClientId(2);
        sys.add_client(
            consumer,
            LogicalMobilityMode::LocationDependent,
            &[0],
            vec![
                (
                    SimTime::from_millis(1),
                    ClientAction::Attach {
                        broker: sys.broker_node(0),
                    },
                ),
                (
                    SimTime::from_millis(2),
                    ClientAction::Subscribe(parking_filter()),
                ),
            ],
        );
        let batches: Vec<(SimTime, ClientAction)> = (0..4)
            .map(|b| {
                (
                    SimTime::from_millis(100 + b * 20),
                    ClientAction::PublishBatch((0..5).map(|i| vacancy(b as i64 * 5 + i)).collect()),
                )
            })
            .collect();
        let mut script = vec![(
            SimTime::from_millis(1),
            ClientAction::Attach {
                broker: sys.broker_node(2),
            },
        )];
        script.extend(batches);
        sys.add_client(
            producer,
            LogicalMobilityMode::LocationDependent,
            &[2],
            script,
        );

        sys.run_until(SimTime::from_secs(2));

        let log = sys.client_log(consumer);
        assert!(log.is_clean(), "violations: {:?}", log.violations());
        assert_eq!(log.len(), 20);
        assert_eq!(
            log.distinct_publisher_seqs(producer),
            (1..=20).collect::<Vec<u64>>()
        );
        assert_eq!(sys.client(producer).published(), 20);
    }

    /// A consumer without a matching subscription receives nothing.
    #[test]
    fn unrelated_subscriptions_receive_nothing() {
        let topo = Topology::line(2);
        let mut sys = MobilitySystem::new(&topo, config(), DelayModel::constant_millis(5), 1);
        let consumer = ClientId(1);
        let producer = ClientId(2);
        sys.add_client(
            consumer,
            LogicalMobilityMode::LocationDependent,
            &[0],
            vec![
                (
                    SimTime::from_millis(1),
                    ClientAction::Attach {
                        broker: sys.broker_node(0),
                    },
                ),
                (
                    SimTime::from_millis(2),
                    ClientAction::Subscribe(
                        Filter::new().with("service", Constraint::Eq("weather".into())),
                    ),
                ),
            ],
        );
        sys.add_client(
            producer,
            LogicalMobilityMode::LocationDependent,
            &[1],
            vec![
                (
                    SimTime::from_millis(1),
                    ClientAction::Attach {
                        broker: sys.broker_node(1),
                    },
                ),
                (SimTime::from_millis(100), ClientAction::Publish(vacancy(1))),
            ],
        );
        sys.run_until(SimTime::from_secs(1));
        assert!(sys.client_log(consumer).is_empty());
        assert_eq!(sys.client(producer).published(), 1);
    }

    /// System accessors behave as documented.
    #[test]
    fn accessors_expose_brokers_and_clients() {
        let topo = Topology::star(3);
        let mut sys = MobilitySystem::new(&topo, config(), DelayModel::constant_millis(1), 7);
        assert_eq!(sys.broker_count(), 4);
        let c = ClientId(9);
        sys.add_client(
            c,
            LogicalMobilityMode::LocationDependent,
            &[1],
            vec![(
                SimTime::from_millis(1),
                ClientAction::Attach {
                    broker: sys.broker_node(1),
                },
            )],
        );
        sys.run_until(SimTime::from_millis(50));
        assert_eq!(sys.client(c).id(), c);
        assert_eq!(sys.client_ids().collect::<Vec<_>>(), vec![c]);
        assert_eq!(sys.broker(0).core().id(), NodeId(0));
        assert!(sys.total_messages() >= 1);
        assert!(sys.now() >= SimTime::from_millis(50));
    }
}
