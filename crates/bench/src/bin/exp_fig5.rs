//! Regenerates the Figure 5 walk-through: the relocation protocol on the
//! eight-broker topology with one producer, reporting the protocol-internal
//! counters (junction detection, replay, garbage collection).
fn main() {
    let report = rebeca_bench::figures::figure5();
    println!("Figure 5: relocation walk-through (producer at B8, consumer moves B6 -> B1)\n");
    println!("publications received exactly once : {}", report.received);
    println!("publications lost                  : {}", report.lost);
    println!("publications duplicated            : {}", report.duplicated);
    println!(
        "sender-FIFO order preserved        : {}",
        report.fifo_preserved
    );
    println!(
        "junction brokers detected          : {}",
        report.junctions_detected
    );
    println!("notifications replayed             : {}", report.replayed);
    println!(
        "old border broker garbage collected: {}",
        report.old_broker_clean
    );
    println!(
        "total link messages                : {}",
        report.total_messages
    );
}
