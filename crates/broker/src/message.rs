//! The message vocabulary exchanged between clients and brokers.
//!
//! The first group of variants is the unchanged Rebeca interface of
//! Section 2 (publish, subscribe, unsubscribe, advertisements, delivery).
//! The remaining variants are the *extension* the paper contributes: the
//! administrative control messages of the physical-mobility relocation
//! protocol (Section 4) and of the logical-mobility location-update protocol
//! (Section 5).  Keeping them in the same enum reflects the paper's
//! "pub/sub adherence" requirement: all relocation traffic travels over the
//! ordinary broker links, never out-of-band.

use serde::{Deserialize, Serialize};

use rebeca_filter::{Filter, LocationDependentFilter, Notification};
use rebeca_location::{AdaptivityPlan, LocationId};
use rebeca_obs::TraceContext;
use rebeca_sim::NodeId;

use crate::ids::{ClientId, SubscriptionId};

/// A published notification together with its provenance: the publishing
/// client and a per-publisher sequence number (used to check sender-FIFO
/// order end to end).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Envelope {
    /// The publishing client.
    pub publisher: ClientId,
    /// Sequence number assigned by the publisher (1, 2, 3, …).
    pub publisher_seq: u64,
    /// The notification content.
    pub notification: Notification,
    /// Causal trace context, set by the origin broker when the publication
    /// falls inside the configured sampling rate.  `None` for unsampled
    /// traffic — the overwhelmingly common case, which therefore pays no
    /// tracing cost anywhere downstream.
    pub trace: Option<TraceContext>,
}

impl Envelope {
    /// A fresh untraced envelope.
    pub fn new(publisher: ClientId, publisher_seq: u64, notification: Notification) -> Self {
        Self {
            publisher,
            publisher_seq,
            notification,
            trace: None,
        }
    }
}

/// A notification as delivered to one consumer for one of its subscriptions,
/// annotated by the consumer's border broker with a per-`(client, filter)`
/// sequence number — the number the client echoes back when it re-subscribes
/// after a relocation (`(C, F, 123)` in the paper).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Delivery {
    /// The consumer the notification is delivered to.
    pub subscriber: ClientId,
    /// The subscription (filter) that matched.
    pub filter: Filter,
    /// Border-broker sequence number for this `(client, filter)` stream.
    pub seq: u64,
    /// The underlying published notification.
    pub envelope: Envelope,
}

/// All messages exchanged over links between clients and brokers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    // ------------------------------------------------------------------
    // Unchanged Rebeca interface (Section 2)
    // ------------------------------------------------------------------
    /// A client attaches to a border broker (becomes a local client).
    Attach {
        /// The attaching client.
        client: ClientId,
    },
    /// A client detaches from its border broker (explicit sign-off).
    Detach {
        /// The detaching client.
        client: ClientId,
    },
    /// A client publishes a notification through its border broker.
    Publish {
        /// The publishing client.
        publisher: ClientId,
        /// The notification to publish.
        notification: Notification,
    },
    /// A client publishes a whole queue of notifications through its border
    /// broker in one message.  The broker assigns consecutive per-publisher
    /// sequence numbers and routes the queue through the batch matching
    /// path (`handle_publish_batch`).
    PublishBatch {
        /// The publishing client.
        publisher: ClientId,
        /// The notifications to publish, in publication order.
        notifications: Vec<Notification>,
    },
    /// A routed notification travelling between brokers.
    Notification(Envelope),
    /// A queue of routed notifications travelling between brokers as one
    /// message: the receiving broker drains it through batch matching and
    /// re-groups the survivors per next-hop link.
    NotificationBatch(Vec<Envelope>),
    /// A subscription travelling from a client into (and through) the broker
    /// network.
    Subscribe {
        /// The subscribing client.
        subscriber: ClientId,
        /// The subscription filter.
        filter: Filter,
    },
    /// Retraction of a subscription.
    Unsubscribe {
        /// The unsubscribing client.
        subscriber: ClientId,
        /// The filter to retract.
        filter: Filter,
    },
    /// An advertisement describing notifications a producer will publish.
    Advertise {
        /// The advertising producer.
        publisher: ClientId,
        /// The advertised filter.
        filter: Filter,
    },
    /// Retraction of an advertisement.
    Unadvertise {
        /// The producer retracting its advertisement.
        publisher: ClientId,
        /// The advertised filter to retract.
        filter: Filter,
    },
    /// A notification delivered by a border broker to a local consumer.
    Deliver(Delivery),
    /// A queue of deliveries travelling to a local consumer as one message.
    /// Used by the mobility engine to ship counterpart replays (and merged
    /// held-back notifications) as a single batch instead of N
    /// per-notification sends.
    DeliverBatch(Vec<Delivery>),

    // ------------------------------------------------------------------
    // Physical mobility: the relocation protocol of Section 4
    // ------------------------------------------------------------------
    /// Re-issued subscription of a roaming client at its *new* border
    /// broker, carrying the last sequence number received for this
    /// subscription (`(C, F, 123)` in the paper).
    ReSubscribe {
        /// The roaming client.
        client: ClientId,
        /// The subscription being relocated.
        filter: Filter,
        /// Last sequence number the client received for this subscription.
        last_seq: u64,
    },
    /// The relocation request propagated broker-to-broker from the new
    /// border broker towards the old delivery path.
    Relocate {
        /// The roaming client.
        client: ClientId,
        /// The subscription being relocated.
        filter: Filter,
        /// Last sequence number the client received.
        last_seq: u64,
        /// The new border broker that initiated the relocation.
        new_broker: NodeId,
    },
    /// The fetch request sent by the junction broker along the *old* path
    /// towards the old border broker (`(C, F, 123, B4)` in the paper).
    /// Brokers on the old path re-point their routing entries towards the
    /// junction while forwarding it.
    Fetch {
        /// The roaming client.
        client: ClientId,
        /// The subscription being relocated.
        filter: Filter,
        /// Last sequence number the client received.
        last_seq: u64,
        /// The junction broker the replay has to be routed back to.
        junction: NodeId,
    },
    /// Replay of the notifications buffered by the virtual counterpart at
    /// the old border broker, in sequence order, routed back along the
    /// (re-pointed) path towards the new border broker.
    Replay {
        /// The roaming client.
        client: ClientId,
        /// The subscription the replay belongs to.
        filter: Filter,
        /// The buffered deliveries, in increasing sequence order.
        deliveries: Vec<Delivery>,
    },

    // ------------------------------------------------------------------
    // Time-aware subscriptions: retained-history replay
    // ------------------------------------------------------------------
    /// A subscription carrying a *time scope*: besides installing the filter
    /// for live traffic, the border broker gathers the retained publications
    /// with timestamps `>= since_micros` from the whole broker network and
    /// delivers them exactly once, merged in order with the live stream.
    SubscribeSince {
        /// The subscribing client.
        subscriber: ClientId,
        /// The subscription filter.
        filter: Filter,
        /// Start of the requested time window (microseconds).
        since_micros: u64,
        /// Last sequence number the client received for this subscription
        /// (0 for a fresh subscription); history deliveries continue the
        /// client's sequence stream from here.
        last_seq: u64,
    },
    /// The history request flooded broker-to-broker: every broker answers
    /// with the matching slice of its local retention store, routed back
    /// hop-by-hop towards `origin`.
    HistoryFetch {
        /// The subscribing client the history is gathered for.
        client: ClientId,
        /// The subscription filter retained publications are matched against.
        filter: Filter,
        /// Start of the requested time window (microseconds).
        since_micros: u64,
        /// The border broker that opened the history session.
        origin: NodeId,
    },
    /// A broker's answer to a [`Message::HistoryFetch`]: the matching
    /// retained publications with their retention timestamps, travelling
    /// hop-by-hop back along the reverse of the fetch path.
    HistoryReplay {
        /// The subscribing client the history is gathered for.
        client: ClientId,
        /// The subscription filter the entries matched.
        filter: Filter,
        /// `(ts_micros, envelope)` pairs in retention order.
        entries: Vec<(u64, Envelope)>,
    },

    // ------------------------------------------------------------------
    // Logical mobility: location-dependent subscriptions of Section 5
    // ------------------------------------------------------------------
    /// A location-dependent subscription entering (and propagating through)
    /// the broker network.  Each broker instantiates the `myloc` marker with
    /// `ploc(location, q_hop)` according to the adaptivity plan and increments
    /// `hop` before propagating further.
    LocSubscribe {
        /// Identifies the subscription (a client may hold several).
        sub_id: SubscriptionId,
        /// The subscription template containing `myloc` markers.
        template: LocationDependentFilter,
        /// The adaptivity plan assigning uncertainty steps to hops.
        plan: AdaptivityPlan,
        /// The client's current location.
        location: LocationId,
        /// Distance (in broker hops) from the consumer's border broker;
        /// 0 at the border broker itself.
        hop: usize,
    },
    /// Retraction of a location-dependent subscription.
    LocUnsubscribe {
        /// The subscription to retract.
        sub_id: SubscriptionId,
    },
    /// A location change of a logically mobile client, propagated along the
    /// delivery paths.  Each broker swaps its instantiated filter for the
    /// subscription and forwards the update with an incremented hop count.
    LocationUpdate {
        /// The subscription whose location changed.
        sub_id: SubscriptionId,
        /// The client's new location.
        location: LocationId,
        /// Distance (in broker hops) from the consumer's border broker.
        hop: usize,
    },
}

impl Message {
    /// `true` for the administrative control messages introduced by the
    /// mobility extension (used by the experiment harness to split message
    /// counts into "notifications" and "administrative messages" as in
    /// Figure 9).
    pub fn is_mobility_admin(&self) -> bool {
        matches!(
            self,
            Message::ReSubscribe { .. }
                | Message::Relocate { .. }
                | Message::Fetch { .. }
                | Message::Replay { .. }
                | Message::SubscribeSince { .. }
                | Message::HistoryFetch { .. }
                | Message::HistoryReplay { .. }
                | Message::LocSubscribe { .. }
                | Message::LocUnsubscribe { .. }
                | Message::LocationUpdate { .. }
        )
    }

    /// `true` for plain Rebeca administrative messages (subscriptions,
    /// advertisements, attach/detach).
    pub fn is_plain_admin(&self) -> bool {
        matches!(
            self,
            Message::Attach { .. }
                | Message::Detach { .. }
                | Message::Subscribe { .. }
                | Message::Unsubscribe { .. }
                | Message::Advertise { .. }
                | Message::Unadvertise { .. }
        )
    }

    /// `true` for data-plane messages (publications, routed notifications and
    /// deliveries).
    pub fn is_data(&self) -> bool {
        matches!(
            self,
            Message::Publish { .. }
                | Message::PublishBatch { .. }
                | Message::Notification(_)
                | Message::NotificationBatch(_)
                | Message::Deliver(_)
                | Message::DeliverBatch(_)
        )
    }

    /// A short, stable name used as a metrics counter suffix.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Message::Attach { .. } => "attach",
            Message::Detach { .. } => "detach",
            Message::Publish { .. } => "publish",
            Message::PublishBatch { .. } => "publish_batch",
            Message::Notification(_) => "notification",
            Message::NotificationBatch(_) => "notification_batch",
            Message::Subscribe { .. } => "subscribe",
            Message::Unsubscribe { .. } => "unsubscribe",
            Message::Advertise { .. } => "advertise",
            Message::Unadvertise { .. } => "unadvertise",
            Message::Deliver(_) => "deliver",
            Message::DeliverBatch(_) => "deliver_batch",
            Message::ReSubscribe { .. } => "resubscribe",
            Message::Relocate { .. } => "relocate",
            Message::Fetch { .. } => "fetch",
            Message::Replay { .. } => "replay",
            Message::SubscribeSince { .. } => "subscribe_since",
            Message::HistoryFetch { .. } => "history_fetch",
            Message::HistoryReplay { .. } => "history_replay",
            Message::LocSubscribe { .. } => "loc_subscribe",
            Message::LocUnsubscribe { .. } => "loc_unsubscribe",
            Message::LocationUpdate { .. } => "location_update",
        }
    }

    /// The pre-interned `broker.rx.<kind>` counter name for this message —
    /// a static table, so the broker's receive hot path increments its
    /// per-kind counter without allocating (see `Metrics::add`).
    pub fn rx_counter(&self) -> &'static str {
        match self {
            Message::Attach { .. } => "broker.rx.attach",
            Message::Detach { .. } => "broker.rx.detach",
            Message::Publish { .. } => "broker.rx.publish",
            Message::PublishBatch { .. } => "broker.rx.publish_batch",
            Message::Notification(_) => "broker.rx.notification",
            Message::NotificationBatch(_) => "broker.rx.notification_batch",
            Message::Subscribe { .. } => "broker.rx.subscribe",
            Message::Unsubscribe { .. } => "broker.rx.unsubscribe",
            Message::Advertise { .. } => "broker.rx.advertise",
            Message::Unadvertise { .. } => "broker.rx.unadvertise",
            Message::Deliver(_) => "broker.rx.deliver",
            Message::DeliverBatch(_) => "broker.rx.deliver_batch",
            Message::ReSubscribe { .. } => "broker.rx.resubscribe",
            Message::Relocate { .. } => "broker.rx.relocate",
            Message::Fetch { .. } => "broker.rx.fetch",
            Message::Replay { .. } => "broker.rx.replay",
            Message::SubscribeSince { .. } => "broker.rx.subscribe_since",
            Message::HistoryFetch { .. } => "broker.rx.history_fetch",
            Message::HistoryReplay { .. } => "broker.rx.history_replay",
            Message::LocSubscribe { .. } => "broker.rx.loc_subscribe",
            Message::LocUnsubscribe { .. } => "broker.rx.loc_unsubscribe",
            Message::LocationUpdate { .. } => "broker.rx.location_update",
        }
    }

    /// The trace context of the first sampled envelope this message carries
    /// (if any) — the link layer records its `link.tx`/`link.rx` spans
    /// against it.  Control messages carry no context: their relocation
    /// phase spans derive deterministically from the client instead.
    pub fn trace_context(&self) -> Option<TraceContext> {
        match self {
            Message::Notification(e) => e.trace,
            Message::NotificationBatch(es) => es.iter().find_map(|e| e.trace),
            Message::Deliver(d) => d.envelope.trace,
            Message::DeliverBatch(ds) => ds.iter().find_map(|d| d.envelope.trace),
            Message::Replay { deliveries, .. } => deliveries.iter().find_map(|d| d.envelope.trace),
            Message::HistoryReplay { entries, .. } => entries.iter().find_map(|(_, e)| e.trace),
            _ => None,
        }
    }

    /// The pre-interned `broker.tx.<kind>` counter name for this message
    /// (see [`Message::rx_counter`]).
    pub fn tx_counter(&self) -> &'static str {
        match self {
            Message::Attach { .. } => "broker.tx.attach",
            Message::Detach { .. } => "broker.tx.detach",
            Message::Publish { .. } => "broker.tx.publish",
            Message::PublishBatch { .. } => "broker.tx.publish_batch",
            Message::Notification(_) => "broker.tx.notification",
            Message::NotificationBatch(_) => "broker.tx.notification_batch",
            Message::Subscribe { .. } => "broker.tx.subscribe",
            Message::Unsubscribe { .. } => "broker.tx.unsubscribe",
            Message::Advertise { .. } => "broker.tx.advertise",
            Message::Unadvertise { .. } => "broker.tx.unadvertise",
            Message::Deliver(_) => "broker.tx.deliver",
            Message::DeliverBatch(_) => "broker.tx.deliver_batch",
            Message::ReSubscribe { .. } => "broker.tx.resubscribe",
            Message::Relocate { .. } => "broker.tx.relocate",
            Message::Fetch { .. } => "broker.tx.fetch",
            Message::Replay { .. } => "broker.tx.replay",
            Message::SubscribeSince { .. } => "broker.tx.subscribe_since",
            Message::HistoryFetch { .. } => "broker.tx.history_fetch",
            Message::HistoryReplay { .. } => "broker.tx.history_replay",
            Message::LocSubscribe { .. } => "broker.tx.loc_subscribe",
            Message::LocUnsubscribe { .. } => "broker.tx.loc_unsubscribe",
            Message::LocationUpdate { .. } => "broker.tx.location_update",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebeca_filter::Constraint;

    fn filter() -> Filter {
        Filter::new().with("service", Constraint::Eq("parking".into()))
    }

    #[test]
    fn message_classification() {
        let n = Notification::builder().attr("service", "parking").build();
        assert!(Message::Publish {
            publisher: ClientId::new(1),
            notification: n.clone()
        }
        .is_data());
        assert!(Message::Subscribe {
            subscriber: ClientId::new(1),
            filter: filter()
        }
        .is_plain_admin());
        assert!(Message::Fetch {
            client: ClientId::new(1),
            filter: filter(),
            last_seq: 3,
            junction: NodeId(2)
        }
        .is_mobility_admin());
        assert!(Message::LocationUpdate {
            sub_id: SubscriptionId::new(ClientId::new(1), 0),
            location: LocationId(4),
            hop: 1
        }
        .is_mobility_admin());
        assert!(!Message::Attach {
            client: ClientId::new(1)
        }
        .is_data());
    }

    #[test]
    fn kind_names_are_distinct_for_the_main_kinds() {
        let n = Notification::new();
        let msgs = [
            Message::Attach {
                client: ClientId::new(1),
            },
            Message::Publish {
                publisher: ClientId::new(1),
                notification: n.clone(),
            },
            Message::Subscribe {
                subscriber: ClientId::new(1),
                filter: filter(),
            },
            Message::Deliver(Delivery {
                subscriber: ClientId::new(1),
                filter: filter(),
                seq: 1,
                envelope: Envelope::new(ClientId::new(2), 1, n),
            }),
        ];
        let names: std::collections::BTreeSet<&str> = msgs.iter().map(|m| m.kind_name()).collect();
        assert_eq!(names.len(), msgs.len());
    }

    #[test]
    fn trace_context_surfaces_the_first_sampled_envelope() {
        let n = Notification::new();
        let ctx = TraceContext {
            trace_id: 7,
            parent_span: 3,
            sampled: true,
        };
        let mut traced = Envelope::new(ClientId::new(1), 1, n.clone());
        traced.trace = Some(ctx);
        let plain = Envelope::new(ClientId::new(1), 2, n);
        assert_eq!(
            Message::Notification(traced.clone()).trace_context(),
            Some(ctx)
        );
        assert_eq!(Message::Notification(plain.clone()).trace_context(), None);
        assert_eq!(
            Message::NotificationBatch(vec![plain.clone(), traced.clone()]).trace_context(),
            Some(ctx)
        );
        assert_eq!(
            Message::HistoryReplay {
                client: ClientId::new(1),
                filter: filter(),
                entries: vec![(5, traced)],
            }
            .trace_context(),
            Some(ctx)
        );
        assert_eq!(
            Message::Attach {
                client: ClientId::new(1)
            }
            .trace_context(),
            None
        );
    }
}
