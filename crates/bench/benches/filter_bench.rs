//! Criterion micro-benchmarks for the content-based filter model: matching,
//! covering and merging — the operations on every broker's hot path.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rebeca_filter::{Constraint, Filter, Notification, Value};
use rebeca_matcher::FilterSet;

fn sample_filter(i: u32) -> Filter {
    Filter::new()
        .with("service", Constraint::Eq("parking".into()))
        .with("cost", Constraint::Lt(Value::Int(3 + (i % 10) as i64)))
        .with(
            "location",
            Constraint::any_location_of([i % 50, (i + 1) % 50]),
        )
}

fn sample_notification(i: u32) -> Notification {
    Notification::builder()
        .attr("service", "parking")
        .attr("cost", (i % 12) as i64)
        .attr("location", Value::Location(i % 50))
        .attr("spot", i as i64)
        .build()
}

fn bench_matching(c: &mut Criterion) {
    let filter = sample_filter(3);
    let hit = sample_notification(3);
    let miss = sample_notification(29);
    c.bench_function("filter/match_hit", |b| {
        b.iter(|| black_box(filter.matches(black_box(&hit))))
    });
    c.bench_function("filter/match_miss", |b| {
        b.iter(|| black_box(filter.matches(black_box(&miss))))
    });
}

fn bench_covering(c: &mut Criterion) {
    let wide = Filter::new()
        .with("service", Constraint::Eq("parking".into()))
        .with("cost", Constraint::Lt(Value::Int(100)));
    let narrow = sample_filter(5);
    c.bench_function("filter/covers", |b| {
        b.iter(|| black_box(wide.covers(black_box(&narrow))))
    });
    c.bench_function("filter/overlaps", |b| {
        b.iter(|| black_box(wide.overlaps(black_box(&narrow))))
    });
}

fn bench_merging(c: &mut Criterion) {
    let f1 = Filter::new().with("location", Constraint::any_location_of(0..20));
    let f2 = Filter::new().with("location", Constraint::any_location_of(20..40));
    c.bench_function("filter/try_merge", |b| {
        b.iter(|| black_box(f1.try_merge(black_box(&f2))))
    });
}

fn bench_filterset(c: &mut Criterion) {
    let mut group = c.benchmark_group("filterset");
    for &n in &[10usize, 100, 1000] {
        group.bench_with_input(BenchmarkId::new("insert_covering", n), &n, |b, &n| {
            b.iter(|| {
                let mut set = FilterSet::new();
                for i in 0..n as u32 {
                    set.insert_covering(sample_filter(i));
                }
                black_box(set.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("match_against", n), &n, |b, &n| {
            let mut set = FilterSet::new();
            for i in 0..n as u32 {
                set.insert_covering(sample_filter(i));
            }
            let notification = sample_notification(7);
            b.iter(|| black_box(set.matches(black_box(&notification))))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_matching,
    bench_covering,
    bench_merging,
    bench_filterset
);
criterion_main!(benches);
