//! Offline API stand-in for the `rand` crate.
//!
//! Implements exactly the slice of the `rand` API this workspace uses —
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`Rng::gen_range`]/[`Rng::gen_bool`] over integer ranges — on top of a
//! small xoshiro256++ generator seeded through splitmix64.  The generator is
//! deterministic for a given seed, which is all the simulator and the
//! property tests rely on; statistical quality matches the needs of workload
//! generation, not cryptography.

#![forbid(unsafe_code)]

/// Object-safe core RNG trait (mirrors `rand::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Extension trait with the sampling helpers (mirrors `rand::Rng`).
///
/// Blanket-implemented for every [`RngCore`], including unsized (`?Sized`)
/// receivers, so generic code can take `R: Rng + ?Sized`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from the given range.
    ///
    /// Panics when the range is empty, like the real `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53 random bits → uniform in [0, 1).
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges a uniform value can be drawn from (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range using the given generator.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                let draw = rng.next_u64() as $wide % span;
                self.start.wrapping_add(draw as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                let draw = rng.next_u64() as $wide % span;
                start.wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_sample_range! {
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
}

/// Concrete generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with splitmix64, as the reference xoshiro
            // implementations recommend.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(0usize..=3);
            assert!(w <= 3);
        }
    }

    #[test]
    fn unsized_receiver_compiles() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u32 {
            rng.gen_range(0u32..10)
        }
        let mut rng = StdRng::seed_from_u64(1);
        assert!(draw(&mut rng) < 10);
    }

    #[test]
    fn gen_bool_is_sane() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "hits = {hits}");
    }
}
