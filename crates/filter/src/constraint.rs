//! Attribute constraints: the atomic predicates that make up a content-based
//! filter.
//!
//! A constraint restricts a *single* attribute of a notification.  Filters
//! (see [`Filter`](crate::Filter)) are conjunctions of constraints over
//! distinct attributes.  Besides evaluation ([`Constraint::matches_value`]),
//! constraints support the two relations that the Rebeca routing strategies
//! rely on:
//!
//! * **covering** ([`Constraint::covers`]) — `c1` covers `c2` when every
//!   value accepted by `c2` is accepted by `c1`;
//! * **overlapping** ([`Constraint::overlaps`]) — whether the accepted value
//!   sets may intersect (conservative: `true` when in doubt).

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// A predicate over one attribute value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Constraint {
    /// Attribute must be present, any value accepted.
    Exists,
    /// Attribute equals the value.
    Eq(Value),
    /// Attribute differs from the value (but must be present).
    Ne(Value),
    /// Attribute is strictly less than the value.
    Lt(Value),
    /// Attribute is less than or equal to the value.
    Le(Value),
    /// Attribute is strictly greater than the value.
    Gt(Value),
    /// Attribute is greater than or equal to the value.
    Ge(Value),
    /// Attribute lies in the closed interval `[low, high]`.
    Between(Value, Value),
    /// Attribute is one of the listed values.
    In(BTreeSet<Value>),
    /// Attribute is a string starting with the given prefix.
    Prefix(String),
    /// Attribute is a string ending with the given suffix.
    Suffix(String),
    /// Attribute is a string containing the given substring.
    Contains(String),
}

impl Constraint {
    /// Convenience constructor for [`Constraint::In`].
    pub fn any_of<I, V>(values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Constraint::In(values.into_iter().map(Into::into).collect())
    }

    /// Convenience constructor for a set of location values
    /// (`Value::Location`), used heavily by the logical-mobility machinery.
    pub fn any_location_of<I: IntoIterator<Item = u32>>(locations: I) -> Self {
        Constraint::In(locations.into_iter().map(Value::Location).collect())
    }

    /// Evaluates the constraint against a single attribute value.
    pub fn matches_value(&self, value: &Value) -> bool {
        use std::cmp::Ordering::*;
        match self {
            Constraint::Exists => true,
            Constraint::Eq(v) => value.value_eq(v),
            Constraint::Ne(v) => !value.value_eq(v) && value.kind() == v.kind(),
            Constraint::Lt(v) => matches!(value.partial_cmp_value(v), Some(Less)),
            Constraint::Le(v) => matches!(value.partial_cmp_value(v), Some(Less | Equal)),
            Constraint::Gt(v) => matches!(value.partial_cmp_value(v), Some(Greater)),
            Constraint::Ge(v) => matches!(value.partial_cmp_value(v), Some(Greater | Equal)),
            Constraint::Between(lo, hi) => {
                matches!(value.partial_cmp_value(lo), Some(Greater | Equal))
                    && matches!(value.partial_cmp_value(hi), Some(Less | Equal))
            }
            Constraint::In(set) => set.iter().any(|v| value.value_eq(v)),
            Constraint::Prefix(p) => value.as_str().is_some_and(|s| s.starts_with(p)),
            Constraint::Suffix(p) => value.as_str().is_some_and(|s| s.ends_with(p)),
            Constraint::Contains(p) => value.as_str().is_some_and(|s| s.contains(p)),
        }
    }

    /// Returns `true` when this constraint provably accepts every value the
    /// other constraint accepts.
    ///
    /// The check is *sound but not complete*: a `false` result means "could
    /// not prove covering", which is the safe answer for routing (the filter
    /// is then kept separately in the routing table).
    pub fn covers(&self, other: &Constraint) -> bool {
        use Constraint::*;
        if self == other {
            return true;
        }
        match (self, other) {
            // `Exists` accepts everything for the attribute.
            (Exists, _) => true,
            (_, Exists) => false,

            // Coverage of point constraints: just test membership.
            (c, Eq(v)) => c.matches_value(v),

            (Eq(_), _) => other
                .as_singleton()
                .map(|v| self.matches_value(&v))
                .unwrap_or(false),

            (In(s1), In(s2)) => s2.iter().all(|v| s1.iter().any(|w| w.value_eq(v))),
            (In(_), Between(lo, hi)) => {
                // Only provable when the interval is a single point.
                lo.value_eq(hi) && self.matches_value(lo)
            }
            (In(_), _) => false,

            (Lt(a), Lt(b)) | (Le(a), Le(b)) | (Le(a), Lt(b)) => ge(a, b),
            (Lt(a), Le(b)) => gt(a, b),
            (Lt(a), Between(_, hi)) => gt(a, hi),
            (Le(a), Between(_, hi)) => ge(a, hi),

            (Gt(a), Gt(b)) | (Ge(a), Ge(b)) | (Ge(a), Gt(b)) => le(a, b),
            (Gt(a), Ge(b)) => lt(a, b),
            (Gt(a), Between(lo, _)) => lt(a, lo),
            (Ge(a), Between(lo, _)) => le(a, lo),

            (Between(lo, hi), Between(lo2, hi2)) => le(lo, lo2) && ge(hi, hi2),
            (Between(lo, hi), In(s)) => s
                .iter()
                .all(|v| Constraint::Between(lo.clone(), hi.clone()).matches_value(v)),
            (Between(_, _), _) => false,

            (Prefix(p1), Prefix(p2)) => p2.starts_with(p1),
            (Suffix(p1), Suffix(p2)) => p2.ends_with(p1),
            (Contains(p1), Prefix(p2))
            | (Contains(p1), Suffix(p2))
            | (Contains(p1), Contains(p2)) => p2.contains(p1),
            (Prefix(_), In(s)) | (Suffix(_), In(s)) | (Contains(_), In(s)) => {
                !s.is_empty() && s.iter().all(|v| self.matches_value(v))
            }

            (Ne(a), Ne(b)) => a == b,
            (Ne(a), In(s)) => s.iter().all(|v| !v.value_eq(a)),
            (Ne(a), Lt(b)) => ge(a, b),
            (Ne(a), Gt(b)) => le(a, b),
            (Ne(a), Between(lo, hi)) => lt(a, lo) || gt(a, hi),
            (Ne(a), Prefix(p)) => a.as_str().map(|s| !s.starts_with(p)).unwrap_or(true),
            (Ne(_), _) => false,

            _ => false,
        }
    }

    /// Returns `true` when the accepted value sets of the two constraints may
    /// intersect.  Conservative: answers `true` whenever an intersection
    /// cannot be ruled out.
    pub fn overlaps(&self, other: &Constraint) -> bool {
        use Constraint::*;
        match (self, other) {
            (Exists, _) | (_, Exists) => true,
            (Eq(v), c) | (c, Eq(v)) => c.matches_value(v),
            (In(s), c) | (c, In(s)) => s.iter().any(|v| c.matches_value(v)),
            (Lt(a), Gt(b) | Ge(b)) | (Gt(b) | Ge(b), Lt(a)) => gt(a, b),
            (Le(a), Gt(b)) | (Gt(b), Le(a)) => gt(a, b),
            (Le(a), Ge(b)) | (Ge(b), Le(a)) => ge(a, b),
            (Between(_, hi), Gt(b)) | (Gt(b), Between(_, hi)) => gt(hi, b),
            (Between(_, hi), Ge(b)) | (Ge(b), Between(_, hi)) => ge(hi, b),
            (Between(lo, _), Lt(b)) | (Lt(b), Between(lo, _)) => lt(lo, b),
            (Between(lo, _), Le(b)) | (Le(b), Between(lo, _)) => le(lo, b),
            (Between(lo1, hi1), Between(lo2, hi2)) => le(lo1, hi2) && le(lo2, hi1),
            _ => true,
        }
    }

    /// If the constraint accepts exactly one value, returns it.
    pub fn as_singleton(&self) -> Option<Value> {
        match self {
            Constraint::Eq(v) => Some(v.clone()),
            Constraint::In(s) if s.len() == 1 => s.iter().next().cloned(),
            Constraint::Between(lo, hi) if lo.value_eq(hi) => Some(lo.clone()),
            _ => None,
        }
    }

    /// Returns the set of accepted values when the constraint is
    /// extensionally finite (i.e. [`Constraint::Eq`] or [`Constraint::In`]).
    pub fn as_value_set(&self) -> Option<BTreeSet<Value>> {
        match self {
            Constraint::Eq(v) => Some([v.clone()].into_iter().collect()),
            Constraint::In(s) => Some(s.clone()),
            _ => None,
        }
    }
}

// Small comparison helpers that fail closed (return `false`) on incomparable
// values, which keeps `covers` sound.
fn lt(a: &Value, b: &Value) -> bool {
    matches!(a.partial_cmp_value(b), Some(std::cmp::Ordering::Less))
}
fn le(a: &Value, b: &Value) -> bool {
    matches!(
        a.partial_cmp_value(b),
        Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
    )
}
fn gt(a: &Value, b: &Value) -> bool {
    matches!(a.partial_cmp_value(b), Some(std::cmp::Ordering::Greater))
}
fn ge(a: &Value, b: &Value) -> bool {
    matches!(
        a.partial_cmp_value(b),
        Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
    )
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Exists => write!(f, "exists"),
            Constraint::Eq(v) => write!(f, "= {v}"),
            Constraint::Ne(v) => write!(f, "!= {v}"),
            Constraint::Lt(v) => write!(f, "< {v}"),
            Constraint::Le(v) => write!(f, "<= {v}"),
            Constraint::Gt(v) => write!(f, "> {v}"),
            Constraint::Ge(v) => write!(f, ">= {v}"),
            Constraint::Between(lo, hi) => write!(f, "in [{lo}, {hi}]"),
            Constraint::In(set) => {
                write!(f, "in {{")?;
                for (i, v) in set.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            Constraint::Prefix(p) => write!(f, "starts-with {p:?}"),
            Constraint::Suffix(p) => write!(f, "ends-with {p:?}"),
            Constraint::Contains(p) => write!(f, "contains {p:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i64) -> Value {
        Value::Int(v)
    }

    #[test]
    fn eq_matches_only_the_value() {
        let c = Constraint::Eq(i(3));
        assert!(c.matches_value(&i(3)));
        assert!(c.matches_value(&Value::Float(3.0)));
        assert!(!c.matches_value(&i(4)));
    }

    #[test]
    fn ne_requires_same_kind_and_different_value() {
        let c = Constraint::Ne(i(3));
        assert!(c.matches_value(&i(4)));
        assert!(!c.matches_value(&i(3)));
        assert!(!c.matches_value(&Value::from("three")));
    }

    #[test]
    fn ordering_constraints_match_expected_ranges() {
        assert!(Constraint::Lt(i(5)).matches_value(&i(4)));
        assert!(!Constraint::Lt(i(5)).matches_value(&i(5)));
        assert!(Constraint::Le(i(5)).matches_value(&i(5)));
        assert!(Constraint::Gt(i(5)).matches_value(&i(6)));
        assert!(!Constraint::Gt(i(5)).matches_value(&i(5)));
        assert!(Constraint::Ge(i(5)).matches_value(&i(5)));
        assert!(Constraint::Between(i(1), i(3)).matches_value(&i(2)));
        assert!(Constraint::Between(i(1), i(3)).matches_value(&i(1)));
        assert!(Constraint::Between(i(1), i(3)).matches_value(&i(3)));
        assert!(!Constraint::Between(i(1), i(3)).matches_value(&i(4)));
    }

    #[test]
    fn set_constraint_matches_members_only() {
        let c = Constraint::any_of([1, 3, 5]);
        assert!(c.matches_value(&i(3)));
        assert!(!c.matches_value(&i(2)));
    }

    #[test]
    fn string_constraints_match_substrings() {
        assert!(Constraint::Prefix("Rebeca".into()).matches_value(&Value::from("Rebeca Drive")));
        assert!(!Constraint::Prefix("Rebeca".into()).matches_value(&Value::from("Main St")));
        assert!(Constraint::Suffix("Drive".into()).matches_value(&Value::from("Rebeca Drive")));
        assert!(Constraint::Contains("bec".into()).matches_value(&Value::from("Rebeca")));
        assert!(!Constraint::Contains("bec".into()).matches_value(&i(3)));
    }

    #[test]
    fn exists_matches_any_value() {
        assert!(Constraint::Exists.matches_value(&i(1)));
        assert!(Constraint::Exists.matches_value(&Value::from("x")));
    }

    #[test]
    fn covering_of_ranges() {
        assert!(Constraint::Lt(i(10)).covers(&Constraint::Lt(i(5))));
        assert!(!Constraint::Lt(i(5)).covers(&Constraint::Lt(i(10))));
        assert!(Constraint::Lt(i(10)).covers(&Constraint::Le(i(9))));
        assert!(!Constraint::Lt(i(10)).covers(&Constraint::Le(i(10))));
        assert!(Constraint::Le(i(10)).covers(&Constraint::Lt(i(10))));
        assert!(Constraint::Ge(i(0)).covers(&Constraint::Gt(i(0))));
        assert!(Constraint::Gt(i(0)).covers(&Constraint::Gt(i(5))));
        assert!(Constraint::Between(i(0), i(10)).covers(&Constraint::Between(i(2), i(8))));
        assert!(!Constraint::Between(i(2), i(8)).covers(&Constraint::Between(i(0), i(10))));
        assert!(Constraint::Lt(i(20)).covers(&Constraint::Between(i(0), i(10))));
        assert!(Constraint::Ge(i(0)).covers(&Constraint::Between(i(0), i(10))));
    }

    #[test]
    fn covering_of_sets_and_points() {
        assert!(Constraint::any_of([1, 2, 3]).covers(&Constraint::any_of([1, 3])));
        assert!(!Constraint::any_of([1, 3]).covers(&Constraint::any_of([1, 2, 3])));
        assert!(Constraint::any_of([1, 2, 3]).covers(&Constraint::Eq(i(2))));
        assert!(Constraint::Lt(i(5)).covers(&Constraint::Eq(i(4))));
        assert!(!Constraint::Lt(i(5)).covers(&Constraint::Eq(i(5))));
        assert!(Constraint::Eq(i(4)).covers(&Constraint::Eq(i(4))));
        assert!(Constraint::Between(i(0), i(5)).covers(&Constraint::any_of([0, 5])));
    }

    #[test]
    fn covering_of_strings() {
        assert!(Constraint::Prefix("Re".into()).covers(&Constraint::Prefix("Rebeca".into())));
        assert!(!Constraint::Prefix("Rebeca".into()).covers(&Constraint::Prefix("Re".into())));
        assert!(Constraint::Contains("e".into()).covers(&Constraint::Contains("Rebeca".into())));
        assert!(Constraint::Prefix("Re".into()).covers(&Constraint::Eq(Value::from("Rebeca"))));
        assert!(
            Constraint::Contains("bec".into()).covers(&Constraint::any_of([
                Value::from("Rebeca"),
                Value::from("Quebec")
            ]))
        );
    }

    #[test]
    fn exists_covers_everything_for_the_attribute() {
        assert!(Constraint::Exists.covers(&Constraint::Eq(i(1))));
        assert!(Constraint::Exists.covers(&Constraint::Prefix("x".into())));
        assert!(!Constraint::Eq(i(1)).covers(&Constraint::Exists));
    }

    #[test]
    fn ne_covering() {
        assert!(Constraint::Ne(i(9)).covers(&Constraint::any_of([1, 2, 3])));
        assert!(!Constraint::Ne(i(2)).covers(&Constraint::any_of([1, 2, 3])));
        assert!(Constraint::Ne(i(9)).covers(&Constraint::Lt(i(9))));
        assert!(Constraint::Ne(i(0)).covers(&Constraint::Gt(i(0))));
        assert!(Constraint::Ne(i(5)).covers(&Constraint::Between(i(6), i(9))));
        assert!(!Constraint::Ne(i(7)).covers(&Constraint::Between(i(6), i(9))));
    }

    #[test]
    fn covering_is_consistent_with_matching_spot_checks() {
        // If c1 covers c2 then any value matching c2 must match c1.
        let cases = vec![
            (
                Constraint::Lt(i(10)),
                Constraint::Lt(i(5)),
                vec![i(4), i(0), i(-3)],
            ),
            (
                Constraint::any_of([1, 2, 3, 4]),
                Constraint::any_of([2, 4]),
                vec![i(2), i(4)],
            ),
            (
                Constraint::Prefix("Re".into()),
                Constraint::Prefix("Reb".into()),
                vec![Value::from("Rebeca"), Value::from("Rebus")],
            ),
        ];
        for (c1, c2, values) in cases {
            assert!(c1.covers(&c2), "{c1} should cover {c2}");
            for v in values {
                assert!(c2.matches_value(&v));
                assert!(c1.matches_value(&v));
            }
        }
    }

    #[test]
    fn overlap_detection() {
        assert!(Constraint::Lt(i(5)).overlaps(&Constraint::Gt(i(3))));
        assert!(!Constraint::Lt(i(3)).overlaps(&Constraint::Gt(i(5))));
        assert!(Constraint::Le(i(5)).overlaps(&Constraint::Ge(i(5))));
        assert!(Constraint::any_of([1, 2]).overlaps(&Constraint::any_of([2, 3])));
        assert!(!Constraint::any_of([1, 2]).overlaps(&Constraint::any_of([3, 4])));
        assert!(Constraint::Eq(i(1)).overlaps(&Constraint::Exists));
    }

    #[test]
    fn singleton_extraction() {
        assert_eq!(Constraint::Eq(i(3)).as_singleton(), Some(i(3)));
        assert_eq!(Constraint::any_of([7]).as_singleton(), Some(i(7)));
        assert_eq!(Constraint::Between(i(2), i(2)).as_singleton(), Some(i(2)));
        assert_eq!(Constraint::Lt(i(3)).as_singleton(), None);
        assert_eq!(Constraint::any_of([1, 2]).as_singleton(), None);
    }

    #[test]
    fn value_set_extraction() {
        assert_eq!(
            Constraint::any_of([1, 2]).as_value_set(),
            Some([i(1), i(2)].into_iter().collect())
        );
        assert_eq!(
            Constraint::Eq(i(5)).as_value_set(),
            Some([i(5)].into_iter().collect())
        );
        assert_eq!(Constraint::Lt(i(5)).as_value_set(), None);
    }

    #[test]
    fn any_location_of_builds_location_set() {
        let c = Constraint::any_location_of([1, 2, 3]);
        assert!(c.matches_value(&Value::Location(2)));
        assert!(!c.matches_value(&Value::Location(4)));
        assert!(!c.matches_value(&i(2)));
    }

    #[test]
    fn display_formats_are_readable() {
        assert_eq!(Constraint::Eq(i(3)).to_string(), "= 3");
        assert_eq!(Constraint::Lt(i(3)).to_string(), "< 3");
        assert_eq!(Constraint::any_of([1, 2]).to_string(), "in {1, 2}");
        assert_eq!(Constraint::Exists.to_string(), "exists");
    }
}
