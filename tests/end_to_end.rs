//! Workspace-level integration tests exercising the public `rebeca` facade
//! across all crates: filters, routing, simulation, brokers and both mobility
//! protocols in one deployment.

use rebeca::{
    AdaptivityPlan, BrokerConfig, ClientAction, ClientId, Constraint, DelayModel, Filter,
    LocationDependentFilter, LocationId, LogicalMobilityMode, MovementGraph, Notification,
    RoutingStrategyKind, SimDuration, SimTime, SystemBuilder, Topology, Value,
};

fn stock_filter(symbols: &[&str]) -> Filter {
    Filter::new()
        .with("service", Constraint::Eq("stock".into()))
        .with("symbol", Constraint::any_of(symbols.iter().copied()))
}

fn stock_quote(symbol: &str, seq: i64) -> Notification {
    Notification::builder()
        .attr("service", "stock")
        .attr("symbol", symbol)
        .attr("price", 100 + seq % 20)
        .build()
}

fn parking_template() -> LocationDependentFilter {
    LocationDependentFilter::new("location", 0)
        .with_concrete("service", Constraint::Eq("parking".into()))
}

fn vacancy(location: LocationId, spot: i64) -> Notification {
    Notification::builder()
        .attr("service", "parking")
        .attr("location", Value::Location(location.raw()))
        .attr("spot", spot)
        .build()
}

/// A mixed deployment: a roaming stock monitor (physical mobility), a
/// location-aware parking client (logical mobility) and an immobile consumer
/// share one broker tree with two producers.  Each client sees exactly the
/// traffic it subscribed to, with the mobility guarantees of the paper.
#[test]
fn mixed_deployment_serves_every_client_correctly() {
    let graph = MovementGraph::grid(3, 3);
    let config = BrokerConfig::default()
        .with_strategy(RoutingStrategyKind::Covering)
        .with_movement_graph(graph.clone())
        .with_relocation_timeout(SimDuration::from_secs(20));
    let mut sys = SystemBuilder::new(&Topology::balanced_tree(2, 2))
        .config(config)
        .link_delay(DelayModel::constant_millis(5))
        .seed(2003)
        .build()
        .unwrap();

    // Client 1: roaming stock monitor, moves from broker 3 to broker 4.
    let monitor = ClientId::new(1);
    sys.add_client(
        monitor,
        LogicalMobilityMode::LocationDependent,
        &[3, 4],
        vec![
            (
                SimTime::from_millis(1),
                ClientAction::Attach {
                    broker: sys.broker_node(3).unwrap(),
                },
            ),
            (
                SimTime::from_millis(2),
                ClientAction::Subscribe(stock_filter(&["REBECA", "SIENA"])),
            ),
            (
                SimTime::from_secs(1),
                ClientAction::MoveTo {
                    broker: sys.broker_node(4).unwrap(),
                },
            ),
        ],
    )
    .unwrap();

    // Client 2: logically mobile parking client at broker 5.
    let driver = ClientId::new(2);
    sys.add_client(
        driver,
        LogicalMobilityMode::LocationDependent,
        &[5],
        vec![
            (
                SimTime::from_millis(1),
                ClientAction::Attach {
                    broker: sys.broker_node(5).unwrap(),
                },
            ),
            (
                SimTime::from_millis(2),
                ClientAction::LocSubscribe {
                    template: parking_template(),
                    plan: AdaptivityPlan::adaptive(1_000_000, &[5_000, 5_000]),
                    location: LocationId(0),
                },
            ),
            (
                SimTime::from_secs(1),
                ClientAction::SetLocation(LocationId(1)),
            ),
            (
                SimTime::from_secs(2),
                ClientAction::SetLocation(LocationId(2)),
            ),
        ],
    )
    .unwrap();

    // Client 3: immobile consumer of every stock quote at broker 6.
    let archive = ClientId::new(3);
    sys.add_client(
        archive,
        LogicalMobilityMode::LocationDependent,
        &[6],
        vec![
            (
                SimTime::from_millis(1),
                ClientAction::Attach {
                    broker: sys.broker_node(6).unwrap(),
                },
            ),
            (
                SimTime::from_millis(2),
                ClientAction::Subscribe(
                    Filter::new().with("service", Constraint::Eq("stock".into())),
                ),
            ),
        ],
    )
    .unwrap();

    // Producer A: stock quotes at broker 1.
    let exchange = ClientId::new(10);
    let symbols = ["REBECA", "SIENA", "GRYPHON"];
    let mut script = vec![(
        SimTime::from_millis(1),
        ClientAction::Attach {
            broker: sys.broker_node(1).unwrap(),
        },
    )];
    let quotes = 60u64;
    for i in 0..quotes {
        script.push((
            SimTime::from_millis(100 + i * 40),
            ClientAction::Publish(stock_quote(symbols[(i % 3) as usize], i as i64)),
        ));
    }
    sys.add_client(
        exchange,
        LogicalMobilityMode::LocationDependent,
        &[1],
        script,
    )
    .unwrap();

    // Producer B: parking vacancies at broker 2, cycling through locations.
    let sensors = ClientId::new(11);
    let mut script = vec![(
        SimTime::from_millis(1),
        ClientAction::Attach {
            broker: sys.broker_node(2).unwrap(),
        },
    )];
    for i in 0..60u64 {
        script.push((
            SimTime::from_millis(100 + i * 40),
            ClientAction::Publish(vacancy(LocationId((i % 9) as u32), i as i64)),
        ));
    }
    sys.add_client(
        sensors,
        LogicalMobilityMode::LocationDependent,
        &[2],
        script,
    )
    .unwrap();

    sys.run_until(SimTime::from_secs(10));

    // The roaming monitor: complete, duplicate-free, ordered delivery of the
    // REBECA and SIENA quotes (2 of every 3 publications).
    let monitor_log = sys.client_log(monitor).unwrap();
    assert!(monitor_log.is_clean(), "{:?}", monitor_log.violations());
    let expected: Vec<u64> = (1..=quotes).filter(|i| (i - 1) % 3 != 2).collect();
    assert_eq!(monitor_log.distinct_publisher_seqs(exchange), expected);
    // It never receives parking traffic.
    assert!(monitor_log
        .deliveries()
        .iter()
        .all(|d| d.envelope.publisher == exchange));

    // The archive receives every stock quote exactly once.
    let archive_log = sys.client_log(archive).unwrap();
    assert!(archive_log.is_clean());
    assert_eq!(
        archive_log.distinct_publisher_seqs(exchange),
        (1..=quotes).collect::<Vec<u64>>()
    );

    // The parking client only receives vacancies for rooms it was in, and it
    // receives a non-trivial number of them.
    let driver_log = sys.client_log(driver).unwrap();
    assert!(driver_log.len() > 3);
    for d in driver_log.deliveries() {
        let loc = d
            .envelope
            .notification
            .get("location")
            .and_then(|v| v.as_location())
            .unwrap();
        assert!(
            loc <= 2,
            "driver only ever announced locations 0, 1, 2; got {loc}"
        );
    }
}

/// The facade re-exports compose: filters built from the root crate work with
/// the routing engine, location model and simulator types directly.
#[test]
fn facade_types_compose() {
    use rebeca::routing::RoutingEngine;

    let filter = Filter::new()
        .with("service", Constraint::Eq("parking".into()))
        .with("cost", Constraint::Lt(3.into()));
    let mut engine: RoutingEngine<u8> = RoutingEngine::new(RoutingStrategyKind::Covering);
    assert!(!engine
        .handle_subscribe(filter.clone(), 1, &[1, 2])
        .is_empty());

    let graph = MovementGraph::paper_example();
    let a = graph.space().id("a").unwrap();
    let plan = AdaptivityPlan::adaptive(100_000, &[120_000, 50_000, 50_000]);
    assert_eq!(plan.steps(), &[0, 1, 1, 2]);
    assert_eq!(plan.location_sets(&graph, a)[0].len(), 1);

    let n = Notification::builder()
        .attr("service", "parking")
        .attr("cost", 1)
        .build();
    assert!(filter.matches(&n));
}

/// Scenario stress: many consumers with overlapping subscriptions across a
/// larger tree all observe clean logs while several of them roam.
#[test]
fn many_roaming_consumers_stay_consistent() {
    let config = BrokerConfig::default()
        .with_strategy(RoutingStrategyKind::Covering)
        .with_movement_graph(MovementGraph::grid(3, 3))
        .with_relocation_timeout(SimDuration::from_secs(20));
    let mut sys = SystemBuilder::new(&Topology::balanced_tree(3, 2))
        .config(config)
        .link_delay(DelayModel::constant_millis(5))
        .seed(7)
        .build()
        .unwrap();
    let broker_count = sys.broker_count();

    // Six consumers, all subscribed to the same stock stream, starting at
    // different brokers and each moving once at a different time.
    let consumers: Vec<ClientId> = (1..=6).map(ClientId::new).collect();
    for (i, &c) in consumers.iter().enumerate() {
        let start = 1 + (i % (broker_count - 1));
        let target = 1 + ((i + 3) % (broker_count - 1));
        sys.add_client(
            c,
            LogicalMobilityMode::LocationDependent,
            &[start, target],
            vec![
                (
                    SimTime::from_millis(1),
                    ClientAction::Attach {
                        broker: sys.broker_node(start).unwrap(),
                    },
                ),
                (
                    SimTime::from_millis(2),
                    ClientAction::Subscribe(stock_filter(&["REBECA"])),
                ),
                (
                    SimTime::from_millis(400 + i as u64 * 150),
                    ClientAction::MoveTo {
                        broker: sys.broker_node(target).unwrap(),
                    },
                ),
            ],
        )
        .unwrap();
    }

    let exchange = ClientId::new(100);
    let publications = 50u64;
    let mut script = vec![(
        SimTime::from_millis(1),
        ClientAction::Attach {
            broker: sys.broker_node(0).unwrap(),
        },
    )];
    for i in 0..publications {
        script.push((
            SimTime::from_millis(100 + i * 30),
            ClientAction::Publish(stock_quote("REBECA", i as i64)),
        ));
    }
    sys.add_client(
        exchange,
        LogicalMobilityMode::LocationDependent,
        &[0],
        script,
    )
    .unwrap();

    sys.run_until(SimTime::from_secs(15));

    for &c in &consumers {
        let log = sys.client_log(c).unwrap();
        assert!(log.is_clean(), "consumer {c}: {:?}", log.violations());
        assert_eq!(
            log.distinct_publisher_seqs(exchange),
            (1..=publications).collect::<Vec<u64>>(),
            "consumer {c} must receive the full stream"
        );
    }
}
