//! Reactive consumer: changing a subscription *in response to* a received
//! notification — impossible under a pre-scripted client, and the reason the
//! session API exists.
//!
//! A telemetry producer publishes on stream "A".  One of the A-notifications
//! carries a hand-over marker telling consumers that the feed will continue
//! on stream "B".  The consumer polls its inbox while the system runs,
//! notices the marker, and subscribes to stream B *because of what it just
//! received*.  Mid-run it also relocates to a different border broker.
//! Every matching notification still arrives exactly once, in order.
//!
//! The same application code runs twice: once on the deterministic
//! discrete-event simulator and once on the wall-clock `ThreadedDriver`
//! (one thread per node, std channels as links, real `Instant` timers) —
//! the sans-IO driver boundary makes the event loop a deployment choice.
//!
//! Run with:
//! ```text
//! cargo run --example reactive_consumer
//! ```

use rebeca::{
    ClientId, Constraint, DelayModel, Filter, MobilitySystem, Notification, RebecaError, SimTime,
    SystemBuilder, Topology,
};

fn stream_filter(stream: &str) -> Filter {
    Filter::new()
        .with("service", Constraint::Eq("telemetry".into()))
        .with("stream", Constraint::Eq(stream.into()))
}

fn reading(stream: &str, seq: i64) -> Notification {
    Notification::builder()
        .attr("service", "telemetry")
        .attr("stream", stream)
        .attr("reading", seq)
        .build()
}

/// The hand-over notification: still on stream A, but announcing that the
/// feed continues on stream B.
fn handover(seq: i64) -> Notification {
    Notification::builder()
        .attr("service", "telemetry")
        .attr("stream", "A")
        .attr("reading", seq)
        .attr("continues_on", "B")
        .build()
}

fn run(mut system: MobilitySystem, label: &str) -> Result<(), RebecaError> {
    let consumer = system.connect(ClientId::new(1), 0)?;
    consumer.subscribe(&mut system, stream_filter("A"))?;
    let producer = system.connect(ClientId::new(2), 2)?;
    system.run_until(SimTime::from_millis(30));

    let mut reacted_at = None;
    let poll = |system: &mut MobilitySystem, reacted_at: &mut Option<SimTime>| {
        for delivery in consumer.poll_deliveries(system).expect("known client") {
            let continues_on = delivery
                .envelope
                .notification
                .get("continues_on")
                .and_then(|v| v.as_str().map(str::to_owned));
            if let (None, Some(next)) = (&reacted_at, continues_on) {
                // React to the content of a delivery: follow the feed to its
                // announced continuation stream.
                consumer
                    .subscribe(system, stream_filter(&next))
                    .expect("known client");
                *reacted_at = Some(system.now());
            }
        }
    };

    // Stream A, readings 1..=6; reading 4 announces the hand-over to B.
    for i in 1..=6i64 {
        let n = if i == 4 { handover(i) } else { reading("A", i) };
        producer.publish(&mut system, n)?;
        system.run_until(SimTime::from_millis(30 + i as u64 * 10));
        poll(&mut system, &mut reacted_at);
    }

    // Quiet point: the consumer relocates to the middle broker.  Both its
    // subscriptions (A, and the reactively added B) move with it.
    system.run_until(SimTime::from_millis(150));
    consumer.move_to(&mut system, 1)?;
    system.run_until(SimTime::from_millis(220));

    // Stream A continues after the relocation...
    for i in 7..=10i64 {
        producer.publish(&mut system, reading("A", i))?;
        system.run_until(SimTime::from_millis(220 + (i as u64 - 6) * 10));
    }
    // ...and the announced stream B starts.
    for i in 11..=16i64 {
        producer.publish(&mut system, reading("B", i))?;
        system.run_until(SimTime::from_millis(260 + (i as u64 - 10) * 10));
    }
    system.run_until(SimTime::from_millis(700));
    poll(&mut system, &mut reacted_at);

    let log = consumer.log(&system)?;
    println!("[{label}]");
    println!(
        "  reacted to the hand-over marker at {}",
        reacted_at.expect("the consumer must have seen the marker")
    );
    println!(
        "  deliveries: {} (log clean: {})",
        log.len(),
        log.is_clean()
    );
    assert!(log.is_clean(), "violations: {:?}", log.violations());
    assert_eq!(
        log.distinct_publisher_seqs(producer.client()),
        (1..=16).collect::<Vec<u64>>(),
        "every A and B reading must arrive exactly once, across the relocation"
    );
    Ok(())
}

fn main() -> Result<(), RebecaError> {
    let topology = Topology::line(3);
    let builder = || {
        SystemBuilder::new(&topology)
            .link_delay(DelayModel::constant_millis(2))
            .seed(11)
    };

    // Deterministic virtual time.
    run(builder().build()?, "sim driver (virtual time)")?;
    // The identical application on the wall clock: ~0.7 s of real time.
    run(builder().build_threaded()?, "threaded driver (wall clock)")?;

    println!("\nreactive consumer finished: the subscription followed the feed, twice.");
    Ok(())
}
