//! Criterion wrappers around the paper-experiment drivers, so `cargo bench`
//! exercises every table and figure generator end to end (scaled down where
//! a full run would take minutes).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rebeca_bench::figures::{figure2, figure3, figure5, figure9, Figure3Params, Figure9Params};
use rebeca_bench::tables::{table1, table2, table3, table4};
use rebeca_sim::SimDuration;

fn bench_tables(c: &mut Criterion) {
    c.bench_function("experiments/tables_1_to_4", |b| {
        b.iter(|| {
            black_box(table1());
            black_box(table2());
            black_box(table3());
            black_box(table4());
        })
    });
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("figure2", |b| b.iter(|| black_box(figure2())));
    group.bench_function("figure3", |b| {
        b.iter(|| black_box(figure3(&Figure3Params::default())))
    });
    group.bench_function("figure5", |b| b.iter(|| black_box(figure5())));
    group.bench_function("figure9_quick", |b| {
        let params = Figure9Params {
            brokers: 4,
            producers: 2,
            grid_side: 4,
            publish_interval: SimDuration::from_millis(250),
            horizon_secs: 10,
            ..Figure9Params::default()
        };
        b.iter(|| black_box(figure9(black_box(&params))))
    });
    group.finish();
}

criterion_group!(benches, bench_tables, bench_figures);
criterion_main!(benches);
