//! Real TCP transport and process-per-broker deployment for the Rebeca
//! mobility middleware — entirely behind the sans-IO
//! [`Driver`](rebeca_core::Driver) boundary of PR 4, with **zero changes to
//! the protocol code**.
//!
//! The paper specifies its protocols over point-to-point, error-free, FIFO
//! links (Section 2.1).  Blocking `std::net` sockets with one thread per
//! connection direction satisfy that contract exactly — TCP is FIFO per
//! connection — so no async runtime is needed.  Four layers:
//!
//! 1. **wire codec** ([`wire`]) — length-prefixed + CRC32 frames (the same
//!    discipline as the mobility WAL, sharing `rebeca_mobility::codec`)
//!    carrying every [`Message`](rebeca_broker::Message) variant, plus the
//!    `Hello` handshake (node id, epoch, dial-back endpoint, link delay
//!    model) and heartbeats;
//! 2. **link layer** (`link` module) — a dial-and-pump writer thread and a
//!    decode-and-forward reader thread per connection direction.  Links are
//!    **self-healing**: a dropped socket is redialled with exponential
//!    backoff and jitter, unacknowledged frames are replayed from a bounded
//!    resend window (receivers deduplicate by per-direction sequence
//!    number), and `Hello` epochs fence off zombie incarnations of a
//!    restarted peer.  [`FaultPlan`] injects deterministic socket drops for
//!    chaos testing;
//! 3. **[`TcpDriver`]** — the [`Driver`](rebeca_core::Driver)
//!    implementation: an event loop over the locally hosted nodes with real
//!    `Instant` timers, sharing the FIFO clamp and event-ordering machinery
//!    with [`ThreadedDriver`](rebeca_core::ThreadedDriver) via
//!    [`rebeca_core::driver_util`];
//! 4. **deployment harness** — the `rebeca-node` binary hosts one broker
//!    process from a [`ClusterConfig`] file; client processes embed the
//!    driver through [`SystemBuilderTcp::build_tcp`];
//! 5. **status plane** ([`admin`] + the `rebeca-ctl` binary) — a
//!    `StatusRequest`/`StatusReport` admin frame pair served live from the
//!    driver's event loop: routing-table sizes, WAL depth and checkpoint
//!    age, restart epochs, per-link heartbeat freshness, relocation
//!    counters and hand-off latency histograms, plus a resumable tail of
//!    the bounded observability journal ([`rebeca_obs`]).  The
//!    `TraceRequest`/`TraceReport` pair serves the retained distributed
//!    tracing spans the same way; `rebeca-ctl trace` fans it across every
//!    broker and reassembles the causal tree.
//!
//! # Quick start (single process, loopback TCP)
//!
//! ```no_run
//! use rebeca_broker::ClientId;
//! use rebeca_core::SystemBuilder;
//! use rebeca_filter::{Constraint, Filter, Notification};
//! use rebeca_net::{Endpoint, NetConfig, SystemBuilderTcp};
//! use rebeca_sim::{DelayModel, SimDuration, Topology};
//!
//! # fn main() -> Result<(), rebeca_core::RebecaError> {
//! let endpoints: Vec<Endpoint> = (0..3)
//!     .map(|i| Endpoint::new("127.0.0.1", 7101 + i))
//!     .collect();
//! // One process hosting all three brokers — still talking loopback TCP
//! // to the client processes that dial in.
//! let mut brokers = SystemBuilder::new(&Topology::line(3))
//!     .link_delay(DelayModel::constant_millis(1))
//!     .build_tcp(NetConfig::new(endpoints.clone()).host_all())?;
//! let now = brokers.now();
//! brokers.run_until(now + SimDuration::from_secs(5));
//! # Ok(())
//! # }
//! ```
//!
//! For the multi-process deployment (one `rebeca-node` process per broker)
//! see the README's "Deployment" section and the `multiprocess` integration
//! test of this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admin;
mod config;
mod endpoint;
mod link;
mod tcp;
pub mod wire;

pub use admin::{fetch_status, fetch_trace, AdminError};
pub use config::{ClusterConfig, ClusterConfigError};
pub use endpoint::{Endpoint, ParseEndpointError};
pub use link::FaultPlan;
pub use tcp::{NetConfig, SystemBuilderTcp, TcpDriver};
