//! The multi-process loopback deployment test — the acceptance scenario of
//! the TCP transport:
//!
//! 1. spawn THREE `rebeca-node` OS processes (one broker each, sharing a
//!    generated cluster config),
//! 2. drive the quickstart-plus-relocation scenario from this process (the
//!    client process: consumer + producer sessions over TCP),
//! 3. assert the consumer's delivery log is byte-identical to the same
//!    scenario run on the deterministic `SimDriver`, with exactly-once
//!    delivery — and no protocol-crate code involved in the transport.
//!
//! Broker processes self-terminate after `--run-secs` as a safety net; the
//! test kills them as soon as the scenario completes.  Port collisions
//! (another process grabbing a probed port between probe and spawn) retry
//! the whole setup.

mod common;

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::time::Duration;

use rebeca_net::{ClusterConfig, Endpoint, NetConfig, SystemBuilderTcp};
use rebeca_sim::{DelayModel, Topology};

use common::{assert_exactly_once, drive_scenario, reference_sim_log};

/// Kills the spawned broker processes on scope exit, panic included.
struct Cluster {
    children: Vec<Child>,
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Where broker 0's periodic status snapshot lands: next to the config.
/// One atomically-replaced JSON document, not an append log.
fn status_file_path(config_path: &std::path::Path) -> std::path::PathBuf {
    config_path.with_file_name("status0.json")
}

/// Probes three free loopback ports by binding ephemeral listeners.
fn probe_ports() -> Vec<u16> {
    let probes: Vec<std::net::TcpListener> = (0..3)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind"))
        .collect();
    probes
        .iter()
        .map(|l| l.local_addr().unwrap().port())
        .collect()
}

/// Spawns the three broker processes and waits for each to report
/// `listening`.  Returns `None` when any child dies early (port stolen) so
/// the caller can retry with fresh ports.
///
/// Broker 0 additionally writes periodic status snapshots next to the
/// config (`--status-file`), smoke-tested after the scenario.
fn spawn_cluster(config_path: &std::path::Path) -> Option<Cluster> {
    let binary = env!("CARGO_BIN_EXE_rebeca-node");
    let mut cluster = Cluster {
        children: Vec::new(),
    };
    let (ready_tx, ready_rx) = channel();
    for broker in 0..3 {
        let mut command = Command::new(binary);
        command
            .arg("--config")
            .arg(config_path)
            .arg("--broker")
            .arg(broker.to_string())
            .arg("--run-secs")
            .arg("120")
            // Trace every publication and relocation: the scenario ends by
            // reassembling a causal tree across all three processes.
            .arg("--trace-sample")
            .arg("1");
        if broker == 0 {
            command
                .arg("--status-file")
                .arg(status_file_path(config_path))
                .arg("--status-interval-ms")
                .arg("200");
        }
        let mut child = command
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn rebeca-node");
        let stdout = child.stdout.take().expect("piped stdout");
        let tx = ready_tx.clone();
        std::thread::spawn(move || {
            let mut lines = BufReader::new(stdout).lines();
            while let Some(Ok(line)) = lines.next() {
                if line.contains("listening") {
                    let _ = tx.send(broker);
                    break;
                }
            }
            // Keep draining so the child never blocks on a full pipe.
            for _ in lines {}
        });
        cluster.children.push(child);
    }
    drop(ready_tx);

    let mut ready = 0;
    while ready < 3 {
        match ready_rx.recv_timeout(Duration::from_secs(30)) {
            Ok(_) => ready += 1,
            Err(RecvTimeoutError::Timeout) => panic!("broker processes not ready after 30s"),
            Err(RecvTimeoutError::Disconnected) => {
                // A child exited without reporting (its port was taken).
                return None;
            }
        }
        // Surface an early death instead of hanging on the scenario.
        for child in &mut cluster.children {
            if child.try_wait().expect("try_wait").is_some() {
                return None;
            }
        }
    }
    Some(cluster)
}

#[test]
fn three_broker_processes_relocation_is_byte_identical_to_the_simulator() {
    let tmp = std::env::temp_dir().join(format!("rebeca-multiprocess-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("create temp dir");
    let config_path = tmp.join("cluster.cfg");

    let mut attempt = 0;
    let (cluster, endpoints) = loop {
        attempt += 1;
        let ports = probe_ports();
        let endpoints: Vec<Endpoint> = ports
            .iter()
            .map(|&p| Endpoint::new("127.0.0.1", p))
            .collect();
        let cluster_cfg = ClusterConfig {
            endpoints: endpoints.clone(),
            topology: Topology::line(3),
            delay: DelayModel::constant_millis(1),
            seed: 7,
        };
        std::fs::write(&config_path, cluster_cfg.render()).expect("write config");
        match spawn_cluster(&config_path) {
            Some(cluster) => break (cluster, endpoints),
            None if attempt < 3 => continue,
            None => panic!("broker processes failed to start after {attempt} attempts"),
        }
    };

    // This process is the client process: consumer + producer sessions over
    // TCP against the three broker processes.
    let mut client_sys = common::builder(1)
        .build_tcp(NetConfig::new(endpoints.clone()).seed(5))
        .expect("client system builds");
    let tcp_log = drive_scenario(&mut client_sys, 60_000);

    assert_exactly_once(&tcp_log);
    // The broker processes sample traces (`--trace-sample 1`) while the
    // reference sim run does not, so compare the trace-stripped view: the
    // *deliveries* must still be byte-identical.
    assert_eq!(
        tcp_log.without_trace(),
        reference_sim_log(),
        "per-client delivery log must be byte-identical to the SimDriver run"
    );

    // Operator smoke: `rebeca-ctl status --json` against the live cluster
    // reaches every broker process and reports it healthy.
    let ctl = Command::new(env!("CARGO_BIN_EXE_rebeca-ctl"))
        .arg("status")
        .arg("--config")
        .arg(&config_path)
        .arg("--json")
        .arg("--timeout-ms")
        .arg("5000")
        .output()
        .expect("run rebeca-ctl");
    assert!(
        ctl.status.success(),
        "rebeca-ctl failed: {}",
        String::from_utf8_lossy(&ctl.stderr)
    );
    let stdout = String::from_utf8_lossy(&ctl.stdout);
    assert_eq!(
        stdout.matches("\"reachable\":true").count(),
        3,
        "every broker process answers: {stdout}"
    );
    assert!(
        !stdout.contains("\"reachable\":false"),
        "no broker is unreachable: {stdout}"
    );
    assert!(
        stdout.contains("\"wal_depth\"") && stdout.contains("\"handoff_latency_micros\""),
        "reports carry the documented fields: {stdout}"
    );

    // Broker 0 was started with `--status-file --status-interval-ms 200`:
    // by now (a multi-second scenario) it has replaced the snapshot file
    // several times, each time atomically (tmp + rename), so whatever we
    // read is exactly one complete JSON report — never a torn write, never
    // an append log.
    let snapshot = std::fs::read_to_string(status_file_path(&config_path))
        .expect("broker 0 wrote its status file");
    let snapshot = snapshot.trim();
    assert!(
        snapshot.starts_with('{')
            && snapshot.ends_with('}')
            && snapshot.contains("\"now_micros\"")
            && snapshot.lines().count() == 1,
        "the status file is one self-contained JSON report: {snapshot}"
    );

    // Structured freshness checks straight off the admin protocol: every
    // broker's wire links are up, with recent heartbeats.
    for (i, endpoint) in endpoints.iter().enumerate() {
        let report = rebeca_net::fetch_status(endpoint, None, Duration::from_secs(5))
            .unwrap_or_else(|e| panic!("broker {i} unreachable: {e}"));
        assert_eq!(report.brokers.len(), 1, "one broker per process");
        let broker = &report.brokers[0];
        assert_eq!(broker.broker, i as u64);
        for link in broker.links.iter().filter(|l| l.peer < 3) {
            assert!(link.connected, "broker {i} link to {} is down", link.peer);
            let age = link
                .last_heartbeat_age_ms
                .unwrap_or_else(|| panic!("broker {i} never heard peer {}", link.peer));
            assert!(age < 10_000, "stale heartbeat from {}: {age}ms", link.peer);
        }
    }

    // ---- Distributed tracing acceptance ------------------------------
    //
    // The nodes ran with `--trace-sample 1`, so every publication and the
    // mid-run relocation left spans in the three per-process span buffers.
    // Fan `TraceRequest` across the cluster (polling until the relocation
    // has settled and recorded its `hold` span) and reassemble.
    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    let tcp_spans = loop {
        let mut spans: Vec<rebeca_obs::SpanRecord> = Vec::new();
        for (i, endpoint) in endpoints.iter().enumerate() {
            let report = rebeca_net::fetch_trace(endpoint, None, Duration::from_secs(5))
                .unwrap_or_else(|e| panic!("broker {i} trace fetch failed: {e}"));
            spans.extend(report.spans);
        }
        if spans.iter().any(|s| s.kind == "hold") || std::time::Instant::now() >= deadline {
            break spans;
        }
        std::thread::sleep(Duration::from_millis(200));
    };

    let kinds: std::collections::BTreeSet<&str> =
        tcp_spans.iter().map(|s| s.kind.as_str()).collect();
    for expected in [
        "publish",
        "match",
        "route",
        "deliver",
        "link.tx",
        "link.rx",
        "relocation.resubscribe",
        "replay",
        "hold",
    ] {
        assert!(
            kinds.contains(expected),
            "TCP run is missing {expected:?} spans (got {kinds:?})"
        );
    }

    // A pre-relocation publication crosses all three broker processes
    // (producer at 2, consumer at 0 on the line topology).  Its causal
    // tree must be shape-equivalent to the same trace on the deterministic
    // simulator: identical (kind, broker) multiset once the TCP-only
    // link spans are set aside, and a single root when rendered.
    let trace_id = rebeca_obs::trace_id_for(common::PRODUCER.raw() as u64, 2);
    let shape = |spans: &[rebeca_obs::SpanRecord]| -> Vec<(String, u64)> {
        let mut pairs: Vec<(String, u64)> = spans
            .iter()
            .filter(|s| s.trace_id == trace_id && !s.kind.starts_with("link."))
            .map(|s| (s.kind.clone(), s.broker))
            .collect();
        pairs.sort();
        pairs
    };
    let sim_shape = shape(&reference_sim_spans());
    assert!(!sim_shape.is_empty(), "reference sim run traced nothing");
    assert_eq!(
        shape(&tcp_spans),
        sim_shape,
        "TCP trace shape must match the simulator's"
    );
    let tree = rebeca_obs::render_trace_tree(trace_id, &tcp_spans);
    assert!(
        tree.lines().skip(1).filter(|l| !l.starts_with(' ')).count() == 1
            && !tree.contains("(unrooted)"),
        "TCP publication trace reassembles into a single causal tree:\n{tree}"
    );

    // Operator smoke: `rebeca-ctl trace --latest` against the live cluster
    // resolves a trace id and prints its tree.
    let ctl = Command::new(env!("CARGO_BIN_EXE_rebeca-ctl"))
        .arg("trace")
        .arg("--config")
        .arg(&config_path)
        .arg("--latest")
        .arg("--timeout-ms")
        .arg("5000")
        .output()
        .expect("run rebeca-ctl trace");
    assert!(
        ctl.status.success(),
        "rebeca-ctl trace failed: {}",
        String::from_utf8_lossy(&ctl.stderr)
    );
    let stdout = String::from_utf8_lossy(&ctl.stdout);
    assert!(
        stdout.starts_with("trace ") && stdout.contains(" spans"),
        "trace output renders a causal tree header: {stdout}"
    );

    drop(cluster);
    let _ = std::fs::remove_dir_all(&tmp);
}

/// The reference trace: the identical scenario on the deterministic
/// simulator with full sampling, returning every span it recorded.
fn reference_sim_spans() -> Vec<rebeca_obs::SpanRecord> {
    let mut sys = common::builder(1)
        .trace_sample(1.0)
        .build()
        .expect("sim build");
    sys.metrics_mut().set_span_capacity(100_000);
    let log = drive_scenario(&mut sys, 60_000);
    assert!(log.is_clean(), "reference trace run must be clean");
    sys.metrics().spans().spans().cloned().collect()
}
