//! The mobility-aware Rebeca broker.
//!
//! [`MobileBroker`] wraps the static [`BrokerCore`] of `rebeca-broker` and
//! adds the two extensions the paper contributes:
//!
//! * **Physical mobility** (Section 4): virtual counterparts that buffer
//!   deliveries for disconnected clients, the reactive relocation protocol
//!   (re-subscription with the last received sequence number, junction
//!   detection against routing and advertisement tables, fetch requests that
//!   re-point the old delivery path, replay, in-order merge at the new border
//!   broker, and garbage collection at the old one).
//! * **Logical mobility** (Section 5): location-dependent subscriptions whose
//!   per-hop filters are instantiated from `ploc(location, q_hop)` according
//!   to an [`AdaptivityPlan`], and the location-update protocol that swaps
//!   those filters hop by hop when the client moves.
//!
//! All control traffic uses the ordinary [`Message`] vocabulary and travels
//! over the ordinary broker links ("pub/sub adherence").

use std::collections::BTreeMap;

use rebeca_broker::{
    BrokerCore, BrokerRole, ClientId, Delivery, DeliveryBuffer, Envelope, Message, SubscriptionId,
};
use rebeca_filter::{Filter, LocationDependentFilter};
use rebeca_location::{AdaptivityPlan, LocationId, MovementGraph};
use rebeca_routing::RoutingStrategyKind;
use rebeca_sim::{Context, Incoming, Node, NodeId, SimDuration};

/// State kept by the *new* border broker for one in-flight relocation: fresh
/// notifications are held back until the replay from the old border broker
/// has been merged in, so the client sees the old messages first (Section
/// 4.1).
#[derive(Debug, Clone, Default)]
struct HoldingBuffer {
    /// Envelopes that arrived for the relocating subscription since the
    /// re-subscription, in arrival order.
    envelopes: Vec<Envelope>,
    /// The last sequence number the client reported on re-subscription.
    last_seq: u64,
}

/// Per-broker state of one location-dependent subscription.
#[derive(Debug, Clone)]
struct LocSubState {
    /// The link pointing towards the consumer (a client node at the border
    /// broker, a broker link elsewhere).
    towards_consumer: NodeId,
    /// Hop distance from the consumer's border broker (0 at that broker).
    hop: usize,
    /// The subscription template with its `myloc` markers.
    template: LocationDependentFilter,
    /// The adaptivity plan assigning uncertainty steps to hops.
    plan: AdaptivityPlan,
    /// The consumer's last known location.
    location: LocationId,
    /// The currently installed instantiation of the template at this hop.
    current_filter: Filter,
}

/// Configuration shared by all brokers of a deployment.
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// Routing strategy used by the static routing engine.
    pub strategy: RoutingStrategyKind,
    /// The movement graph over which `ploc` is evaluated (the location model
    /// is deployment-wide configuration).
    pub movement_graph: MovementGraph,
    /// How long the new border broker waits for a replay before it flushes
    /// its holding buffer anyway (a safety valve; the paper notes that
    /// buffering approaches guarantee completeness only "within the
    /// boundaries of time and/or space limitations").
    pub relocation_timeout: SimDuration,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        Self {
            strategy: RoutingStrategyKind::Covering,
            movement_graph: MovementGraph::paper_example(),
            relocation_timeout: SimDuration::from_secs(10),
        }
    }
}

/// A Rebeca broker extended with the paper's mobility support.
#[derive(Debug, Clone)]
pub struct MobileBroker {
    core: BrokerCore,
    config: BrokerConfig,
    /// Virtual counterparts: buffered deliveries per disconnected
    /// `(client, filter)` at this (old border) broker.
    counterparts: BTreeMap<(ClientId, Filter), DeliveryBuffer>,
    /// Holding buffers per relocating `(client, filter)` at this (new border)
    /// broker.
    holding: BTreeMap<(ClientId, Filter), HoldingBuffer>,
    /// Next hop for replay messages per relocating `(client, filter)`:
    /// towards the new border broker on the new path, towards the junction on
    /// the old path.
    replay_route: BTreeMap<(ClientId, Filter), NodeId>,
    /// Location-dependent subscription state per subscription id.
    loc_subs: BTreeMap<SubscriptionId, LocSubState>,
    /// Monotonically increasing timer tags for relocation timeouts, mapping
    /// back to the relocation they guard.
    timeout_tags: BTreeMap<u64, (ClientId, Filter)>,
    next_timeout_tag: u64,
}

impl MobileBroker {
    /// Creates a mobility-aware broker.
    pub fn new(
        id: NodeId,
        role: BrokerRole,
        broker_links: Vec<NodeId>,
        config: BrokerConfig,
    ) -> Self {
        Self {
            core: BrokerCore::new(id, role, broker_links, config.strategy),
            config,
            counterparts: BTreeMap::new(),
            holding: BTreeMap::new(),
            replay_route: BTreeMap::new(),
            loc_subs: BTreeMap::new(),
            timeout_tags: BTreeMap::new(),
            next_timeout_tag: 0,
        }
    }

    /// Read access to the wrapped static broker.
    pub fn core(&self) -> &BrokerCore {
        &self.core
    }

    /// The configuration the broker was created with.
    pub fn config(&self) -> &BrokerConfig {
        &self.config
    }

    /// Number of `(client, filter)` streams currently buffered by virtual
    /// counterparts at this broker.
    pub fn counterpart_count(&self) -> usize {
        self.counterparts.len()
    }

    /// Total number of deliveries currently buffered by virtual counterparts.
    pub fn buffered_deliveries(&self) -> usize {
        self.counterparts.values().map(DeliveryBuffer::len).sum()
    }

    /// Number of relocations currently waiting for their replay at this
    /// broker.
    pub fn pending_relocations(&self) -> usize {
        self.holding.len()
    }

    /// Number of location-dependent subscriptions installed at this broker.
    pub fn loc_sub_count(&self) -> usize {
        self.loc_subs.len()
    }

    /// The currently installed filter for a location-dependent subscription,
    /// if this broker participates in it.
    pub fn loc_sub_filter(&self, sub_id: SubscriptionId) -> Option<&Filter> {
        self.loc_subs.get(&sub_id).map(|s| &s.current_filter)
    }

    /// The consumer location this broker last recorded for a
    /// location-dependent subscription.
    pub fn loc_sub_location(&self, sub_id: SubscriptionId) -> Option<LocationId> {
        self.loc_subs.get(&sub_id).map(|s| s.location)
    }

    // ------------------------------------------------------------------
    // Shared helpers
    // ------------------------------------------------------------------

    /// Moves parked deliveries (addressed to disconnected local clients) into
    /// their virtual counterparts.
    fn absorb_parked(&mut self) {
        for delivery in self.core.take_parked() {
            let key = (delivery.subscriber, delivery.filter.clone());
            self.counterparts.entry(key).or_default().push(delivery);
        }
    }

    /// Post-processes the static broker's output: deliveries that belong to a
    /// relocating subscription are held back instead of sent.
    fn intercept_holding(&mut self, out: Vec<(NodeId, Message)>) -> Vec<(NodeId, Message)> {
        if self.holding.is_empty() {
            return out;
        }
        let mut kept = Vec::with_capacity(out.len());
        for (node, message) in out {
            match message {
                Message::Deliver(delivery) => {
                    let key = (delivery.subscriber, delivery.filter.clone());
                    if let Some(holding) = self.holding.get_mut(&key) {
                        holding.envelopes.push(delivery.envelope);
                    } else {
                        kept.push((node, Message::Deliver(delivery)));
                    }
                }
                other => kept.push((node, other)),
            }
        }
        kept
    }

    /// Runs a static-broker handler and applies the mobility post-processing
    /// (holding interception and counterpart absorption).
    fn run_core(&mut self, from: NodeId, message: Message) -> Vec<(NodeId, Message)> {
        let out = match self.core.handle_message(from, message) {
            Ok(out) => out,
            Err(unhandled) => {
                unreachable!("static broker rejected a non-mobility message: {unhandled:?}")
            }
        };
        let out = self.intercept_holding(out);
        self.absorb_parked();
        out
    }

    fn broker_links_except(&self, exclude: NodeId) -> Vec<NodeId> {
        self.core
            .broker_links()
            .iter()
            .copied()
            .filter(|&l| l != exclude)
            .collect()
    }

    // ------------------------------------------------------------------
    // Physical mobility (Section 4)
    // ------------------------------------------------------------------

    /// Handles the re-subscription of a roaming client at this (new) border
    /// broker.
    fn handle_resubscribe(
        &mut self,
        client: ClientId,
        filter: Filter,
        last_seq: u64,
        from: NodeId,
        ctx: &mut Context<'_, Message>,
    ) -> Vec<(NodeId, Message)> {
        let mut out = Vec::new();

        // Did this broker already serve the subscription before the client
        // disappeared?  Then it is its own "old border broker" and can replay
        // locally without any relocation round trip.
        let was_local_subscription = self
            .core
            .client(client)
            .map(|r| r.subscriptions.contains(&filter))
            .unwrap_or(false);

        // The client is (re-)attached locally and its subscription installed
        // so that *new* notifications start flowing towards this broker.
        out.extend(self.run_core(from, Message::Attach { client }));
        let sub_out = self.core.handle_subscribe(client, filter.clone(), from);
        // The ordinary Subscribe propagation is replaced by the Relocate
        // control message below, so the forwards are dropped.
        drop(sub_out);

        let key = (client, filter.clone());

        // Case 1: the client reconnected to the very broker that holds its
        // virtual counterpart — replay locally, no relocation needed.
        if was_local_subscription || self.counterparts.contains_key(&key) {
            let buffer = self.counterparts.remove(&key).unwrap_or_default();
            let replay = buffer.replay_after(last_seq);
            let next_seq = replay
                .iter()
                .map(|d| d.seq)
                .max()
                .unwrap_or(last_seq)
                .saturating_add(1);
            self.core
                .sequences_mut()
                .fast_forward(client, &filter, next_seq);
            for delivery in replay {
                ctx.metrics().incr("mobility.replayed");
                out.push((from, Message::Deliver(delivery)));
            }
            return out;
        }

        // Case 2: genuine relocation — hold fresh notifications, look for the
        // old path.
        self.holding.insert(
            key.clone(),
            HoldingBuffer {
                envelopes: Vec::new(),
                last_seq,
            },
        );
        self.replay_route.insert(key.clone(), from);
        let tag = self.next_timeout_tag;
        self.next_timeout_tag += 1;
        self.timeout_tags.insert(tag, key);
        ctx.set_timer(self.config.relocation_timeout, tag);

        let relocate = Message::Relocate {
            client,
            filter,
            last_seq,
            new_broker: self.core.id(),
        };
        for link in self.core.broker_links().to_vec() {
            ctx.metrics().incr("mobility.relocate_sent");
            out.push((link, relocate.clone()));
        }
        out
    }

    /// Handles a relocation request travelling through the broker network.
    fn handle_relocate(
        &mut self,
        client: ClientId,
        filter: Filter,
        last_seq: u64,
        new_broker: NodeId,
        from: NodeId,
        ctx: &mut Context<'_, Message>,
    ) -> Vec<(NodeId, Message)> {
        let mut out = Vec::new();
        let key = (client, filter.clone());

        // Remember the way back towards the new border broker for the replay.
        self.replay_route.entry(key.clone()).or_insert(from);

        // Case 1: this broker is the old border broker itself (it holds the
        // virtual counterpart) — it is its own junction: replay directly and
        // garbage collect.
        if self.counterparts.contains_key(&key)
            || self
                .core
                .client(client)
                .map(|r| !r.connected && r.subscriptions.contains(&filter))
                .unwrap_or(false)
        {
            out.extend(self.replay_and_collect(client, &filter, last_seq, from, ctx));
            return out;
        }

        // Install the subscription for the new path (without ordinary
        // propagation — the Relocate message itself propagates).
        let already_routed_to_new_path = self.core.engine().table().contains_entry(&filter, &from);
        if !already_routed_to_new_path {
            self.core
                .engine_mut()
                .table_mut()
                .insert(filter.clone(), from);
        }

        // Junction test: an identical filter from a *different* link means the
        // old delivery path runs through this broker (Section 4.1: the broker
        // compares the re-issued subscription against its routing table and
        // advertisements).
        let old_links = self
            .core
            .engine()
            .table()
            .destinations_with_identical(&filter, Some(&from));
        let old_broker_links: Vec<NodeId> = old_links
            .into_iter()
            .filter(|l| self.core.broker_links().contains(l))
            .collect();

        if let Some(&old_link) = old_broker_links.first() {
            // This broker looks like the junction: from here on notifications
            // also flow towards the new path (the entry inserted above), and
            // the buffered ones are fetched from the old border broker.  The
            // old entry is *kept*: it may still serve other subscribers with
            // an identical filter behind the old path; notifications that
            // follow it after the old border broker has garbage collected the
            // roaming client are simply dropped there (see DESIGN.md,
            // "Deviations").
            ctx.metrics().incr("mobility.junction_detected");
            ctx.metrics().incr("mobility.fetch_sent");
            out.push((
                old_link,
                Message::Fetch {
                    client,
                    filter: filter.clone(),
                    last_seq,
                    junction: self.core.id(),
                },
            ));
        }
        // The relocation request keeps propagating like a subscription even
        // past an apparent junction: with several clients holding identical
        // filters, the "identical filter from another link" test can point
        // away from this client's actual old path, so the flooded request is
        // what guarantees that the old border broker (which holds the virtual
        // counterpart) is always reached.  Redundant fetches and replays are
        // idempotent: whoever asks after the counterpart has been collected
        // gets nothing.
        for link in self.broker_links_except(from) {
            ctx.metrics().incr("mobility.relocate_sent");
            out.push((
                link,
                Message::Relocate {
                    client,
                    filter: filter.clone(),
                    last_seq,
                    new_broker,
                },
            ));
        }
        out
    }

    /// Handles a fetch request travelling down the old delivery path towards
    /// the old border broker.
    fn handle_fetch(
        &mut self,
        client: ClientId,
        filter: Filter,
        last_seq: u64,
        junction: NodeId,
        from: NodeId,
        ctx: &mut Context<'_, Message>,
    ) -> Vec<(NodeId, Message)> {
        let mut out = Vec::new();
        let key = (client, filter.clone());

        // The replay will travel back the way the fetch came.
        self.replay_route.insert(key.clone(), from);

        // Old border broker: replay and clean up.
        if self.counterparts.contains_key(&key)
            || self
                .core
                .client(client)
                .map(|r| r.subscriptions.contains(&filter))
                .unwrap_or(false)
        {
            out.extend(self.replay_and_collect(client, &filter, last_seq, from, ctx));
            return out;
        }

        // Intermediate broker on the old path: point the delivery path
        // towards the junction as well and forward the fetch towards the old
        // border broker.  The entry towards the old border broker is kept for
        // the same aliasing reason as at the junction; the old border broker
        // drops traffic for the departed client after garbage collection.
        let old_links: Vec<NodeId> = self
            .core
            .engine()
            .table()
            .destinations_with_identical(&filter, Some(&from))
            .into_iter()
            .filter(|l| self.core.broker_links().contains(l))
            .collect();
        if let Some(&next) = old_links.first() {
            if !self.core.engine().table().contains_entry(&filter, &from) {
                self.core
                    .engine_mut()
                    .table_mut()
                    .insert(filter.clone(), from);
            }
            ctx.metrics().incr("mobility.fetch_forwarded");
            out.push((
                next,
                Message::Fetch {
                    client,
                    filter,
                    last_seq,
                    junction,
                },
            ));
        } else {
            ctx.metrics().incr("mobility.fetch_dead_end");
        }
        out
    }

    /// Replays the virtual counterpart of `(client, filter)` towards
    /// `towards` and garbage collects every resource associated with the
    /// roaming client at this broker.
    fn replay_and_collect(
        &mut self,
        client: ClientId,
        filter: &Filter,
        last_seq: u64,
        towards: NodeId,
        ctx: &mut Context<'_, Message>,
    ) -> Vec<(NodeId, Message)> {
        let key = (client, filter.clone());
        let buffer = self.counterparts.remove(&key).unwrap_or_default();
        let deliveries = buffer.replay_after(last_seq);
        // The old border broker may itself sit on the path between producers
        // and the new border broker (or host producers): future notifications
        // matching the subscription must keep flowing towards the new
        // location, so the delivery path is re-pointed here as well.
        if !self.core.engine().table().contains_entry(filter, &towards) {
            self.core
                .engine_mut()
                .table_mut()
                .insert(filter.clone(), towards);
        }
        ctx.metrics().incr("mobility.replay_sent");
        ctx.metrics()
            .add("mobility.replayed", deliveries.len() as u64);

        // Garbage collection: the subscription of the departed client and its
        // sequence state disappear from this broker; the routing entry
        // pointing at the (gone) client node is dropped.
        if let Some(record) = self.core.client(client).cloned() {
            self.core
                .engine_mut()
                .table_mut()
                .remove(filter, &record.node);
            self.core.sequences_mut().remove(client, filter);
            if let Some(rec) = self.core.client_mut(client) {
                rec.subscriptions.retain(|f| f != filter);
            }
            let now_empty = self
                .core
                .client(client)
                .map(|r| r.subscriptions.is_empty())
                .unwrap_or(false);
            if now_empty {
                self.core.remove_client(client);
            }
        }
        ctx.metrics().incr("mobility.gc_old_broker");

        vec![(
            towards,
            Message::Replay {
                client,
                filter: filter.clone(),
                deliveries,
            },
        )]
    }

    /// Handles a replay travelling back towards the new border broker.
    fn handle_replay(
        &mut self,
        client: ClientId,
        filter: Filter,
        deliveries: Vec<Delivery>,
        _from: NodeId,
        ctx: &mut Context<'_, Message>,
    ) -> Vec<(NodeId, Message)> {
        let key = (client, filter.clone());

        // New border broker: merge replayed and held-back notifications in
        // order and release them to the client.
        if let Some(holding) = self.holding.remove(&key) {
            let mut out = Vec::new();
            let client_node = match self.core.client(client) {
                Some(record) => record.node,
                None => {
                    // The client detached again in the meantime; buffer
                    // everything in a fresh counterpart instead.
                    let counterpart = self.counterparts.entry(key).or_default();
                    for d in deliveries {
                        counterpart.push(d);
                    }
                    return Vec::new();
                }
            };
            let mut max_seq = holding.last_seq;
            // Publications contained in the replay must not be delivered a
            // second time from the holding buffer (under flooding routing the
            // same notification reaches both the old and the new border
            // broker during the hand-over window).
            let mut replayed_publications = std::collections::BTreeSet::new();
            for delivery in deliveries {
                max_seq = max_seq.max(delivery.seq);
                replayed_publications
                    .insert((delivery.envelope.publisher, delivery.envelope.publisher_seq));
                ctx.metrics().incr("mobility.replay_delivered");
                out.push((client_node, Message::Deliver(delivery)));
            }
            // Continue the sequence numbering where the replay ended, then
            // release the held-back fresh notifications in arrival order.
            self.core
                .sequences_mut()
                .fast_forward(client, &filter, max_seq.saturating_add(1));
            for envelope in holding.envelopes {
                if replayed_publications.contains(&(envelope.publisher, envelope.publisher_seq)) {
                    ctx.metrics().incr("mobility.held_duplicate_suppressed");
                    continue;
                }
                let seq = self.core.sequences_mut().next(client, &filter);
                ctx.metrics().incr("mobility.held_delivered");
                out.push((
                    client_node,
                    Message::Deliver(Delivery {
                        subscriber: client,
                        filter: filter.clone(),
                        seq,
                        envelope,
                    }),
                ));
            }
            self.replay_route.remove(&key);
            return out;
        }

        // Intermediate broker: forward along the recorded route.
        if let Some(next) = self.replay_route.remove(&key) {
            ctx.metrics().incr("mobility.replay_forwarded");
            vec![(
                next,
                Message::Replay {
                    client,
                    filter,
                    deliveries,
                },
            )]
        } else {
            ctx.metrics().incr("mobility.replay_dropped");
            Vec::new()
        }
    }

    /// Relocation timeout: if the replay never arrived, flush the holding
    /// buffer so the client at least receives the fresh notifications.
    fn handle_timeout(
        &mut self,
        tag: u64,
        ctx: &mut Context<'_, Message>,
    ) -> Vec<(NodeId, Message)> {
        let Some(key) = self.timeout_tags.remove(&tag) else {
            return Vec::new();
        };
        let Some(holding) = self.holding.remove(&key) else {
            return Vec::new(); // replay already arrived
        };
        let (client, filter) = key.clone();
        let Some(record) = self.core.client(client) else {
            return Vec::new();
        };
        let client_node = record.node;
        ctx.metrics().incr("mobility.relocation_timeout");
        let mut out = Vec::new();
        self.core
            .sequences_mut()
            .fast_forward(client, &filter, holding.last_seq.saturating_add(1));
        for envelope in holding.envelopes {
            let seq = self.core.sequences_mut().next(client, &filter);
            out.push((
                client_node,
                Message::Deliver(Delivery {
                    subscriber: client,
                    filter: filter.clone(),
                    seq,
                    envelope,
                }),
            ));
        }
        self.replay_route.remove(&key);
        out
    }

    // ------------------------------------------------------------------
    // Logical mobility (Section 5)
    // ------------------------------------------------------------------

    /// Installs (or refreshes) the filter of a location-dependent
    /// subscription at this hop and returns the old filter, if any.
    fn install_loc_filter(&mut self, sub_id: SubscriptionId, state: LocSubState) -> Option<Filter> {
        let previous = self.loc_subs.insert(sub_id, state.clone());
        let towards = state.towards_consumer;
        if let Some(prev) = &previous {
            self.core
                .engine_mut()
                .table_mut()
                .remove(&prev.current_filter, &prev.towards_consumer);
            if let Some(client) = self.core.client_by_node(prev.towards_consumer) {
                if let Some(record) = self.core.client_mut(client) {
                    record.subscriptions.retain(|f| f != &prev.current_filter);
                }
            }
        }
        self.core
            .engine_mut()
            .table_mut()
            .insert(state.current_filter.clone(), towards);
        if let Some(client) = self.core.client_by_node(towards) {
            if let Some(record) = self.core.client_mut(client) {
                if !record.subscriptions.contains(&state.current_filter) {
                    record.subscriptions.push(state.current_filter.clone());
                }
            }
        }
        previous.map(|p| p.current_filter)
    }

    /// Handles a location-dependent subscription entering or travelling
    /// through the network.
    #[allow(clippy::too_many_arguments)] // mirrors the LocSubscribe message fields
    fn handle_loc_subscribe(
        &mut self,
        sub_id: SubscriptionId,
        template: LocationDependentFilter,
        plan: AdaptivityPlan,
        location: LocationId,
        hop: usize,
        from: NodeId,
        ctx: &mut Context<'_, Message>,
    ) -> Vec<(NodeId, Message)> {
        // If the subscription comes directly from a local client, make sure
        // the client is attached.
        if self.core.client_by_node(from).is_none() && !self.core.broker_links().contains(&from) {
            self.core.handle_attach(sub_id.client, from);
        }

        let q = plan.step_at(hop);
        let locations = self
            .config
            .movement_graph
            .ploc(location, q)
            .into_iter()
            .map(|l| l.raw());
        let current_filter = template.instantiate(locations);
        self.install_loc_filter(
            sub_id,
            LocSubState {
                towards_consumer: from,
                hop,
                template: template.clone(),
                plan: plan.clone(),
                location,
                current_filter,
            },
        );
        ctx.metrics().incr("logical.subscription_installed");

        self.broker_links_except(from)
            .into_iter()
            .map(|link| {
                ctx.metrics().incr("logical.subscribe_forwarded");
                (
                    link,
                    Message::LocSubscribe {
                        sub_id,
                        template: template.clone(),
                        plan: plan.clone(),
                        location,
                        hop: hop + 1,
                    },
                )
            })
            .collect()
    }

    /// Handles the retraction of a location-dependent subscription.
    fn handle_loc_unsubscribe(
        &mut self,
        sub_id: SubscriptionId,
        from: NodeId,
    ) -> Vec<(NodeId, Message)> {
        if let Some(state) = self.loc_subs.remove(&sub_id) {
            self.core
                .engine_mut()
                .table_mut()
                .remove(&state.current_filter, &state.towards_consumer);
            if let Some(client) = self.core.client_by_node(state.towards_consumer) {
                if let Some(record) = self.core.client_mut(client) {
                    record.subscriptions.retain(|f| f != &state.current_filter);
                }
            }
        }
        self.broker_links_except(from)
            .into_iter()
            .map(|link| (link, Message::LocUnsubscribe { sub_id }))
            .collect()
    }

    /// Handles a location update travelling along the delivery paths: the
    /// broker swaps its instantiated filter (unsubscribing vanished
    /// locations, subscribing new ones) and forwards the update.
    fn handle_location_update(
        &mut self,
        sub_id: SubscriptionId,
        location: LocationId,
        hop: usize,
        from: NodeId,
        ctx: &mut Context<'_, Message>,
    ) -> Vec<(NodeId, Message)> {
        let Some(state) = self.loc_subs.get(&sub_id).cloned() else {
            // Not participating in this subscription (e.g. the update reached
            // a broker the subscription never covered): nothing to do.
            return Vec::new();
        };
        let q = state.plan.step_at(state.hop);
        let locations = self
            .config
            .movement_graph
            .ploc(location, q)
            .into_iter()
            .map(|l| l.raw());
        let new_filter = state.template.instantiate(locations);
        let unchanged = new_filter == state.current_filter;
        self.install_loc_filter(
            sub_id,
            LocSubState {
                location,
                current_filter: new_filter,
                ..state
            },
        );
        if unchanged {
            ctx.metrics().incr("logical.update_noop");
        } else {
            ctx.metrics().incr("logical.filter_swapped");
        }

        self.broker_links_except(from)
            .into_iter()
            .map(|link| {
                ctx.metrics().incr("logical.update_forwarded");
                (
                    link,
                    Message::LocationUpdate {
                        sub_id,
                        location,
                        hop: hop + 1,
                    },
                )
            })
            .collect()
    }
}

impl Node for MobileBroker {
    type Message = Message;

    fn handle(&mut self, ctx: &mut Context<'_, Message>, event: Incoming<Message>) {
        let out = match event {
            Incoming::Timer { tag } => self.handle_timeout(tag, ctx),
            Incoming::Message { from, message } => {
                ctx.metrics()
                    .incr(&format!("broker.rx.{}", message.kind_name()));
                match message {
                    Message::ReSubscribe {
                        client,
                        filter,
                        last_seq,
                    } => self.handle_resubscribe(client, filter, last_seq, from, ctx),
                    Message::Relocate {
                        client,
                        filter,
                        last_seq,
                        new_broker,
                    } => self.handle_relocate(client, filter, last_seq, new_broker, from, ctx),
                    Message::Fetch {
                        client,
                        filter,
                        last_seq,
                        junction,
                    } => self.handle_fetch(client, filter, last_seq, junction, from, ctx),
                    Message::Replay {
                        client,
                        filter,
                        deliveries,
                    } => self.handle_replay(client, filter, deliveries, from, ctx),
                    Message::LocSubscribe {
                        sub_id,
                        template,
                        plan,
                        location,
                        hop,
                    } => {
                        self.handle_loc_subscribe(sub_id, template, plan, location, hop, from, ctx)
                    }
                    Message::LocUnsubscribe { sub_id } => self.handle_loc_unsubscribe(sub_id, from),
                    Message::LocationUpdate {
                        sub_id,
                        location,
                        hop,
                    } => self.handle_location_update(sub_id, location, hop, from, ctx),
                    other => self.run_core(from, other),
                }
            }
        };
        for (to, message) in out {
            ctx.metrics()
                .incr(&format!("broker.tx.{}", message.kind_name()));
            ctx.send(to, message);
        }
    }
}
