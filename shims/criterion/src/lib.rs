//! Offline API stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion API the workspace benches use
//! (`Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `black_box`, `criterion_group!`, `criterion_main!`) with a
//! real measurement loop: each benchmark is warmed up, then timed over
//! adaptively sized batches until the target measurement time is reached,
//! and the median per-iteration time is reported.
//!
//! Reporting:
//! * human-readable lines on stdout (`name ... time: 1.234 µs/iter`), and
//! * when the environment variable `CRITERION_JSON` is set, a JSON array of
//!   `{"name", "ns_per_iter", "iters"}` records appended to that file —
//!   used by the repo's `BENCH_matcher.json` baseline.

#![forbid(unsafe_code)]

use std::fmt;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a value/computation under test.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One benchmark measurement, as recorded by the harness.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Fully qualified benchmark name (`group/function/param`).
    pub name: String,
    /// Median wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Total iterations executed during measurement.
    pub iters: u64,
}

/// Entry point object handed to every bench target (mirrors
/// `criterion::Criterion`).
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    results: Vec<Sample>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: duration_from_env("CRITERION_MEASUREMENT_MS", 300),
            warm_up_time: duration_from_env("CRITERION_WARMUP_MS", 60),
            results: Vec::new(),
        }
    }
}

fn duration_from_env(var: &str, default_ms: u64) -> Duration {
    let ms = std::env::var(var)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(default_ms);
    Duration::from_millis(ms)
}

impl Criterion {
    /// Overrides the measurement time (chainable, like criterion's builder).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Overrides the warm-up time.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Accepted for API compatibility; the stand-in sizes samples by time.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample = run_bench(name, self.warm_up_time, self.measurement_time, &mut f);
        self.results.push(sample);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// All samples measured so far.
    pub fn samples(&self) -> &[Sample] {
        &self.results
    }

    /// Writes the JSON report when `CRITERION_JSON` is set.  Called by
    /// [`criterion_main!`]; harmless to call more than once.
    pub fn finalize(&self) {
        let Ok(path) = std::env::var("CRITERION_JSON") else {
            return;
        };
        if self.results.is_empty() {
            return;
        }
        let mut out = String::from("[\n");
        for (i, s) in self.results.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "  {{\"name\": {:?}, \"ns_per_iter\": {:.1}, \"iters\": {}}}",
                s.name, s.ns_per_iter, s.iters
            ));
        }
        out.push_str("\n]\n");
        // Appends one JSON document per bench binary; the collector that
        // builds BENCH_matcher.json runs one binary per file.
        let result = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(out.as_bytes()));
        if let Err(e) = result {
            eprintln!("criterion shim: cannot write {path}: {e}");
        }
    }
}

/// A group of benchmarks sharing a name prefix (mirrors
/// `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; the stand-in sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (throughput annotation is not used in
    /// the reports the stand-in produces).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_benchmark_id());
        let sample = run_bench(
            &name,
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
            &mut f,
        );
        self.criterion.results.push(sample);
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier of a parameterized benchmark (mirrors `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    /// Identifier carrying just a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

/// Conversion of the various id forms accepted by `bench_function`.
pub trait IntoBenchmarkId {
    /// The display name used in reports.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Throughput annotation (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The per-benchmark timing handle (mirrors `criterion::Bencher`).
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `routine` (call-overhead amortized).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    warm_up: Duration,
    measurement: Duration,
    f: &mut F,
) -> Sample {
    // Warm-up and batch-size calibration: grow the batch until one batch
    // takes at least ~1/20 of the measurement window (or the warm-up budget
    // is exhausted for very slow routines).
    let mut batch = 1u64;
    let warm_start = Instant::now();
    let mut per_iter_estimate;
    loop {
        let mut b = Bencher {
            iters: batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_estimate = b.elapsed.as_secs_f64() / batch as f64;
        if b.elapsed >= measurement / 20 || warm_start.elapsed() >= warm_up {
            break;
        }
        batch = batch.saturating_mul(2);
    }
    // Choose a batch so that ~10 batches fill the measurement window.
    let target_batch_secs = measurement.as_secs_f64() / 10.0;
    if per_iter_estimate > 0.0 {
        batch = ((target_batch_secs / per_iter_estimate) as u64).clamp(1, u64::MAX);
    }

    let mut samples_ns: Vec<f64> = Vec::new();
    let mut total_iters = 0u64;
    let measure_start = Instant::now();
    while measure_start.elapsed() < measurement || samples_ns.len() < 3 {
        let mut b = Bencher {
            iters: batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / batch as f64);
        total_iters += batch;
        if samples_ns.len() >= 200 {
            break;
        }
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let median = samples_ns[samples_ns.len() / 2];
    println!(
        "{name:<60} time: {:>12}/iter ({total_iters} iters)",
        format_ns(median)
    );
    Sample {
        name: name.to_string(),
        ns_per_iter: median,
        iters: total_iters,
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of bench targets (mirrors `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
            criterion.finalize();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main` (mirrors `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_trivial_routine() {
        std::env::remove_var("CRITERION_JSON");
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(c.samples().len(), 1);
        assert!(c.samples()[0].ns_per_iter >= 0.0);
        assert!(c.samples()[0].iters > 0);
    }

    #[test]
    fn group_names_are_qualified() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        {
            let mut g = c.benchmark_group("grp");
            g.bench_with_input(BenchmarkId::new("f", 3), &3, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        assert_eq!(c.samples()[0].name, "grp/f/3");
    }
}
