//! Smart building: combining logical and physical mobility.
//!
//! An employee walks through an office building (lobby → corridor → office →
//! meeting room) carrying a tablet that shows facility events — temperature
//! alarms, printer status, meeting reminders — *for the room the employee is
//! currently in*.  The rooms form a movement graph; the subscription is
//! location dependent (logical mobility).  Halfway through, the tablet also
//! switches from the ground-floor access point to the first-floor access
//! point (physical mobility), exercising both protocols together.
//!
//! The tablet is an interactive [`rebeca::Session`] — each room change and
//! the access-point switch are imperative calls interleaved with the running
//! system.  The sensor gateway is a scripted client.
//!
//! Run with:
//! ```text
//! cargo run --example smart_building
//! ```

use rebeca::{
    AdaptivityPlan, BrokerConfig, ClientAction, ClientId, Constraint, DelayModel,
    LocationDependentFilter, LocationSpace, LogicalMobilityMode, MovementGraph, Notification,
    RebecaError, RoutingStrategyKind, SimDuration, SimTime, SystemBuilder, Topology, Value,
};

fn building() -> MovementGraph {
    let mut rooms = LocationSpace::new();
    let lobby = rooms.add("lobby");
    let corridor = rooms.add("corridor");
    let office = rooms.add("office");
    let meeting = rooms.add("meeting-room");
    let kitchen = rooms.add("kitchen");
    let mut graph = MovementGraph::new(rooms);
    graph.add_edge(lobby, corridor);
    graph.add_edge(corridor, office);
    graph.add_edge(corridor, meeting);
    graph.add_edge(corridor, kitchen);
    graph
}

fn facility_event(kind: &str, room: u32, detail: i64) -> Notification {
    Notification::builder()
        .attr("service", "facility")
        .attr("kind", kind)
        .attr("location", Value::Location(room))
        .attr("detail", detail)
        .build()
}

fn main() -> Result<(), RebecaError> {
    let graph = building();
    let room = |name: &str| graph.space().id(name).unwrap();

    // Broker network: a star — the building controller broker in the middle
    // (broker 0), access points on brokers 1 (ground floor) and 2 (first
    // floor), the sensor gateway on broker 3.
    let mut system = SystemBuilder::new(&Topology::star(3))
        .config(
            BrokerConfig::default()
                .with_strategy(RoutingStrategyKind::Merging)
                .with_movement_graph(graph.clone())
                .with_relocation_timeout(SimDuration::from_secs(10)),
        )
        .link_delay(DelayModel::constant_millis(4))
        .seed(99)
        .build()?;

    // The sensor gateway publishes events for every room round-robin.
    let gateway = ClientId::new(50);
    let kinds = ["temperature", "printer", "meeting-reminder"];
    let mut script = vec![(
        SimTime::from_millis(1),
        ClientAction::Attach {
            broker: system.broker_node(3)?,
        },
    )];
    let mut t = SimTime::from_millis(60);
    let mut i = 0i64;
    while t < SimTime::from_secs(8) {
        let room_id = (i as u32) % graph.space().len() as u32;
        let kind = kinds[(i as usize) % kinds.len()];
        script.push((t, ClientAction::Publish(facility_event(kind, room_id, i))));
        i += 1;
        t += SimDuration::from_millis(100);
    }
    system.add_client(
        gateway,
        LogicalMobilityMode::LocationDependent,
        &[3],
        script,
    )?;

    // The employee's tablet: facility events for the current room only,
    // driven interactively at the ground-floor access point (broker 1).
    let tablet = system.connect(ClientId::new(1), 1)?;
    tablet.loc_subscribe(
        &mut system,
        LocationDependentFilter::new("location", 0)
            .with_concrete("service", Constraint::Eq("facility".into())),
        AdaptivityPlan::adaptive(2_000_000, &[4_000, 4_000]),
        room("lobby"),
    )?;

    // Walk through the building, one room every two seconds.
    system.run_until(SimTime::from_secs(2));
    tablet.set_location(&mut system, room("corridor"))?;
    system.run_until(SimTime::from_secs(4));
    tablet.set_location(&mut system, room("office"))?;
    // Upstairs: the tablet re-associates with the first-floor access point
    // (physical mobility) while staying subscribed.
    system.run_until(SimTime::from_millis(5_000));
    tablet.move_to(&mut system, 2)?;
    system.run_until(SimTime::from_secs(6));
    tablet.set_location(&mut system, room("meeting-room"))?;
    system.run_until(SimTime::from_secs(8));

    let log = tablet.log(&system)?;
    println!("facility events shown on the tablet: {}", log.len());
    println!(
        "total messages in the network      : {}",
        system.total_messages()
    );

    let mut per_room = std::collections::BTreeMap::new();
    for delivery in log.deliveries() {
        let room_id = delivery
            .envelope
            .notification
            .get("location")
            .and_then(|v| v.as_location())
            .unwrap();
        let name = graph
            .space()
            .name(rebeca::LocationId::new(room_id))
            .unwrap()
            .to_string();
        *per_room.entry(name).or_insert(0u32) += 1;
    }
    println!("\nevents per room (itinerary: lobby -> corridor -> office -> meeting-room):");
    for (name, count) in &per_room {
        println!("  {name:<14} {count}");
    }
    // The kitchen was never visited, so no kitchen events were shown.
    assert!(!per_room.contains_key("kitchen"));
    assert!(
        log.len() > 10,
        "the tablet must have received a steady stream"
    );
    println!(
        "\nsmart building finished: the tablet only ever showed events for the room it was in."
    );
    Ok(())
}
