//! The sequential (single-shard) predicate index.
//!
//! # Data structure
//!
//! A [`FilterIndex`] decomposes every inserted [`Filter`] into its
//! per-attribute [`Constraint`]s.  Constraints are **interned and
//! deduplicated**: each distinct `(attribute, constraint)` pair is stored
//! once as a *predicate* with an inline small-vector posting list of the
//! filters using it, and the constraint payload itself lives once in a
//! per-store arena shared across attributes.  Predicates are partitioned by
//! attribute, and within one attribute by evaluation class (hashed equality
//! classes, ordered numeric bound maps over monotone `f64` sort keys, an
//! existence class, and an exact residual class) — see
//! [`store`](crate::store) for the partition layout.
//!
//! # Matching: the counting algorithm
//!
//! Matching a [`Notification`] walks its attributes once, collects the
//! satisfied predicates per attribute from the partitions above, and
//! increments a per-filter hit counter over the predicates' posting lists.
//! A filter matches exactly when its counter reaches its constraint count
//! (conjunctive semantics); filters without constraints match always.  Cost
//! is proportional to the satisfied predicates and their postings — not to
//! the number of stored filters.
//!
//! Counters live in an external [`MatchScratch`] (caller-provided via the
//! `*_with` methods, or a thread-local fallback), so the index is
//! `Send + Sync` and any number of threads can match against a shared
//! `&FilterIndex` concurrently.  [`FilterIndex::match_batch`] additionally
//! matches whole queues of notifications with per-predicate lane masks,
//! walking every posting list once per 64-notification chunk; see
//! [`ShardedFilterIndex`](crate::ShardedFilterIndex) for the multi-shard
//! variant.
//!
//! # Covering queries
//!
//! The covering/merging optimizations of Fiege et al. §2.2 run the *same*
//! counting walk in the covering domain: for each attribute of a probe
//! filter, the attribute's deduplicated predicates whose partition ranges
//! overlap the probe are tested with [`Constraint::covers`] and the
//! covering predicates' postings are counted.  A stored filter covers the
//! probe exactly when its counter reaches its constraint count, so
//! [`FilterIndex::covering_keys`] and [`FilterIndex::covered_keys`] are
//! **exact** (identical to running [`Filter::covers`] against every stored
//! filter) while paying one constraint-level test per distinct predicate
//! *overlapping the probe's bounds*.  [`FilterIndex::same_attr_keys`]
//! completes the merge-partner search of `FilterSet::insert_merging`.

use std::hash::Hash;

use rebeca_filter::{Filter, Notification};

use crate::core::{default_workers, IndexCore};
use crate::scratch::{with_thread_scratch, MatchScratch};

/// An attribute-partitioned predicate index over content-based filters.
///
/// Filters are registered under an external key `K` (a routing-table entry
/// id, a destination, a subscription id …) and matched with the counting
/// algorithm; see the module source docs for the data-structure
/// and algorithm description.
///
/// All query results are deterministic: they depend only on the sequence of
/// insertions and removals, never on hash iteration order.  The index holds
/// no interior mutability — matching state lives in a [`MatchScratch`] —
/// so `&FilterIndex` is freely shareable across threads.
///
/// # Examples
///
/// ```
/// use rebeca_filter::{Constraint, Filter, Notification};
/// use rebeca_matcher::FilterIndex;
///
/// let mut index: FilterIndex<&str> = FilterIndex::new();
/// index.insert("cheap-parking", &Filter::new()
///     .with("service", Constraint::Eq("parking".into()))
///     .with("cost", Constraint::Lt(3.into())));
/// index.insert("all-parking", &Filter::new()
///     .with("service", Constraint::Eq("parking".into())));
///
/// let n = Notification::builder().attr("service", "parking").attr("cost", 5).build();
/// assert_eq!(index.matching_keys(&n), vec![&"all-parking"]);
/// ```
#[derive(Debug, Clone)]
pub struct FilterIndex<K> {
    core: IndexCore<K>,
}

impl<K> Default for FilterIndex<K> {
    fn default() -> Self {
        FilterIndex {
            core: IndexCore::with_shards(1),
        }
    }
}

impl<K: Eq + Hash + Clone> FilterIndex<K> {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed filters.
    pub fn len(&self) -> usize {
        self.core.len()
    }

    /// `true` when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.core.len() == 0
    }

    /// `true` when a filter is registered under `key`.
    pub fn contains_key(&self, key: &K) -> bool {
        self.core.contains_key(key)
    }

    /// Indexes `filter` under `key`, replacing any previous filter with the
    /// same key.
    pub fn insert(&mut self, key: K, filter: &Filter) {
        self.core.insert(key, filter);
    }

    /// Removes the filter registered under `key`; returns `true` when one
    /// was present.
    pub fn remove(&mut self, key: &K) -> bool {
        self.core.remove(key)
    }

    /// Removes every filter.
    pub fn clear(&mut self) {
        self.core.clear();
    }

    /// Keys of every filter matching the notification, via the counting
    /// algorithm: universal filters first (insertion-slot order), then each
    /// match in the deterministic order its counter completes.
    pub fn matching_keys(&self, notification: &Notification) -> Vec<&K> {
        with_thread_scratch(|s| self.core.matching_keys(notification, s))
    }

    /// [`FilterIndex::matching_keys`] with a caller-provided scratchpad
    /// (one per worker thread for parallel matching).
    pub fn matching_keys_with(
        &self,
        notification: &Notification,
        scratch: &mut MatchScratch,
    ) -> Vec<&K> {
        self.core.matching_keys(notification, scratch)
    }

    /// Visits the key of every matching filter without building a vector
    /// (the allocation-free variant of [`FilterIndex::matching_keys`], in
    /// the same order).
    pub fn for_each_match<'a>(&'a self, notification: &Notification, mut visit: impl FnMut(&'a K)) {
        with_thread_scratch(|s| self.core.for_each_match(notification, s, &mut visit))
    }

    /// [`FilterIndex::for_each_match`] with a caller-provided scratchpad.
    pub fn for_each_match_with<'a>(
        &'a self,
        notification: &Notification,
        scratch: &mut MatchScratch,
        mut visit: impl FnMut(&'a K),
    ) {
        self.core.for_each_match(notification, scratch, &mut visit)
    }

    /// `true` when at least one indexed filter matches the notification.
    pub fn any_match(&self, notification: &Notification) -> bool {
        with_thread_scratch(|s| self.core.any_match(notification, s))
    }

    /// Keys of **exactly** the stored filters that cover `filter` (in the
    /// sense of [`rebeca_filter::Filter::covers`]), sorted by insertion
    /// slot.
    ///
    /// Runs the counting algorithm in the covering domain: for every
    /// attribute of `filter`, the deduplicated predicates overlapping the
    /// probe's partition ranges are tested with
    /// [`rebeca_filter::Constraint::covers`] — not once per filter — and
    /// the covering predicates' postings are counted.
    pub fn covering_keys(&self, filter: &Filter) -> Vec<&K> {
        with_thread_scratch(|s| self.core.covering_keys(filter, s))
    }

    /// `true` when at least one stored filter covers `filter` — the
    /// early-exiting variant of [`FilterIndex::covering_keys`].
    pub fn covers_any(&self, filter: &Filter) -> bool {
        with_thread_scratch(|s| self.core.covers_any(filter, s))
    }

    /// Keys of **exactly** the stored filters that `filter` covers, sorted
    /// by insertion slot.  Same counting walk as
    /// [`FilterIndex::covering_keys`], with the covering test reversed.
    pub fn covered_keys(&self, filter: &Filter) -> Vec<&K> {
        self.core.covered_keys(filter)
    }

    /// Keys of the stored filters constraining **exactly** the same
    /// attribute set as `filter` (used to find perfect-merge partners that
    /// neither cover nor are covered), sorted by insertion slot.
    pub fn same_attr_keys(&self, filter: &Filter) -> Vec<&K> {
        with_thread_scratch(|s| self.core.same_attr_keys(filter, s))
    }

    /// Matches a queue of notifications at once, returning each
    /// notification's matching keys in insertion-slot order.
    ///
    /// Batches are processed in 64-notification lane chunks with
    /// per-predicate bitmasks, so every posting list is walked once per
    /// chunk instead of once per notification; chunks fan out across
    /// `std::thread::scope` workers (one [`MatchScratch`] per worker) when
    /// the machine has more than one core.
    pub fn match_batch<N>(&self, notifications: &[N]) -> Vec<Vec<&K>>
    where
        N: std::borrow::Borrow<Notification> + Sync,
        K: Sync,
    {
        self.core.match_batch(notifications, default_workers())
    }

    /// [`FilterIndex::match_batch`] with an explicit worker-thread count
    /// (`0` or `1` forces the sequential path).
    pub fn match_batch_with_workers<N>(&self, notifications: &[N], workers: usize) -> Vec<Vec<&K>>
    where
        N: std::borrow::Borrow<Notification> + Sync,
        K: Sync,
    {
        self.core.match_batch(notifications, workers)
    }

    /// Number of distinct predicates currently stored (after deduplication);
    /// exposed for diagnostics and benchmarks.
    pub fn predicate_count(&self) -> usize {
        self.core.predicate_count()
    }

    /// Number of distinct interned constraints (shared across attributes);
    /// exposed for diagnostics and benchmarks.
    pub fn interned_constraint_count(&self) -> usize {
        self.core.interned_constraint_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebeca_filter::Constraint;

    fn parking(max: i64) -> Filter {
        Filter::new()
            .with("service", Constraint::Eq("parking".into()))
            .with("cost", Constraint::Lt(max.into()))
    }

    fn vacancy(cost: i64) -> Notification {
        Notification::builder()
            .attr("service", "parking")
            .attr("cost", cost)
            .build()
    }

    #[test]
    fn counting_match_requires_every_constraint() {
        let mut idx: FilterIndex<u32> = FilterIndex::new();
        idx.insert(1, &parking(3));
        idx.insert(2, &parking(10));
        assert_eq!(idx.matching_keys(&vacancy(2)), vec![&1, &2]);
        assert_eq!(idx.matching_keys(&vacancy(5)), vec![&2]);
        assert!(idx.matching_keys(&vacancy(20)).is_empty());
        let missing_attr = Notification::builder().attr("cost", 1).build();
        assert!(idx.matching_keys(&missing_attr).is_empty());
    }

    #[test]
    fn universal_filters_always_match() {
        let mut idx: FilterIndex<u32> = FilterIndex::new();
        idx.insert(7, &Filter::universal());
        assert_eq!(idx.matching_keys(&Notification::new()), vec![&7]);
        assert!(idx.any_match(&vacancy(1)));
    }

    #[test]
    fn insert_is_upsert_and_remove_unindexes() {
        let mut idx: FilterIndex<&str> = FilterIndex::new();
        idx.insert("a", &parking(3));
        idx.insert("a", &parking(10));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.matching_keys(&vacancy(5)), vec![&"a"]);
        assert!(idx.remove(&"a"));
        assert!(!idx.remove(&"a"));
        assert!(idx.is_empty());
        assert_eq!(idx.predicate_count(), 0);
        assert_eq!(idx.interned_constraint_count(), 0);
        assert!(idx.matching_keys(&vacancy(1)).is_empty());
    }

    #[test]
    fn predicates_are_deduplicated_across_filters() {
        let mut idx: FilterIndex<u32> = FilterIndex::new();
        for i in 0..10 {
            idx.insert(i, &parking(3));
        }
        // Two distinct predicates (service eq, cost lt) shared by 10 filters.
        assert_eq!(idx.predicate_count(), 2);
        assert_eq!(idx.matching_keys(&vacancy(1)).len(), 10);
    }

    #[test]
    fn constraints_are_interned_across_attributes() {
        let mut idx: FilterIndex<u32> = FilterIndex::new();
        // The same constraint on two different attributes is two predicates
        // but one interned constraint.
        idx.insert(
            1,
            &Filter::new()
                .with("a", Constraint::Eq(1.into()))
                .with("b", Constraint::Eq(1.into())),
        );
        assert_eq!(idx.predicate_count(), 2);
        assert_eq!(idx.interned_constraint_count(), 1);
        idx.remove(&1);
        assert_eq!(idx.interned_constraint_count(), 0);
    }

    #[test]
    fn numeric_partitions_cover_all_comparison_kinds() {
        let mut idx: FilterIndex<&str> = FilterIndex::new();
        idx.insert("lt", &Filter::new().with("x", Constraint::Lt(5.into())));
        idx.insert("le", &Filter::new().with("x", Constraint::Le(5.into())));
        idx.insert("gt", &Filter::new().with("x", Constraint::Gt(5.into())));
        idx.insert("ge", &Filter::new().with("x", Constraint::Ge(5.into())));
        idx.insert(
            "bw",
            &Filter::new().with("x", Constraint::Between(2.into(), 8.into())),
        );
        let at = |v: i64| Notification::builder().attr("x", v).build();
        let names = |v: i64| {
            let mut ks: Vec<&str> = idx.matching_keys(&at(v)).into_iter().copied().collect();
            ks.sort_unstable();
            ks
        };
        assert_eq!(names(4), vec!["bw", "le", "lt"]);
        assert_eq!(names(5), vec!["bw", "ge", "le"]);
        assert_eq!(names(6), vec!["bw", "ge", "gt"]);
        assert_eq!(names(9), vec!["ge", "gt"]);
        assert_eq!(names(1), vec!["le", "lt"]);
    }

    #[test]
    fn int_float_equality_collapses_like_value_eq() {
        let mut idx: FilterIndex<&str> = FilterIndex::new();
        idx.insert("eq3", &Filter::new().with("x", Constraint::Eq(3.into())));
        let float3 = Notification::builder().attr("x", 3.0).build();
        assert_eq!(idx.matching_keys(&float3), vec![&"eq3"]);
    }

    #[test]
    fn covering_queries_are_exact() {
        let mut idx: FilterIndex<u32> = FilterIndex::new();
        idx.insert(1, &Filter::new().with("service", Constraint::Exists));
        idx.insert(2, &parking(3));
        idx.insert(3, &Filter::new().with("other", Constraint::Exists));
        idx.insert(4, &Filter::universal());

        // Covers of parking(1): the service-Exists filter, the wider parking
        // filter, and the universal filter (sorted by insertion slot).
        assert_eq!(idx.covering_keys(&parking(1)), vec![&1, &2, &4]);
        assert!(idx.covers_any(&parking(1)));

        // parking(1) covers nothing stored (parking(3) is wider).
        assert!(idx.covered_keys(&parking(1)).is_empty());
        // parking(10) covers parking(3).
        assert_eq!(idx.covered_keys(&parking(10)), vec![&2]);

        // The universal probe covers everything.
        assert_eq!(idx.covered_keys(&Filter::universal()).len(), 4);

        // A probe with an unknown attribute can cover nothing.
        let probe = Filter::new().with("nope", Constraint::Exists);
        assert!(idx.covered_keys(&probe).is_empty());

        // Same-attribute-set partners of a parking probe.
        assert_eq!(idx.same_attr_keys(&parking(99)), vec![&2]);
        assert_eq!(idx.same_attr_keys(&Filter::universal()), vec![&4]);
    }

    #[test]
    fn residual_predicates_stay_exact() {
        let mut idx: FilterIndex<&str> = FilterIndex::new();
        idx.insert(
            "pre",
            &Filter::new().with("s", Constraint::Prefix("Re".into())),
        );
        idx.insert("ne", &Filter::new().with("s", Constraint::Ne("x".into())));
        idx.insert(
            "strlt",
            &Filter::new().with("s", Constraint::Lt("m".into())),
        );
        let n = |s: &str| Notification::builder().attr("s", s).build();
        let names = |s: &str| {
            let mut ks: Vec<&str> = idx.matching_keys(&n(s)).into_iter().copied().collect();
            ks.sort_unstable();
            ks
        };
        // "Rebeca" < "m" lexicographically, so the string range matches too.
        assert_eq!(names("Rebeca"), vec!["ne", "pre", "strlt"]);
        assert_eq!(names("abc"), vec!["ne", "strlt"]);
        assert_eq!(names("x"), vec![] as Vec<&str>);
    }

    #[test]
    fn empty_in_sets_match_nothing_but_take_part_in_covering() {
        let mut idx: FilterIndex<&str> = FilterIndex::new();
        let empty = Filter::new().with("x", Constraint::In(Default::default()));
        idx.insert("empty", &empty);
        assert!(idx
            .matching_keys(&Notification::builder().attr("x", 1).build())
            .is_empty());
        // Any `In` probe covers the empty set; the empty set covers only
        // itself.
        let wide = Filter::new().with("x", Constraint::any_of([1, 2]));
        assert_eq!(idx.covered_keys(&wide), vec![&"empty"]);
        assert_eq!(idx.covering_keys(&empty), vec![&"empty"]);
        assert!(idx.covering_keys(&wide).is_empty());

        // The reverse direction: stored `In` and numeric `Between` filters
        // cover an empty-`In` probe vacuously (`Constraint::covers`'s
        // `all()` over no members), so the covering walk must surface them.
        idx.insert("in", &wide);
        idx.insert(
            "bw",
            &Filter::new().with("x", Constraint::Between(1.into(), 5.into())),
        );
        idx.insert("lt", &Filter::new().with("x", Constraint::Lt(9.into())));
        let mut covering: Vec<&str> = idx.covering_keys(&empty).into_iter().copied().collect();
        covering.sort_unstable();
        assert_eq!(covering, vec!["bw", "empty", "in"]);
        assert!(idx.covers_any(&empty));
    }

    #[test]
    fn match_batch_agrees_with_single_matching() {
        let mut idx: FilterIndex<u32> = FilterIndex::new();
        for i in 0..100 {
            idx.insert(i, &parking((i % 10) as i64));
        }
        idx.insert(100, &Filter::universal());
        let batch: Vec<Notification> = (0..150).map(|i| vacancy(i % 12)).collect();
        let got = idx.match_batch(&batch);
        assert_eq!(got.len(), batch.len());
        for (n, keys) in batch.iter().zip(&got) {
            let mut expected: Vec<u32> = idx.matching_keys(n).into_iter().copied().collect();
            expected.sort_unstable();
            let found: Vec<u32> = keys.iter().map(|k| **k).collect();
            assert_eq!(found, expected, "batch disagrees on {n}");
        }
    }

    #[test]
    fn for_each_match_visits_the_matching_keys() {
        let mut idx: FilterIndex<u32> = FilterIndex::new();
        idx.insert(1, &parking(3));
        idx.insert(2, &parking(10));
        let mut seen = Vec::new();
        idx.for_each_match(&vacancy(2), |k| seen.push(*k));
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2]);
    }
}
