//! The Rebeca broker network substrate for the mobility reproduction.
//!
//! This crate implements the *unchanged* content-based publish/subscribe
//! middleware of Section 2 of
//! *"Supporting Mobility in Content-Based Publish/Subscribe Middleware"*
//! (Fiege et al., Middleware 2003), i.e. everything that exists before the
//! mobility extension:
//!
//! * [`ClientId`] / [`SubscriptionId`] — client and subscription identities;
//! * [`Message`] — the message vocabulary of the system, including the
//!   mobility control messages that `rebeca-core` adds on top (kept in one
//!   enum because the paper requires all relocation traffic to travel over
//!   the ordinary pub/sub links);
//! * [`BrokerCore`] — the static broker state machine: routing and
//!   advertisement tables, local clients, publication routing and
//!   sequence-annotated delivery;
//! * [`SequenceRegistry`] / [`DeliveryBuffer`] — per-`(client, filter)`
//!   sequence numbering and the buffer type behind the virtual counterparts
//!   of roaming clients;
//! * [`ConsumerLog`] — the client-side delivery log with built-in checks of
//!   the paper's quality-of-service requirements (completeness, no
//!   duplicates, sender-FIFO order).
//!
//! The mobility-aware broker that extends [`BrokerCore`] with the relocation
//! protocol (Section 4) and location-dependent subscriptions (Section 5)
//! lives in the `rebeca-core` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod broker;
mod client;
mod ids;
mod message;
mod seqnum;

pub use broker::{BrokerCore, BrokerRole, ClientRecord, Outgoing, TraceSpanDraft};
pub use client::{ConsumerLog, DeliveryViolation};
pub use ids::{ClientId, ParseClientIdError, SubscriptionId};
pub use message::{Delivery, Envelope, Message};
pub use rebeca_obs::TraceContext;
pub use seqnum::{DeliveryBuffer, SequenceRegistry};
