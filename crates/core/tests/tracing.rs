//! End-to-end acceptance tests for the distributed-tracing layer: a
//! sampled publication crossing several brokers — including one that was
//! parked during a mid-run relocation and merged out of the holding
//! buffer — reassembles into a single causal tree, and the whole span
//! stream is byte-stable across identical simulator runs.

use std::collections::BTreeSet;

use rebeca_broker::ClientId;
use rebeca_core::{BrokerConfig, ClientAction, LogicalMobilityMode, MobilitySystem, SystemBuilder};
use rebeca_filter::{Constraint, Filter, Notification};
use rebeca_location::MovementGraph;
use rebeca_obs::{render_trace_tree, trace_ids, SpanRecord};
use rebeca_routing::RoutingStrategyKind;
use rebeca_sim::{DelayModel, SimDuration, SimTime, Topology};

fn parking_filter() -> Filter {
    Filter::new().with("service", Constraint::Eq("parking".into()))
}

fn vacancy(i: i64) -> Notification {
    Notification::builder()
        .attr("service", "parking")
        .attr("spot", i)
        .build()
}

/// The Figure 5 walk-through with tracing on: producer at B8 (index 7),
/// consumer subscribed at B6 (index 5) moving to B1 (index 0) mid-stream.
fn traced_figure5(publications: u64) -> (MobilitySystem, ClientId, ClientId) {
    let topo = Topology::figure5();
    let mut sys = SystemBuilder::new(&topo)
        .config(
            BrokerConfig::default()
                .with_strategy(RoutingStrategyKind::Covering)
                .with_movement_graph(MovementGraph::paper_example())
                .with_relocation_timeout(SimDuration::from_secs(30)),
        )
        .link_delay(DelayModel::constant_millis(5))
        .seed(7)
        .trace_sample(1.0)
        .build()
        .unwrap();
    sys.metrics_mut().set_span_capacity(100_000);

    let consumer = ClientId::new(1);
    let producer = ClientId::new(2);
    let old_broker = sys.broker_node(5).unwrap();
    let new_broker = sys.broker_node(0).unwrap();

    sys.add_client(
        consumer,
        LogicalMobilityMode::LocationDependent,
        &[5, 0],
        vec![
            (
                SimTime::from_millis(1),
                ClientAction::Attach { broker: old_broker },
            ),
            (
                SimTime::from_millis(2),
                ClientAction::Subscribe(parking_filter()),
            ),
            (
                SimTime::from_millis(500),
                ClientAction::MoveTo { broker: new_broker },
            ),
        ],
    )
    .unwrap();

    let mut producer_script = vec![
        (
            SimTime::from_millis(1),
            ClientAction::Attach {
                broker: sys.broker_node(7).unwrap(),
            },
        ),
        (
            SimTime::from_millis(2),
            ClientAction::Advertise(parking_filter()),
        ),
    ];
    for i in 0..publications {
        producer_script.push((
            SimTime::from_millis(50 + i * 25),
            ClientAction::Publish(vacancy(i as i64)),
        ));
    }
    sys.add_client(
        producer,
        LogicalMobilityMode::LocationDependent,
        &[7],
        producer_script,
    )
    .unwrap();

    (sys, consumer, producer)
}

fn run_traced(publications: u64) -> (Vec<SpanRecord>, ClientId, ClientId) {
    let (mut sys, consumer, producer) = traced_figure5(publications);
    sys.run_until(SimTime::from_secs(10));
    let log = sys.client_log(consumer).unwrap();
    assert!(log.is_clean(), "violations: {:?}", log.violations());
    let spans: Vec<SpanRecord> = sys.metrics().spans().spans().cloned().collect();
    (spans, consumer, producer)
}

/// Every trace of the run renders as exactly one causal tree: a single
/// root (the publish or resubscribe span) and no orphaned or unrooted
/// spans — including the publication that sat in the old broker's
/// counterpart during the relocation and reached the consumer through
/// the holding-buffer merge.
#[test]
fn sampled_publication_across_brokers_reassembles_one_causal_tree() {
    let (spans, ..) = run_traced(40);
    assert!(!spans.is_empty(), "tracing at rate 1.0 must record spans");

    let ids = trace_ids(&spans);
    assert!(
        ids.len() >= 40,
        "every publication plus the relocation is traced"
    );
    for trace_id in &ids {
        let in_trace: Vec<&SpanRecord> = spans.iter().filter(|s| s.trace_id == *trace_id).collect();
        let present: BTreeSet<u64> = in_trace.iter().map(|s| s.span_id).collect();
        let roots = in_trace
            .iter()
            .filter(|s| s.parent_span == 0 || !present.contains(&s.parent_span))
            .count();
        assert_eq!(
            roots,
            1,
            "trace {trace_id:016x} must form one tree, got {roots} roots:\n{}",
            render_trace_tree(*trace_id, &spans)
        );
        let tree = render_trace_tree(*trace_id, &spans);
        assert!(
            !tree.contains("(unrooted)"),
            "trace {trace_id:016x} has unreachable spans:\n{tree}"
        );
    }
}

/// The publication that was parked during the relocation carries its
/// trace through the replay: its tree spans the publisher's broker, at
/// least one transit broker and the new border broker, and contains the
/// stitched `replay` → `deliver` tail.
#[test]
fn replayed_publication_spans_at_least_three_brokers_with_replay_tail() {
    let (spans, ..) = run_traced(40);

    // Find a trace with a `replay` span (stitched at the new border
    // broker out of the holding merge).
    let replayed: Vec<u64> = spans
        .iter()
        .filter(|s| s.kind == "replay")
        .map(|s| s.trace_id)
        .collect();
    assert!(
        !replayed.is_empty(),
        "a 500 ms move inside a 1 s publication stream must park at least one publication"
    );
    let trace_id = replayed[0];
    let in_trace: Vec<&SpanRecord> = spans.iter().filter(|s| s.trace_id == trace_id).collect();

    let brokers: BTreeSet<u64> = in_trace.iter().map(|s| s.broker).collect();
    assert!(
        brokers.len() >= 3,
        "the traced publication must cross at least three brokers, saw {brokers:?}:\n{}",
        render_trace_tree(trace_id, &spans)
    );
    let kinds: BTreeSet<&str> = in_trace.iter().map(|s| s.kind.as_str()).collect();
    for kind in ["publish", "match", "route", "replay", "deliver"] {
        assert!(
            kinds.contains(kind),
            "trace must contain a {kind:?} span:\n{}",
            render_trace_tree(trace_id, &spans)
        );
    }
    // The deliver span of the replayed copy hangs under the replay span.
    let replay_span = in_trace.iter().find(|s| s.kind == "replay").unwrap();
    assert!(
        in_trace
            .iter()
            .any(|s| s.kind == "deliver" && s.parent_span == replay_span.span_id),
        "the stitched deliver must be a child of the replay span"
    );
}

/// The relocation itself is traced: resubscribe roots the tree, the
/// relocate/fetch flood and the replay hang off it hop by hop, and the
/// hold span (nested under the resubscribe at the new border broker)
/// covers the buffering window.
#[test]
fn relocation_trace_mirrors_the_section4_protocol() {
    let (spans, ..) = run_traced(40);

    let resub = spans
        .iter()
        .find(|s| s.kind == "relocation.resubscribe")
        .expect("the move is sampled at rate 1.0");
    let trace_id = resub.trace_id;
    let in_trace: Vec<&SpanRecord> = spans.iter().filter(|s| s.trace_id == trace_id).collect();

    let kinds: BTreeSet<&str> = in_trace.iter().map(|s| s.kind.as_str()).collect();
    for kind in [
        "relocation.resubscribe",
        "relocation.relocate",
        "relocation.fetch",
        "relocation.replay",
        "relocation.settled",
        "hold",
    ] {
        assert!(
            kinds.contains(kind),
            "relocation trace must contain {kind:?}, got {kinds:?}:\n{}",
            render_trace_tree(trace_id, &spans)
        );
    }
    assert_eq!(resub.parent_span, 0, "the resubscribe roots the trace");
    let hold = in_trace.iter().find(|s| s.kind == "hold").unwrap();
    assert_eq!(
        hold.parent_span, resub.span_id,
        "the hold span nests under the resubscribe at the new border broker"
    );
    assert!(
        hold.end_micros > hold.start_micros,
        "the hold span covers the buffering window"
    );
    let tree = render_trace_tree(trace_id, &spans);
    assert!(!tree.contains("(unrooted)"), "single tree:\n{tree}");
}

/// Two identical SimDriver runs produce byte-identical span streams —
/// sampling, span ids and timestamps are all deterministic.
#[test]
fn span_stream_is_byte_stable_across_identical_runs() {
    let (a, ..) = run_traced(20);
    let (b, ..) = run_traced(20);
    assert_eq!(a, b, "identical runs must record identical spans");

    let ids = trace_ids(&a);
    for trace_id in ids {
        assert_eq!(
            render_trace_tree(trace_id, &a),
            render_trace_tree(trace_id, &b)
        );
    }
}

/// With sampling off (the default), a full run records no spans at all.
#[test]
fn tracing_is_off_by_default() {
    let topo = Topology::figure5();
    let mut sys = SystemBuilder::new(&topo)
        .config(BrokerConfig::default())
        .link_delay(DelayModel::constant_millis(5))
        .seed(7)
        .build()
        .unwrap();
    let producer = ClientId::new(2);
    sys.add_client(
        producer,
        LogicalMobilityMode::LocationDependent,
        &[7],
        vec![
            (
                SimTime::from_millis(1),
                ClientAction::Attach {
                    broker: sys.broker_node(7).unwrap(),
                },
            ),
            (
                SimTime::from_millis(2),
                ClientAction::Advertise(parking_filter()),
            ),
            (SimTime::from_millis(50), ClientAction::Publish(vacancy(1))),
        ],
    )
    .unwrap();
    sys.run_until(SimTime::from_secs(1));
    assert!(sys.metrics().spans().is_empty());
}
