//! Benchmarks for the attribute-partitioned predicate index
//! (`rebeca-matcher`) against the linear scan it replaced.
//!
//! The workload models the paper's parking-guidance scenario at city scale:
//! `n` stored subscriptions over a handful of services, price bounds and
//! location sets, matched against a stream of notifications.  The linear
//! baseline evaluates `Filter::matches` over every stored filter — exactly
//! what `RoutingTable::matching_destinations` did before the index.
//!
//! `BENCH_matcher.json` at the repository root is generated from this bench
//! (see the file header there for the command).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rebeca_bench::workload::{
    group_filter, group_notification, zipf_group_filters, zipf_group_notifications,
};
use rebeca_filter::{Constraint, Filter, Notification, Value};
use rebeca_matcher::FilterIndex;

/// Deterministic subscription mix: equality on service, numeric price
/// bounds, location sets — the constraint kinds brokers actually store.
fn subscription(i: u32) -> Filter {
    let service = ["parking", "weather", "traffic", "stock"][(i % 4) as usize];
    let mut f = Filter::new().with("service", Constraint::Eq(service.into()));
    match i % 3 {
        0 => {
            f = f.with("cost", Constraint::Lt(Value::Int((i % 40) as i64)));
        }
        1 => {
            f = f.with(
                "cost",
                Constraint::Between(
                    Value::Int((i % 20) as i64),
                    Value::Int((i % 20 + 10) as i64),
                ),
            );
        }
        _ => {}
    }
    if i.is_multiple_of(2) {
        f = f.with(
            "location",
            Constraint::any_location_of([i % 100, (i + 7) % 100]),
        );
    }
    f
}

fn notification(i: u32) -> Notification {
    let service = ["parking", "weather", "traffic", "stock"][(i % 4) as usize];
    Notification::builder()
        .attr("service", service)
        .attr("cost", (i % 45) as i64)
        .attr("location", Value::Location(i % 100))
        .attr("spot", i as i64)
        .build()
}

fn build_filters(n: u32) -> Vec<Filter> {
    (0..n).map(subscription).collect()
}

fn build_index(filters: &[Filter]) -> FilterIndex<u32> {
    let mut index = FilterIndex::new();
    for (i, f) in filters.iter().enumerate() {
        index.insert(i as u32, f);
    }
    index
}

/// Matching throughput: indexed counting algorithm vs. linear scan, at
/// routing-table sizes from 1k to 100k subscriptions.
fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matcher/match");
    for &n in &[1_000u32, 10_000, 100_000] {
        let filters = build_filters(n);
        let index = build_index(&filters);
        let notifications: Vec<Notification> = (0..64).map(notification).collect();

        group.bench_with_input(BenchmarkId::new("linear", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let n = &notifications[i % notifications.len()];
                i += 1;
                black_box(
                    filters
                        .iter()
                        .enumerate()
                        .filter(|(_, f)| f.matches(n))
                        .count(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let n = &notifications[i % notifications.len()];
                i += 1;
                black_box(index.matching_keys(n).len())
            })
        });
    }
    group.finish();
}

/// Matching under realistic popularity skew: a zipf-skewed subscription
/// population (hot telemetry groups hold most subscribers) probed with a
/// zipf-skewed notification stream whose publication popularity follows
/// subscription popularity (`hit` — hot notifications match large posting
/// lists), and with notifications from groups nobody subscribes to
/// (`miss` — the matcher must prove the absence).  The linear scan pays
/// the full population either way; the index pays one posting-list union
/// on hits and an early empty intersection on misses.
fn bench_matching_zipf(c: &mut Criterion) {
    let mut group = c.benchmark_group("matcher/match_zipf");
    for &n in &[1_000u32, 10_000, 100_000] {
        let filters = zipf_group_filters(200, n as usize, 1.0, 97);
        let index = build_index(&filters);
        let hits = zipf_group_notifications(200, 64, 1.0, 131);
        // Groups 200.. are outside the subscribed domain: zero matches.
        let misses: Vec<Notification> = (0..64)
            .map(|i| group_notification(200 + i, i as i64))
            .collect();

        for (kind, stream) in [("hit", &hits), ("miss", &misses)] {
            group.bench_with_input(BenchmarkId::new(format!("linear_{kind}"), n), &n, |b, _| {
                let mut i = 0usize;
                b.iter(|| {
                    let n = &stream[i % stream.len()];
                    i += 1;
                    black_box(filters.iter().filter(|f| f.matches(n)).count())
                })
            });
            group.bench_with_input(
                BenchmarkId::new(format!("indexed_{kind}"), n),
                &n,
                |b, _| {
                    let mut i = 0usize;
                    b.iter(|| {
                        let n = &stream[i % stream.len()];
                        i += 1;
                        black_box(index.matching_keys(n).len())
                    })
                },
            );
        }
    }
    group.finish();
}

/// Covering queries: "is this new subscription already covered?" — the
/// decision `FilterSet::insert_covering` and `RoutingTable::is_covered`
/// make on every subscription.  Measured for probes that are covered (the
/// linear scan usually early-exits) and for probes that are not (the linear
/// scan must visit every filter; the index walk visits one constraint-level
/// test per *distinct* predicate).
fn bench_covering(c: &mut Criterion) {
    let mut group = c.benchmark_group("matcher/covering");
    for &n in &[1_000u32, 10_000] {
        let filters = build_filters(n);
        let index = build_index(&filters);
        let covered: Vec<Filter> = (0..64).map(|i| subscription(i * 31 + 5)).collect();
        // Not covered: a service value no stored filter accepts, so the
        // linear scan cannot early-exit.
        let uncovered: Vec<Filter> = (0..64)
            .map(|i| {
                subscription(i * 31 + 5).with("service", Constraint::Eq(format!("tele-{i}").into()))
            })
            .collect();

        for (kind, probes) in [("hit", &covered), ("miss", &uncovered)] {
            group.bench_with_input(BenchmarkId::new(format!("linear_{kind}"), n), &n, |b, _| {
                let mut i = 0usize;
                b.iter(|| {
                    let probe = &probes[i % probes.len()];
                    i += 1;
                    black_box(filters.iter().any(|f| f.covers(probe)))
                })
            });
            group.bench_with_input(
                BenchmarkId::new(format!("indexed_{kind}"), n),
                &n,
                |b, _| {
                    let mut i = 0usize;
                    b.iter(|| {
                        let probe = &probes[i % probes.len()];
                        i += 1;
                        black_box(index.covers_any(probe))
                    })
                },
            );
        }
    }
    group.finish();
}

/// Covering hits under realistic popularity skew: a zipf-distributed
/// telemetry-group population (hot groups repeat heavily) probed with
/// strictly-narrower variants of stored filters, so every probe is covered
/// by a non-identical stored filter and the index must walk its covering
/// path, not the identity fast path.  The linear side scans the full
/// per-subscription population (what `RoutingTable::is_covered` cost
/// before subgrouping); the indexed side holds one key per *distinct*
/// filter, exactly the compaction `RoutingTable` subgrouping gives the
/// predicate index.  This is the group `scripts/bench_gate.py` holds to a
/// hard `>= 1.0x` floor: the subgrouped covering-hit walk may never again
/// lose to the linear scan (the pre-summary index did at 10k).
fn bench_covering_hit_zipf(c: &mut Criterion) {
    let mut group = c.benchmark_group("matcher/covering_hit");
    for &n in &[1_000u32, 10_000] {
        let filters = zipf_group_filters(200, n as usize, 1.0, 97);
        // One index key per distinct filter — the subgrouped table.
        let mut index = FilterIndex::new();
        let mut seen = std::collections::BTreeSet::new();
        for (i, f) in filters.iter().enumerate() {
            if seen.insert(f.clone()) {
                index.insert(i as u32, f);
            }
        }
        // Narrower than the stored group filter by one extra constraint:
        // covered, but never byte-identical to a stored filter.
        let probes: Vec<Filter> = (0..64)
            .map(|i| {
                group_filter(i % 25).with("reading", Constraint::Lt(Value::Int(i as i64 % 50)))
            })
            .collect();
        for probe in &probes {
            assert!(
                filters.iter().any(|f| f.covers(probe)),
                "probe must be a covering hit"
            );
        }

        group.bench_with_input(BenchmarkId::new("linear", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let probe = &probes[i % probes.len()];
                i += 1;
                black_box(filters.iter().any(|f| f.covers(probe)))
            })
        });
        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let probe = &probes[i % probes.len()];
                i += 1;
                black_box(index.covers_any(probe))
            })
        });
    }
    group.finish();
}

/// Index maintenance: build cost and single insert/remove churn at 10k.
fn bench_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("matcher/maintenance");
    let filters = build_filters(10_000);
    group.sample_size(10);
    group.bench_function("build/10000", |b| {
        b.iter(|| black_box(build_index(&filters)).len())
    });
    let mut index = build_index(&filters);
    let churn = subscription(123_457);
    group.bench_function("churn/10000", |b| {
        b.iter(|| {
            index.insert(u32::MAX, &churn);
            index.remove(&u32::MAX)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matching,
    bench_matching_zipf,
    bench_covering,
    bench_covering_hit_zipf,
    bench_maintenance
);
criterion_main!(benches);
