//! Reference-counted interning arena for [`Constraint`]s.
//!
//! Routing tables hold the same handful of constraints thousands of times
//! (every subscriber to "parking" stores `service = parking`).  The arena
//! stores each distinct constraint **once per store**, shared across all
//! attributes, and predicates refer to it by a dense `u32` id — so predicate
//! deduplication hashes a full `Constraint` only once per distinct
//! constraint, predicate records stay small, and evaluation reads one shared
//! copy instead of per-predicate clones.

use std::collections::HashMap;

use rebeca_filter::Constraint;

/// A reference-counted constraint interner.
#[derive(Debug, Clone, Default)]
pub(crate) struct ConstraintArena {
    ids: HashMap<Constraint, u32>,
    items: Vec<Option<Constraint>>,
    refs: Vec<u32>,
    free: Vec<u32>,
}

impl ConstraintArena {
    /// Interns `constraint`, returning its id and incrementing its reference
    /// count.  Clones the constraint only on first intern.
    pub(crate) fn intern(&mut self, constraint: &Constraint) -> u32 {
        if let Some(&cid) = self.ids.get(constraint) {
            self.refs[cid as usize] += 1;
            return cid;
        }
        let cid = match self.free.pop() {
            Some(cid) => {
                self.items[cid as usize] = Some(constraint.clone());
                self.refs[cid as usize] = 1;
                cid
            }
            None => {
                self.items.push(Some(constraint.clone()));
                self.refs.push(1);
                (self.items.len() - 1) as u32
            }
        };
        self.ids.insert(constraint.clone(), cid);
        cid
    }

    /// Drops one reference to `cid`, freeing the slot when the last user is
    /// gone.
    pub(crate) fn release(&mut self, cid: u32) {
        let c = cid as usize;
        debug_assert!(self.refs[c] > 0, "releasing a dead constraint");
        self.refs[c] -= 1;
        if self.refs[c] == 0 {
            let constraint = self.items[c].take().expect("live constraint");
            self.ids.remove(&constraint);
            self.free.push(cid);
        }
    }

    /// Id of `constraint` when it is already interned, without touching the
    /// reference counts (used by the identity fast path to resolve probe
    /// filters against the store).
    #[inline]
    pub(crate) fn lookup(&self, constraint: &Constraint) -> Option<u32> {
        self.ids.get(constraint).copied()
    }

    /// The interned constraint behind `cid`.
    #[inline]
    pub(crate) fn get(&self, cid: u32) -> &Constraint {
        self.items[cid as usize]
            .as_ref()
            .expect("live constraint id")
    }

    /// Number of live interned constraints (diagnostics).
    pub(crate) fn len(&self) -> usize {
        self.items.len() - self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups_and_refcounts() {
        let mut arena = ConstraintArena::default();
        let a = Constraint::Eq(3.into());
        let id1 = arena.intern(&a);
        let id2 = arena.intern(&a);
        assert_eq!(id1, id2);
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.get(id1), &a);
        arena.release(id1);
        assert_eq!(arena.len(), 1, "one reference still live");
        arena.release(id2);
        assert_eq!(arena.len(), 0);
        // Freed slots are reused.
        let b = Constraint::Exists;
        let id3 = arena.intern(&b);
        assert_eq!(id3, id1);
        assert_eq!(arena.get(id3), &b);
    }
}
