//! Criterion benchmarks for the end-to-end mobility protocols: a full
//! relocation (Figure 5 scenario) and a logical-mobility run, both scaled to
//! finish in milliseconds of wall-clock time per iteration.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rebeca_bench::scenarios::{
    run_logical, run_physical, HandoffKind, LogicalScenario, LogicalScheme, PhysicalScenario,
};
use rebeca_location::{AdaptivityPlan, MovementGraph};
use rebeca_sim::{SimDuration, SimTime};

fn bench_relocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("mobility/relocation");
    group.sample_size(20);
    let params = PhysicalScenario {
        publications: 20,
        ..PhysicalScenario::default()
    };
    group.bench_function("figure5_relocation", |b| {
        b.iter(|| black_box(run_physical(black_box(&params))))
    });
    let naive = PhysicalScenario {
        publications: 20,
        handoff: HandoffKind::NaiveWithSignOff,
        ..PhysicalScenario::default()
    };
    group.bench_function("figure5_naive_handoff", |b| {
        b.iter(|| black_box(run_physical(black_box(&naive))))
    });
    group.finish();
}

fn bench_logical(c: &mut Criterion) {
    let mut group = c.benchmark_group("mobility/logical");
    group.sample_size(10);
    let base = LogicalScenario {
        movement_graph: MovementGraph::grid(4, 4),
        brokers: 4,
        producers: 2,
        residence: SimDuration::from_secs(1),
        publish_interval: SimDuration::from_millis(200),
        horizon: SimTime::from_secs(5),
        ..LogicalScenario::default()
    };
    group.bench_function("location_dependent_5s", |b| {
        let params = LogicalScenario {
            scheme: LogicalScheme::LocationDependent(AdaptivityPlan::global_sub_unsub(4)),
            ..base.clone()
        };
        b.iter(|| black_box(run_logical(black_box(&params))))
    });
    group.bench_function("flooding_5s", |b| {
        let params = LogicalScenario {
            scheme: LogicalScheme::Flooding,
            ..base.clone()
        };
        b.iter(|| black_box(run_logical(black_box(&params))))
    });
    group.finish();
}

criterion_group!(benches, bench_relocation, bench_logical);
criterion_main!(benches);
