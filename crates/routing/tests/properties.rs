//! Property-based tests for the routing engine: every strategy delivers the
//! same notifications as simple routing (exactness), and the optimized
//! strategies never generate more administration traffic than simple routing.

use proptest::prelude::*;
use rebeca_filter::{Constraint, Filter, Notification, Value};
use rebeca_routing::{RoutingEngine, RoutingStrategyKind, RoutingTable};

/// A small universe of subscriptions over locations and prices so that
/// covering and merging actually trigger.
fn filter() -> impl Strategy<Value = Filter> {
    prop_oneof![
        // location subscriptions
        prop::collection::btree_set(0u32..6, 1..4)
            .prop_map(|locs| Filter::new().with("location", Constraint::any_location_of(locs))),
        // price subscriptions
        (1i64..10).prop_map(|p| Filter::new().with("cost", Constraint::Lt(Value::Int(p)))),
        // combined
        (1i64..10, 0u32..6).prop_map(|(p, l)| Filter::new()
            .with("cost", Constraint::Lt(Value::Int(p)))
            .with("location", Constraint::any_location_of([l]))),
    ]
}

fn notification() -> impl Strategy<Value = Notification> {
    (0i64..10, 0u32..6).prop_map(|(cost, loc)| {
        Notification::builder()
            .attr("cost", cost)
            .attr("location", Value::Location(loc))
            .build()
    })
}

/// A scripted sequence of subscribe events on links 0..3.
fn subscription_script() -> impl Strategy<Value = Vec<(Filter, u8)>> {
    prop::collection::vec((filter(), 0u8..4), 0..12)
}

const LINKS: [u8; 4] = [0, 1, 2, 3];

proptest! {
    /// Exactness: under every strategy the set of links a notification is
    /// routed to equals the set under simple routing (flooding excluded — it
    /// intentionally over-delivers).
    #[test]
    fn all_strategies_route_like_simple_routing(script in subscription_script(), n in notification()) {
        let mut reference: RoutingEngine<u8> = RoutingEngine::new(RoutingStrategyKind::Simple);
        for (f, l) in &script {
            reference.handle_subscribe(f.clone(), *l, &LINKS);
        }
        let expected = reference.route(&n, None, &LINKS);

        for kind in [
            RoutingStrategyKind::Identity,
            RoutingStrategyKind::Covering,
            RoutingStrategyKind::Merging,
        ] {
            let mut engine: RoutingEngine<u8> = RoutingEngine::new(kind);
            for (f, l) in &script {
                engine.handle_subscribe(f.clone(), *l, &LINKS);
            }
            prop_assert_eq!(engine.route(&n, None, &LINKS), expected.clone(), "strategy {:?}", kind);
        }
    }

    /// Flooding always delivers a superset of what any subscription-based
    /// strategy delivers.
    #[test]
    fn flooding_over_delivers(script in subscription_script(), n in notification()) {
        let mut simple: RoutingEngine<u8> = RoutingEngine::new(RoutingStrategyKind::Simple);
        let mut flooding: RoutingEngine<u8> = RoutingEngine::new(RoutingStrategyKind::Flooding);
        for (f, l) in &script {
            simple.handle_subscribe(f.clone(), *l, &LINKS);
            flooding.handle_subscribe(f.clone(), *l, &LINKS);
        }
        let s = simple.route(&n, None, &LINKS);
        let fl = flooding.route(&n, None, &LINKS);
        for link in s {
            prop_assert!(fl.contains(&link));
        }
    }

    /// Administration suppression: covering, merging and identity routing
    /// never forward more subscription messages than simple routing.
    #[test]
    fn optimized_strategies_forward_fewer_subscriptions(script in subscription_script()) {
        let mut forwarded = std::collections::BTreeMap::new();
        for kind in [
            RoutingStrategyKind::Simple,
            RoutingStrategyKind::Identity,
            RoutingStrategyKind::Covering,
            RoutingStrategyKind::Merging,
        ] {
            let mut engine: RoutingEngine<u8> = RoutingEngine::new(kind);
            let mut count = 0usize;
            for (f, l) in &script {
                count += engine.handle_subscribe(f.clone(), *l, &LINKS).len();
            }
            forwarded.insert(format!("{kind:?}"), count);
        }
        let simple = forwarded["Simple"];
        prop_assert!(forwarded["Identity"] <= simple);
        prop_assert!(forwarded["Covering"] <= simple);
        prop_assert!(forwarded["Merging"] <= simple);
    }

    /// Per-target completeness of the propagation decision: for every
    /// neighbour, the set of filters forwarded to it covers every active
    /// subscription received from the *other* links.  This is the invariant
    /// multi-broker delivery correctness rests on.
    #[test]
    fn forwarded_filters_cover_all_foreign_subscriptions(script in subscription_script(), n in notification()) {
        for kind in [
            RoutingStrategyKind::Simple,
            RoutingStrategyKind::Identity,
            RoutingStrategyKind::Covering,
            RoutingStrategyKind::Merging,
        ] {
            let mut engine: RoutingEngine<u8> = RoutingEngine::new(kind);
            // Record what is forwarded to each target over the whole run.
            let mut sent: std::collections::BTreeMap<u8, Vec<Filter>> = Default::default();
            for (f, l) in &script {
                for (target, filter) in engine.handle_subscribe(f.clone(), *l, &LINKS) {
                    sent.entry(target).or_default().push(filter);
                }
            }
            for target in LINKS {
                // Every subscription from a link other than `target` that the
                // notification matches must be covered by something sent to
                // `target`.
                for (f, l) in &script {
                    if *l == target || !f.matches(&n) {
                        continue;
                    }
                    let covered = sent
                        .get(&target)
                        .map(|filters| filters.iter().any(|s| s.covers(f)))
                        .unwrap_or(false);
                    prop_assert!(
                        covered,
                        "{:?}: subscription {} from link {} is not covered towards link {}",
                        kind, f, l, target
                    );
                }
            }
        }
    }

    /// Subgrouping equivalence: the subgroup-compacted [`RoutingTable`]
    /// behaves byte-identically to the per-subscription oracle (a plain
    /// entry list, exactly what the table was before subgrouping) across
    /// interleaved subscribe/unsubscribe churn — same `len`, same
    /// `matching_destinations`, same `is_covered`, same
    /// `destinations_with_identical`, same `covered_entries`, same removal
    /// results.  Delivery-log equivalence at the system level rides the
    /// churn/storm scenario audits in `rebeca-bench`.
    #[test]
    fn subgrouped_table_matches_per_subscription_oracle(
        ops in prop::collection::vec((filter(), 0u8..4, any::<bool>()), 0..24),
        n in notification(),
    ) {
        let mut table: RoutingTable<u8> = RoutingTable::new();
        let mut oracle: Vec<(Filter, u8)> = Vec::new();
        for (f, l, subscribe) in &ops {
            if *subscribe {
                table.insert(f.clone(), *l);
                oracle.push((f.clone(), *l));
            } else {
                let removed = table.remove(f, l);
                let position = oracle.iter().position(|(of, ol)| of == f && ol == l);
                prop_assert_eq!(removed, position.is_some(), "removal must agree");
                if let Some(i) = position {
                    oracle.remove(i);
                }
            }

            prop_assert_eq!(table.len(), oracle.len());
            prop_assert!(table.subgroup_count() <= table.len().max(1));

            for exclude in [None, Some(&0u8)] {
                let got = table.matching_destinations(&n, exclude);
                let mut want: Vec<u8> = oracle
                    .iter()
                    .filter(|(of, ol)| Some(ol) != exclude && of.matches(&n))
                    .map(|(_, ol)| *ol)
                    .collect();
                want.sort_unstable();
                want.dedup();
                prop_assert_eq!(got, want);

                let covered = oracle
                    .iter()
                    .any(|(of, ol)| Some(ol) != exclude && of.covers(f));
                prop_assert_eq!(table.is_covered(f, exclude), covered);

                let mut identical: Vec<u8> = oracle
                    .iter()
                    .filter(|(of, ol)| Some(ol) != exclude && of == f)
                    .map(|(_, ol)| *ol)
                    .collect();
                identical.sort_unstable();
                identical.dedup();
                prop_assert_eq!(table.destinations_with_identical(f, exclude), identical);
            }

            // Covered entries come back in (destination, insertion) order in
            // both representations.
            let got: Vec<(u8, Filter)> = table
                .covered_entries(f)
                .into_iter()
                .map(|(d, cf)| (*d, cf.clone()))
                .collect();
            let mut want: Vec<(u8, Filter)> = oracle
                .iter()
                .filter(|(of, _)| f.covers(of))
                .map(|(of, ol)| (*ol, of.clone()))
                .collect();
            want.sort_by_key(|(d, _)| *d);
            prop_assert_eq!(got, want);
        }
    }

    /// Subscribe followed by unsubscribe of the same script leaves the table
    /// empty, under every strategy.
    #[test]
    fn unsubscribe_is_the_inverse_of_subscribe(script in subscription_script()) {
        for kind in [
            RoutingStrategyKind::Simple,
            RoutingStrategyKind::Identity,
            RoutingStrategyKind::Covering,
            RoutingStrategyKind::Merging,
        ] {
            let mut engine: RoutingEngine<u8> = RoutingEngine::new(kind);
            for (f, l) in &script {
                engine.handle_subscribe(f.clone(), *l, &LINKS);
            }
            for (f, l) in &script {
                let eff = engine.handle_unsubscribe(f, l, &LINKS);
                prop_assert!(eff.removed, "{:?}: subscription must be found", kind);
            }
            prop_assert_eq!(engine.table_size(), 0, "{:?}: table must be empty", kind);
            // After the table drained, nothing is routed anywhere.
            let n = Notification::builder().attr("cost", 1).build();
            prop_assert!(engine.route(&n, None, &LINKS).is_empty());
        }
    }
}
