//! Location spaces: the finite set `L` of application-level locations.
//!
//! The paper leaves the location range `L` application dependent ("all the
//! different rooms of a building, all the streets of a town, or all the
//! geographical coordinates given by a GPS system up to a certain
//! granularity").  A [`LocationSpace`] is simply a finite, named universe of
//! locations with stable numeric identifiers.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A stable identifier for one location within a [`LocationSpace`].
///
/// The raw `u32` is what appears inside notifications as
/// `Value::Location` of the filter crate (which stays
/// independent of this crate, so it stores the raw id).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct LocationId(pub u32);

impl LocationId {
    /// Creates a location id from its raw numeric id.
    pub const fn new(raw: u32) -> Self {
        LocationId(raw)
    }

    /// The raw numeric id.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for LocationId {
    fn from(v: u32) -> Self {
        LocationId(v)
    }
}

impl fmt::Display for LocationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loc#{}", self.0)
    }
}

/// Error parsing a [`LocationId`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLocationIdError(String);

impl fmt::Display for ParseLocationIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid location id {:?} (expected \"loc#4\" or \"4\")",
            self.0
        )
    }
}

impl std::error::Error for ParseLocationIdError {}

impl std::str::FromStr for LocationId {
    type Err = ParseLocationIdError;

    /// Parses the [`Display`](fmt::Display) form `"loc#4"`, or a bare raw
    /// id `"4"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s.strip_prefix("loc#").unwrap_or(s);
        digits
            .parse::<u32>()
            .map(LocationId)
            .map_err(|_| ParseLocationIdError(s.to_string()))
    }
}

/// A finite universe of named locations.
///
/// # Examples
///
/// ```
/// use rebeca_location::LocationSpace;
///
/// let mut space = LocationSpace::new();
/// let office = space.add("office");
/// let lobby = space.add("lobby");
/// assert_eq!(space.len(), 2);
/// assert_eq!(space.name(office), Some("office"));
/// assert_eq!(space.id("lobby"), Some(lobby));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LocationSpace {
    names: Vec<String>,
    by_name: BTreeMap<String, LocationId>,
}

impl LocationSpace {
    /// Creates an empty space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a space with `n` anonymous locations named `"L0"… "L{n-1}"`.
    pub fn with_size(n: usize) -> Self {
        let mut space = Self::new();
        for i in 0..n {
            space.add(format!("L{i}"));
        }
        space
    }

    /// Adds a location and returns its id.  Adding an existing name returns
    /// the existing id.
    pub fn add(&mut self, name: impl Into<String>) -> LocationId {
        let name = name.into();
        if let Some(id) = self.by_name.get(&name) {
            return *id;
        }
        let id = LocationId(self.names.len() as u32);
        self.names.push(name.clone());
        self.by_name.insert(name, id);
        id
    }

    /// Number of locations.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when the space has no locations.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The name of a location, if the id is valid.
    pub fn name(&self, id: LocationId) -> Option<&str> {
        self.names.get(id.0 as usize).map(String::as_str)
    }

    /// Looks a location up by name.
    pub fn id(&self, name: &str) -> Option<LocationId> {
        self.by_name.get(name).copied()
    }

    /// `true` when the id belongs to this space.
    pub fn contains(&self, id: LocationId) -> bool {
        (id.0 as usize) < self.names.len()
    }

    /// Iterates over all location ids in id order.
    pub fn ids(&self) -> impl Iterator<Item = LocationId> + '_ {
        (0..self.names.len() as u32).map(LocationId)
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (LocationId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (LocationId(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut s = LocationSpace::new();
        let a = s.add("a");
        let b = s.add("b");
        assert_ne!(a, b);
        assert_eq!(s.name(a), Some("a"));
        assert_eq!(s.id("b"), Some(b));
        assert_eq!(s.id("z"), None);
        assert!(s.contains(a));
        assert!(!s.contains(LocationId(99)));
    }

    #[test]
    fn adding_existing_name_is_idempotent() {
        let mut s = LocationSpace::new();
        let a1 = s.add("a");
        let a2 = s.add("a");
        assert_eq!(a1, a2);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn with_size_creates_numbered_locations() {
        let s = LocationSpace::with_size(3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.name(LocationId(1)), Some("L1"));
        assert_eq!(s.ids().count(), 3);
    }

    #[test]
    fn iteration_is_in_id_order() {
        let mut s = LocationSpace::new();
        s.add("x");
        s.add("y");
        let pairs: Vec<(LocationId, &str)> = s.iter().collect();
        assert_eq!(pairs, vec![(LocationId(0), "x"), (LocationId(1), "y")]);
    }

    #[test]
    fn empty_space_reports_empty() {
        let s = LocationSpace::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn display_of_ids() {
        assert_eq!(LocationId(4).to_string(), "loc#4");
        assert_eq!(LocationId::from(4u32).raw(), 4);
    }

    #[test]
    fn location_ids_parse_from_display_and_bare_numbers() {
        assert_eq!("loc#4".parse::<LocationId>().unwrap(), LocationId(4));
        assert_eq!("4".parse::<LocationId>().unwrap(), LocationId(4));
        assert_eq!(
            LocationId(11).to_string().parse::<LocationId>().unwrap(),
            LocationId(11)
        );
        for bad in ["", "loc#", "loc#x", "n3", "-1"] {
            let err = bad.parse::<LocationId>().unwrap_err();
            assert!(err.to_string().contains("invalid location id"), "{bad}");
        }
    }
}
