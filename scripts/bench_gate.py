#!/usr/bin/env python3
"""Bench regression gate: run the matcher + shard criterion benches and fail
when hot-path performance regresses against the checked-in baselines.

Usage:
    python3 scripts/bench_gate.py [--skip-run]

Two kinds of checks, because absolute wall-clock numbers do not transfer
between machines:

  * **Within-run ratio gates** (machine-independent, the primary signal):
    pairs measured in the *same* run — indexed vs linear matching, indexed
    vs linear covering, sharded vs sequential single-notification latency —
    must not regress by more than `BENCH_GATE_TOLERANCE` (default 25%)
    against the same pair's ratio in the baseline file.  Pairs whose slow
    reference side is bimodal between runs on small hosts (the 100k linear
    matching scan, the per-notification batch reference loop) are held to
    hard floors instead — a baseline-relative ratio would flap with the
    reference side's cache mode.  The headline batch speedup at 100k
    subscriptions must stay above `BENCH_GATE_MIN_BATCH_SPEEDUP`
    (default 4.0).
  * **Absolute median gates**: every gated median (`matcher/match/*`,
    `matcher/covering/*`, `shards/single/*`, `shards/batch/*`) is compared
    against the baseline's ns/iter with `BENCH_GATE_ABS_TOLERANCE`
    (default 25%).  On hardware unlike the reference machine, raise the
    env var (CI uses a looser bound) — the ratio gates still hold exactly.
  * **Hard ratio floors** (machine-independent): a few within-run pairs
    must additionally clear an absolute minimum speedup regardless of the
    baseline: the covering-hit pairs (`matcher/covering/*_hit` and the
    zipf-skewed `matcher/covering_hit/*`) must keep the indexed side at
    least at parity with the linear scan
    (`BENCH_GATE_MIN_COVERING_HIT_SPEEDUP`, default 1.0 — the index may
    never again lose the covering-hit path), the relocation-storm
    control-message pair `churn/link_messages/unscoped vs scoped` must show
    the covering-scoped flood cutting broker-to-broker subscription-control
    traffic by at least 30% (`BENCH_GATE_MIN_CONTROL_REDUCTION`, default
    1.3; the counts are deterministic simulation outputs riding the
    `ns_per_iter` field, so this floor is exact on every machine), and the
    retention store's binary-searched recent-window fetch must beat the
    full-scan oracle at 100k retained records
    (`BENCH_GATE_MIN_FETCH_SPEEDUP`, default 1.3 — the segment time
    indexes may never degenerate into a whole-archive scan).  The two
    bimodal-reference pairs above ride here too: indexed matching at 100k
    must clear `BENCH_GATE_MIN_MATCH_100K_SPEEDUP` (default 8.0; worst
    observed mode ~14x) and the 8-shard batch kernel at 10k must clear
    `BENCH_GATE_MIN_BATCH_SPEEDUP_10K` (default 2.0; observed ~3.6-4.2x).
  * **Instrumentation overhead gates**: `obs_bench` measures the journal-on
    vs journal-off quickstart scenario as interleaved pairs (drift cancels
    inside each pair) and reports the median ratio as the synthetic sample
    `obs/quickstart/overhead_x1000/200` (ratio x 1000).  That ratio must
    stay within `BENCH_GATE_OBS_OVERHEAD` (default 5%) of 1.0 — the
    tentpole claim that tracing is cheap enough to leave on.  The
    distributed-tracing layer gets the same discipline:
    `obs/quickstart/trace_overhead_x1000/200` is the interleaved ratio of
    the scenario at the production-typical 1% trace-sampling rate over the
    untraced default (dominated by the unsampled hot path: one hash per
    publication, no allocation), bounded by `BENCH_GATE_TRACE_OVERHEAD`
    (default 5%).  Full sampling (`trace_full_x1000`) records eight spans
    per publication against microseconds of in-memory routing and is
    deliberately not production-rate; it is reported and bounded only by
    the absolute-median gate against its own baseline.

Behaviour:
  1. Runs `cargo bench -p rebeca-bench --bench matcher_bench` and
     `--bench shard_bench` with `CRITERION_JSON` set, honouring whatever
     `CRITERION_MEASUREMENT_MS` / `CRITERION_WARMUP_MS` the caller exports
     (pass `--skip-run` to reuse `$BENCH_GATE_DIR` output from a previous
     run).
  2. Applies the checks above and exits 1 on any failure.

Regenerate the baselines on the reference machine with the commands in the
JSON file headers when a deliberate change shifts them.
"""

import json
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TOLERANCE = float(os.environ.get("BENCH_GATE_TOLERANCE", "0.25"))
ABS_TOLERANCE = float(os.environ.get("BENCH_GATE_ABS_TOLERANCE", "0.25"))
MIN_BATCH_SPEEDUP = float(os.environ.get("BENCH_GATE_MIN_BATCH_SPEEDUP", "4.0"))
OBS_OVERHEAD = float(os.environ.get("BENCH_GATE_OBS_OVERHEAD", "0.05"))
TRACE_OVERHEAD = float(os.environ.get("BENCH_GATE_TRACE_OVERHEAD", "0.05"))
MIN_COVERING_HIT_SPEEDUP = float(
    os.environ.get("BENCH_GATE_MIN_COVERING_HIT_SPEEDUP", "1.0")
)
MIN_CONTROL_REDUCTION = float(os.environ.get("BENCH_GATE_MIN_CONTROL_REDUCTION", "1.3"))
MIN_MATCH_100K_SPEEDUP = float(os.environ.get("BENCH_GATE_MIN_MATCH_100K_SPEEDUP", "8.0"))
MIN_BATCH_SPEEDUP_10K = float(os.environ.get("BENCH_GATE_MIN_BATCH_SPEEDUP_10K", "2.0"))
MIN_FETCH_SPEEDUP = float(os.environ.get("BENCH_GATE_MIN_FETCH_SPEEDUP", "1.3"))
OUT_DIR = os.environ.get("BENCH_GATE_DIR", "/tmp/bench_gate")

BENCHES = {
    "matcher_bench": "BENCH_matcher.json",
    "shard_bench": "BENCH_shards.json",
    "churn_bench": "BENCH_mobility.json",
    "session_bench": "BENCH_session.json",
    "net_bench": "BENCH_net.json",
    "obs_bench": "BENCH_obs.json",
    "retain_bench": "BENCH_retain.json",
}

# The interleaved instrumented/baseline ratios emitted by obs_bench
# (ratio x 1000 riding the ns_per_iter field).
OBS_OVERHEAD_NAME = "obs/quickstart/overhead_x1000/200"
TRACE_OVERHEAD_NAME = "obs/quickstart/trace_overhead_x1000/200"

# Prefixes of benchmark names whose absolute medians are gated (hot paths;
# maintenance benches are reported but not gated).
GATED_PREFIXES = (
    "matcher/match/",
    "matcher/covering/",
    "matcher/covering_hit/",
    "shards/single/",
    "shards/batch/",
    "churn/relocation/",
    "churn/drain_",
    "churn/link_messages/",
    "session/quickstart/",
    "net/quickstart/",
    "net/relocation/",
    "net/reconnect/",
    "obs/quickstart/",
    "obs/metrics/",
    "matcher/match_zipf/",
    "retain/append/",
    "retain/fetch/",
    "retain/reattach/",
)

# Within-run pairs gated on their ratio (slow/fast): the optimized side must
# not lose ground against the reference side measured in the same process.
RATIO_GATES = [
    ("matcher/match/linear/1000", "matcher/match/indexed/1000"),
    ("matcher/match/linear/10000", "matcher/match/indexed/10000"),
    # match/100000 is floored, not baseline-gated: the 100k linear scan is
    # bimodal (cache-mode dependent, ~2x between runs on small hosts), so a
    # within-run ratio compared against a single-mode baseline flaps.  See
    # RATIO_FLOORS below.
    ("matcher/covering/linear_miss/1000", "matcher/covering/indexed_miss/1000"),
    ("matcher/covering/linear_miss/10000", "matcher/covering/indexed_miss/10000"),
    ("matcher/covering/linear_hit/1000", "matcher/covering/indexed_hit/1000"),
    ("matcher/covering/linear_hit/10000", "matcher/covering/indexed_hit/10000"),
    ("matcher/covering_hit/linear/1000", "matcher/covering_hit/indexed/1000"),
    ("matcher/covering_hit/linear/10000", "matcher/covering_hit/indexed/10000"),
    # Zipf-skewed matching: the index must keep its advantage when hot
    # groups hold most subscribers (hit = hot posting lists, miss = groups
    # nobody subscribes to).
    ("matcher/match_zipf/linear_hit/10000", "matcher/match_zipf/indexed_hit/10000"),
    ("matcher/match_zipf/linear_hit/100000", "matcher/match_zipf/indexed_hit/100000"),
    ("matcher/match_zipf/linear_miss/10000", "matcher/match_zipf/indexed_miss/10000"),
    ("matcher/match_zipf/linear_miss/100000", "matcher/match_zipf/indexed_miss/100000"),
    ("shards/single/sequential/10000", "shards/single/sharded8/10000"),
    ("shards/single/sequential/100000", "shards/single/sharded8/100000"),
    # The batch-vs-per-notification pairs are floored, not baseline-gated:
    # the per-notification reference loop swings ~±30% between runs on
    # small hosts, so its within-run ratio flaps against any single-mode
    # baseline.  The 100k pair is additionally held to MIN_BATCH_SPEEDUP by
    # the headline batch-speedup check below; see RATIO_FLOORS.
    # Mobility engine: the drained transit path must not grow more expensive
    # relative to immediate routing (the drain's link-message reduction is
    # asserted inside churn_bench itself; this guards its CPU cost), and the
    # full relocation churn must stay within its multiple of the
    # no-relocation event-loop floor.
    ("churn/drain_off/2000", "churn/drain_on/2000"),
    # Reference side = the static (no-relocation) floor: the gate trips when
    # the relocation run loses ground against it, i.e. when per-relocation
    # overhead (WAL appends, floods, replays) regresses.
    ("churn/static/2000", "churn/relocation/2000"),
    # Session-API overhead: the interactive session path must stay at parity
    # with the pre-scripted adapter (both replay through the same per-client
    # action queue; the gate trips when the session side picks up overhead).
    ("session/quickstart/scripted/200", "session/quickstart/session/200"),
    # TCP transport overhead: reference side = the in-process ThreadedDriver
    # running the identical completion-driven scenario in the same process.
    # The gate trips when the TCP side loses ground against it, i.e. when
    # per-message transport overhead (framing, socket hops, clamp) or
    # connection setup regresses.
    ("net/quickstart/threaded/40", "net/quickstart/tcp/40"),
    ("net/relocation/threaded/40", "net/relocation/tcp/40"),
    # Self-healing overhead: reference side = the clean tcp quickstart in the
    # same process.  "Speedup" here is a fraction < 1 (the reconnect run is
    # slower by construction — it survives forced drops and publishes one at
    # a time); the gate trips when redial + resend + dedup cost grows the
    # reconnect run relative to the clean run.
    ("net/quickstart/tcp/40", "net/reconnect/tcp/40"),
    # Counter-key satellite: `incr` with an owned String key (the cost every
    # call paid before the Cow<'static, str> rework) vs the zero-allocation
    # &'static str path.  The gate trips when the static path loses its
    # allocation-free advantage.
    ("obs/metrics/incr_owned/8", "obs/metrics/incr_static/8"),
    # Retention-store time-window fetch: the binary-searched fetch_since
    # (skips archived segments via their time-index headers) vs the
    # full-scan oracle in the same process, at 100k retained records.
    # `recent` is the common reattach window (newest 1%); `half` is a
    # parity pair (both sides scan the same records).
    ("retain/fetch/linear_recent/100000", "retain/fetch/indexed_recent/100000"),
    ("retain/fetch/linear_half/100000", "retain/fetch/indexed_half/100000"),
]

# Within-run pairs that must clear an absolute minimum speedup (slow/fast)
# regardless of what the baseline recorded.  Unlike RATIO_GATES these do not
# drift with the checked-in numbers: they encode invariants of the design.
RATIO_FLOORS = [
    # The covering summaries exist so the indexed covering-hit path can
    # never again lose to the linear scan (it did at 10k before them).
    (
        "matcher/covering/linear_hit/10000",
        "matcher/covering/indexed_hit/10000",
        MIN_COVERING_HIT_SPEEDUP,
    ),
    (
        "matcher/covering_hit/linear/10000",
        "matcher/covering_hit/indexed/10000",
        MIN_COVERING_HIT_SPEEDUP,
    ),
    # At 100k subscriptions the linear matching scan is bimodal (~2x between
    # runs depending on cache mode), so the indexed side is held to a hard
    # minimum advantage instead of a baseline-relative ratio: the worst mode
    # observed still clears ~14x, a real index regression lands far below.
    (
        "matcher/match/linear/100000",
        "matcher/match/indexed/100000",
        MIN_MATCH_100K_SPEEDUP,
    ),
    # Batch matching must keep a decisive advantage over the per-notification
    # loop at 10k subscriptions (observed ~3.6-4.2x; parity would mean the
    # 64-lane bitmask path regressed).  The 100k pair's floor is the
    # headline MIN_BATCH_SPEEDUP check.
    (
        "shards/batch/per_notification_loop/10000",
        "shards/batch/match_batch_shards8/10000",
        MIN_BATCH_SPEEDUP_10K,
    ),
    # Covering-scoped relocation floods must cut broker-to-broker
    # subscription-control messages by >= 30% in the relocation storm
    # (deterministic counts, exact on every machine).
    (
        "churn/link_messages/unscoped/400",
        "churn/link_messages/scoped/400",
        MIN_CONTROL_REDUCTION,
    ),
    # The retention store's segment time indexes exist so a recent-window
    # fetch never degenerates into scanning the whole archive: the
    # binary-searched fetch must beat the full-scan oracle outright on the
    # newest-1% window at 100k retained records.
    (
        "retain/fetch/linear_recent/100000",
        "retain/fetch/indexed_recent/100000",
        MIN_FETCH_SPEEDUP,
    ),
]


def load_concat_json(path):
    """The criterion shim appends one JSON array per bench binary; parse all."""
    with open(path) as fh:
        text = fh.read()
    decoder = json.JSONDecoder()
    results, i = [], 0
    while i < len(text):
        while i < len(text) and text[i] != "[":
            i += 1
        if i >= len(text):
            break
        arr, i = decoder.raw_decode(text, i)
        results.extend(arr)
    return {r["name"]: r["ns_per_iter"] for r in results}


def run_bench(bench, out_path):
    env = dict(os.environ, CRITERION_JSON=out_path)
    cmd = ["cargo", "bench", "-p", "rebeca-bench", "--bench", bench]
    print(f"bench-gate: running {' '.join(cmd)}")
    subprocess.run(cmd, cwd=REPO, env=env, check=True)


def main():
    skip_run = "--skip-run" in sys.argv
    os.makedirs(OUT_DIR, exist_ok=True)

    failures = []
    current, baseline = {}, {}
    for bench, baseline_file in BENCHES.items():
        out_path = os.path.join(OUT_DIR, f"{bench}.json")
        if not skip_run:
            if os.path.exists(out_path):
                os.remove(out_path)
            run_bench(bench, out_path)
        current.update(load_concat_json(out_path))
        with open(os.path.join(REPO, baseline_file)) as fh:
            baseline.update(
                {r["name"]: r["ns_per_iter"] for r in json.load(fh)["results"]}
            )

    # Within-run ratio gates (machine-independent).
    for slow, fast in RATIO_GATES:
        missing = [n for n in (slow, fast) if n not in current or n not in baseline]
        if missing:
            failures.append(f"ratio gate {slow} / {fast}: missing {missing}")
            continue
        base_speedup = baseline[slow] / baseline[fast]
        cur_speedup = current[slow] / current[fast]
        # The fast side regresses when the within-run speedup shrinks.
        ratio = base_speedup / cur_speedup
        marker = "OK "
        if ratio > 1.0 + TOLERANCE:
            marker = "FAIL"
            failures.append(
                f"ratio {fast} vs {slow}: speedup {cur_speedup:.2f}x vs baseline "
                f"{base_speedup:.2f}x ({(ratio - 1.0) * 100:+.1f}%, tolerance {TOLERANCE * 100:.0f}%)"
            )
        print(
            f"bench-gate: {marker} ratio {fast:<48} {cur_speedup:>7.2f}x "
            f"(baseline {base_speedup:.2f}x)"
        )

    # Hard ratio floors (design invariants, independent of the baseline).
    for slow, fast, floor in RATIO_FLOORS:
        missing = [n for n in (slow, fast) if n not in current]
        if missing:
            failures.append(f"ratio floor {slow} / {fast}: missing {missing}")
            continue
        speedup = current[slow] / current[fast]
        status = "OK " if speedup >= floor else "FAIL"
        print(
            f"bench-gate: {status} floor {fast:<48} {speedup:>7.2f}x "
            f"(minimum {floor:.2f}x)"
        )
        if speedup < floor:
            failures.append(
                f"ratio floor {fast} vs {slow}: {speedup:.2f}x < {floor:.2f}x"
            )

    # Headline check: the 8-shard batch kernel at 100k subscriptions.
    loop_ns = current.get("shards/batch/per_notification_loop/100000")
    batch_ns = current.get("shards/batch/match_batch_shards8/100000")
    if loop_ns is None or batch_ns is None:
        failures.append("shard_bench did not report the 100000-subscription batch pair")
    else:
        speedup = loop_ns / batch_ns
        status = "OK " if speedup >= MIN_BATCH_SPEEDUP else "FAIL"
        print(
            f"bench-gate: {status} batch speedup @100k/8 shards: {speedup:.2f}x "
            f"(minimum {MIN_BATCH_SPEEDUP:.1f}x)"
        )
        if speedup < MIN_BATCH_SPEEDUP:
            failures.append(
                f"batch speedup @100k/8 shards: {speedup:.2f}x < {MIN_BATCH_SPEEDUP:.1f}x"
            )

    # Instrumentation overhead: each interleaved on/off ratio must stay
    # within its bound of parity.
    overhead_gates = [
        (OBS_OVERHEAD_NAME, OBS_OVERHEAD, "journal-on vs journal-off quickstart"),
        (TRACE_OVERHEAD_NAME, TRACE_OVERHEAD, "trace-sampled vs untraced quickstart"),
    ]
    for name, bound, label in overhead_gates:
        overhead_x1000 = current.get(name)
        if overhead_x1000 is None:
            failures.append(f"obs_bench did not report {name}")
            continue
        ratio = overhead_x1000 / 1000.0
        status = "OK " if ratio <= 1.0 + bound else "FAIL"
        print(
            f"bench-gate: {status} {label}: {(ratio - 1.0) * 100:+.2f}% "
            f"(bound {bound * 100:.0f}%)"
        )
        if ratio > 1.0 + bound:
            failures.append(
                f"instrumentation overhead {(ratio - 1.0) * 100:+.2f}% exceeds "
                f"{bound * 100:.0f}% ({label})"
            )

    # Absolute median gates.
    checked = 0
    for name, base_ns in sorted(baseline.items()):
        if not name.startswith(GATED_PREFIXES):
            continue
        if name not in current:
            failures.append(f"{name}: present in the baseline but not measured")
            continue
        checked += 1
        ratio = current[name] / base_ns
        marker = "OK "
        if ratio > 1.0 + ABS_TOLERANCE:
            marker = "FAIL"
            failures.append(
                f"{name}: {current[name]:.0f} ns vs baseline {base_ns:.0f} ns "
                f"({(ratio - 1.0) * 100:+.1f}%, tolerance {ABS_TOLERANCE * 100:.0f}%)"
            )
        print(
            f"bench-gate: {marker} {name:<55} {current[name]:>12.0f} ns "
            f"(baseline {base_ns:.0f}, {(ratio - 1.0) * 100:+.1f}%)"
        )

    print(
        f"bench-gate: checked {len(RATIO_GATES)} ratios + {len(RATIO_FLOORS)} floors "
        f"+ {checked} absolute medians"
    )
    if failures:
        print("bench-gate: FAILED")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("bench-gate: all gated benches within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
