//! Wire-codec robustness: proptest roundtrips over every [`Message`]
//! variant, and corruption smoke tests — a truncated frame, a flipped bit,
//! a garbage header must all yield a typed decode error, never a panic.
//! Mirrors the WAL-corruption suite of `crates/mobility`.

use proptest::prelude::*;

use rebeca_broker::{ClientId, Delivery, Envelope, Message, SubscriptionId, TraceContext};
use rebeca_filter::{Constraint, Filter, LocationDependentFilter, Notification, Value};
use rebeca_location::{AdaptivityPlan, LocationId};
use rebeca_net::wire::{Frame, WireError};
use rebeca_net::Endpoint;
use rebeca_sim::{DelayModel, NodeId};

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

fn attr_name() -> BoxedStrategy<String> {
    (0u32..6).prop_map(|i| format!("attr{i}")).boxed()
}

fn finite_f64() -> BoxedStrategy<f64> {
    // Finite, non-NaN floats (NaN breaks the equality the roundtrip
    // assertion relies on — and never appears in protocol payloads).
    (any::<i32>(), 0u32..1000)
        .prop_map(|(whole, frac)| whole as f64 + frac as f64 / 1000.0)
        .boxed()
}

fn value() -> BoxedStrategy<Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        finite_f64().prop_map(Value::Float),
        (0u32..100).prop_map(|i| Value::Str(format!("s{i}"))),
        any::<bool>().prop_map(Value::Bool),
        any::<u32>().prop_map(Value::Location),
    ]
    .boxed()
}

fn constraint() -> BoxedStrategy<Constraint> {
    prop_oneof![
        Just(Constraint::Exists),
        value().prop_map(Constraint::Eq),
        value().prop_map(Constraint::Ne),
        value().prop_map(Constraint::Lt),
        value().prop_map(Constraint::Le),
        value().prop_map(Constraint::Gt),
        value().prop_map(Constraint::Ge),
        (value(), value()).prop_map(|(lo, hi)| Constraint::Between(lo, hi)),
        proptest::collection::vec(value(), 0..4)
            .prop_map(|vs| Constraint::In(vs.into_iter().collect())),
        (0u32..50).prop_map(|i| Constraint::Prefix(format!("p{i}"))),
        (0u32..50).prop_map(|i| Constraint::Suffix(format!("s{i}"))),
        (0u32..50).prop_map(|i| Constraint::Contains(format!("c{i}"))),
    ]
    .boxed()
}

fn filter() -> BoxedStrategy<Filter> {
    proptest::collection::vec((attr_name(), constraint()), 0..4)
        .prop_map(|pairs| pairs.into_iter().collect())
        .boxed()
}

fn notification() -> BoxedStrategy<Notification> {
    proptest::collection::vec((attr_name(), value()), 0..4)
        .prop_map(|pairs| {
            let mut b = Notification::builder();
            for (name, v) in pairs {
                b = b.attr(name, v);
            }
            b.build()
        })
        .boxed()
}

fn envelope() -> BoxedStrategy<Envelope> {
    (
        any::<u32>(),
        any::<u64>(),
        notification(),
        (any::<bool>(), any::<u64>(), any::<u64>(), any::<bool>()),
    )
        .prop_map(|(publisher, publisher_seq, notification, trace)| {
            let mut e = Envelope::new(ClientId::new(publisher), publisher_seq, notification);
            let (traced, trace_id, parent_span, sampled) = trace;
            e.trace = traced.then_some(TraceContext {
                trace_id,
                parent_span,
                sampled,
            });
            e
        })
        .boxed()
}

fn delivery() -> BoxedStrategy<Delivery> {
    (any::<u32>(), filter(), any::<u64>(), envelope())
        .prop_map(|(subscriber, filter, seq, envelope)| Delivery {
            subscriber: ClientId::new(subscriber),
            filter,
            seq,
            envelope,
        })
        .boxed()
}

fn client() -> BoxedStrategy<ClientId> {
    any::<u32>().prop_map(ClientId::new).boxed()
}

fn node() -> BoxedStrategy<NodeId> {
    (0usize..1_000_000).prop_map(NodeId::new).boxed()
}

fn sub_id() -> BoxedStrategy<SubscriptionId> {
    (any::<u32>(), any::<u32>())
        .prop_map(|(c, i)| SubscriptionId::new(ClientId::new(c), i))
        .boxed()
}

fn template() -> BoxedStrategy<LocationDependentFilter> {
    proptest::collection::vec((attr_name(), constraint(), 0usize..4, any::<bool>()), 0..4)
        .prop_map(|slots| {
            let mut t = LocationDependentFilter::from_filter(&Filter::new());
            for (name, c, vicinity, myloc) in slots {
                t = if myloc {
                    t.with_myloc(name, vicinity)
                } else {
                    t.with_concrete(name, c)
                };
            }
            t
        })
        .boxed()
}

fn plan() -> BoxedStrategy<AdaptivityPlan> {
    proptest::collection::vec(
        prop_oneof![(0usize..10).boxed(), Just(usize::MAX).boxed()],
        1..6,
    )
    .prop_map(AdaptivityPlan::from_steps)
    .boxed()
}

/// Every [`Message`] variant — the codec must cover the whole vocabulary.
fn message() -> BoxedStrategy<Message> {
    prop_oneof![
        client().prop_map(|client| Message::Attach { client }),
        client().prop_map(|client| Message::Detach { client }),
        (client(), notification()).prop_map(|(publisher, notification)| Message::Publish {
            publisher,
            notification
        }),
        (client(), proptest::collection::vec(notification(), 0..5)).prop_map(
            |(publisher, notifications)| Message::PublishBatch {
                publisher,
                notifications
            }
        ),
        envelope().prop_map(Message::Notification),
        proptest::collection::vec(envelope(), 0..5).prop_map(Message::NotificationBatch),
        (client(), filter())
            .prop_map(|(subscriber, filter)| Message::Subscribe { subscriber, filter }),
        (client(), filter())
            .prop_map(|(subscriber, filter)| Message::Unsubscribe { subscriber, filter }),
        (client(), filter())
            .prop_map(|(publisher, filter)| Message::Advertise { publisher, filter }),
        (client(), filter())
            .prop_map(|(publisher, filter)| Message::Unadvertise { publisher, filter }),
        delivery().prop_map(Message::Deliver),
        proptest::collection::vec(delivery(), 0..4).prop_map(Message::DeliverBatch),
        (client(), filter(), any::<u64>()).prop_map(|(client, filter, last_seq)| {
            Message::ReSubscribe {
                client,
                filter,
                last_seq,
            }
        }),
        (client(), filter(), any::<u64>(), node()).prop_map(
            |(client, filter, last_seq, new_broker)| Message::Relocate {
                client,
                filter,
                last_seq,
                new_broker
            }
        ),
        (client(), filter(), any::<u64>(), node()).prop_map(
            |(client, filter, last_seq, junction)| Message::Fetch {
                client,
                filter,
                last_seq,
                junction
            }
        ),
        (
            client(),
            filter(),
            proptest::collection::vec(delivery(), 0..4)
        )
            .prop_map(|(client, filter, deliveries)| Message::Replay {
                client,
                filter,
                deliveries
            }),
        (sub_id(), template(), plan(), any::<u32>(), 0usize..16).prop_map(
            |(sub_id, template, plan, location, hop)| Message::LocSubscribe {
                sub_id,
                template,
                plan,
                location: LocationId::new(location),
                hop
            }
        ),
        sub_id().prop_map(|sub_id| Message::LocUnsubscribe { sub_id }),
        (sub_id(), any::<u32>(), 0usize..16).prop_map(|(sub_id, location, hop)| {
            Message::LocationUpdate {
                sub_id,
                location: LocationId::new(location),
                hop,
            }
        }),
    ]
    .boxed()
}

fn frame() -> BoxedStrategy<Frame> {
    prop_oneof![
        (node(), node(), any::<u64>(), (0u32..10000), any::<u64>()).prop_map(
            |(from, to, epoch, port, micros)| Frame::Hello {
                from,
                to,
                epoch,
                listen: Endpoint::new("127.0.0.1", (port % 65536) as u16),
                delay: DelayModel::Constant(micros),
            }
        ),
        any::<u64>().prop_map(|epoch| Frame::Heartbeat { epoch }),
        (node(), node(), any::<u64>(), any::<u64>(), message()).prop_map(
            |(from, to, delay_micros, seq, message)| {
                Frame::Message {
                    from,
                    to,
                    delay_micros,
                    seq,
                    message,
                }
            }
        ),
        // The self-healing control vocabulary: acknowledgements, epoch
        // fences, and the admin fault-injection frame must be as robust
        // under corruption as the data plane.
        any::<u64>().prop_map(|seq| Frame::Ack { seq }),
        any::<u64>().prop_map(|expected| Frame::Fenced { expected }),
        node().prop_map(|peer| Frame::LinkDrop { peer }),
    ]
    .boxed()
}

// ---------------------------------------------------------------------------
// Roundtrip properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every frame (covering every message variant) decodes back to itself.
    #[test]
    fn frames_roundtrip(frame in frame()) {
        let bytes = frame.encode_framed();
        let (decoded, consumed) = Frame::decode_framed(&bytes).expect("well-formed frame");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(decoded, frame);
    }

    /// Any prefix of a valid frame is `Truncated` — never a panic, never a
    /// bogus success.
    #[test]
    fn truncated_frames_yield_a_typed_error(frame in frame(), cut in 0u32..10_000) {
        let bytes = frame.encode_framed();
        let cut = (cut as usize) % bytes.len();
        prop_assert_eq!(
            Frame::decode_framed(&bytes[..cut]).unwrap_err(),
            WireError::Truncated
        );
    }

    /// Flipping any single bit of a frame yields a typed error or (when the
    /// flip lands in the length prefix) a shorter/longer but still
    /// non-panicking parse — decode is total.
    #[test]
    fn flipped_bits_never_panic(frame in frame(), bit in any::<u32>()) {
        let mut bytes = frame.encode_framed();
        let nbits = bytes.len() * 8;
        let bit = (bit as usize) % nbits;
        bytes[bit / 8] ^= 1 << (bit % 8);
        // Must return, not panic; a flip may produce Ok only if it hit a
        // byte the codec tolerates — then the re-encoded frame must differ
        // from the corrupted input only in ways the decode normalised away,
        // which for this codec cannot happen: any accepted decode must
        // re-encode to exactly the corrupted bytes.
        if let Ok((decoded, consumed)) = Frame::decode_framed(&bytes) {
            prop_assert_eq!(&decoded.encode_framed()[..], &bytes[..consumed]);
        }
    }

    /// Random garbage never panics the decoder.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = Frame::decode_framed(&bytes);
    }
}

// ---------------------------------------------------------------------------
// Deterministic corruption smoke (mirrors the WAL suite)
// ---------------------------------------------------------------------------

fn sample_frame() -> Frame {
    Frame::Message {
        from: NodeId::new(2),
        to: NodeId::new(0),
        delay_micros: 5000,
        seq: 7,
        message: Message::Deliver(Delivery {
            subscriber: ClientId::new(1),
            filter: Filter::new().with("service", Constraint::Eq("parking".into())),
            seq: 3,
            envelope: Envelope::new(
                ClientId::new(9),
                3,
                Notification::builder().attr("service", "parking").build(),
            ),
        }),
    }
}

#[test]
fn truncated_frame_is_reported() {
    let bytes = sample_frame().encode_framed();
    assert_eq!(
        Frame::decode_framed(&bytes[..bytes.len() - 3]).unwrap_err(),
        WireError::Truncated
    );
}

#[test]
fn flipped_payload_bit_fails_the_checksum() {
    let mut bytes = sample_frame().encode_framed();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    assert!(matches!(
        Frame::decode_framed(&bytes),
        Err(WireError::Checksum { .. })
    ));
}

#[test]
fn garbage_header_is_rejected() {
    let bytes = [0xFFu8; 12];
    assert!(matches!(
        Frame::decode_framed(&bytes),
        Err(WireError::FrameTooLarge { .. })
    ));
}
