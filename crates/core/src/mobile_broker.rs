//! The mobility-aware Rebeca broker — a thin adapter over the extracted
//! mobility engine.
//!
//! [`MobileBroker`] wraps the static [`BrokerCore`] of `rebeca-broker` and
//! wires it to the two mobility layers:
//!
//! * **Physical mobility** (Section 4 of the paper) is implemented by the
//!   [`RelocationMachine`] of `rebeca-mobility`: virtual counterparts with a
//!   write-ahead [`HandoffLog`], the reactive relocation protocol (junction
//!   detection, fetch, batched replay, in-order merge at the new border
//!   broker, garbage collection at the old one) and crash recovery.  This
//!   adapter only demultiplexes messages into machine transitions and
//!   interprets the returned [`Effect`]s against the simulator's
//!   [`Context`] (sends, timers, metrics).
//! * **Logical mobility** (Section 5): location-dependent subscriptions
//!   whose per-hop filters are instantiated from `ploc(location, q_hop)`
//!   according to an [`AdaptivityPlan`], and the location-update protocol
//!   that swaps those filters hop by hop when the client moves.
//!
//! The adapter also owns the **drain queue**: with
//! [`BrokerConfig::drain_interval`] set, transit notifications are coalesced
//! and flushed through the batch matching path
//! (`BrokerCore::route_envelope_batch`) on a timer, so under load fewer,
//! larger [`Message::NotificationBatch`]es travel per link.
//!
//! On top of the mobility layers, the broker optionally keeps a
//! **retention store** ([`rebeca_retain::RetentionStore`]) of the
//! publications its *local* publishers issued (origin-broker retention:
//! exactly one broker retains each publication).  A time-aware
//! subscription ([`Message::SubscribeSince`]) installs the live
//! subscription and opens a short *history session*: the border broker
//! serves its own retained slice, floods a [`Message::HistoryFetch`]
//! hop by hop, gathers [`Message::HistoryReplay`] slices routed back
//! along reverse-path pointers, holds concurrent live deliveries, and on
//! the gather timeout ships one time-ordered, duplicate-free
//! [`Message::DeliverBatch`] — missed history exactly once, merged in
//! order with live traffic.  Counterparts of clients that never
//! reattach are reclaimed by a lease sweep
//! ([`BrokerConfig::counterpart_lease`]).
//!
//! All control traffic uses the ordinary [`Message`] vocabulary and travels
//! over the ordinary broker links ("pub/sub adherence").

use std::collections::{BTreeMap, BTreeSet};

use rebeca_broker::{
    BrokerCore, BrokerRole, ClientId, Delivery, Envelope, Message, SubscriptionId,
};
use rebeca_filter::{Filter, LocationDependentFilter};
use rebeca_location::{AdaptivityPlan, LocationId, MovementGraph};
use rebeca_mobility::{
    Effect, HandoffLog, PersistenceConfig, RelocationMachine, RelocationPhase,
    DEFAULT_CHECKPOINT_EVERY,
};
use rebeca_obs::SpanRecord;
use rebeca_retain::{RetentionConfig, RetentionStore};
use rebeca_routing::RoutingStrategyKind;
use rebeca_sim::{Context, Incoming, Node, NodeId, SimDuration, SimTime};

/// Histogram name under which relocation hand-off latencies (ReSubscribe
/// hold to replay settle, in microseconds) are recorded.
pub const HANDOFF_LATENCY_HISTOGRAM: &str = "mobility.handoff_latency_micros";

/// Timer tag reserved for the drain-queue flush (relocation timeouts use
/// tags counted up from zero, so the top of the range never collides).
const DRAIN_TIMER_TAG: u64 = u64::MAX;

/// Timer tag reserved for the periodic counterpart-lease sweep.
const LEASE_SWEEP_TIMER_TAG: u64 = u64::MAX - 1;

/// History-session gather timers count up from here.  Relocation timeout
/// tags are `generation << 32 | counter` and a broker would need four
/// billion incarnations to reach this range.
const HISTORY_TIMER_BASE: u64 = 0xFFFF_FFFE_0000_0000;

/// One open history session at the border broker that accepted a
/// [`Message::SubscribeSince`]: retained slices gathered so far plus the
/// live deliveries held back until the merge.
#[derive(Debug, Clone)]
struct HistorySession {
    /// The client node the merged batch is shipped to.
    client_node: NodeId,
    /// Lower bound of the requested time window (micros).
    since_micros: u64,
    /// Last delivery sequence number the client saw for this subscription;
    /// the merged batch continues at `last_seq + 1`.
    last_seq: u64,
    /// Retained entries gathered so far: `(ts_micros, envelope)`.
    entries: Vec<(u64, Envelope)>,
    /// Live deliveries intercepted while the session was open.
    held: Vec<Envelope>,
}

/// Per-broker state of one location-dependent subscription.
#[derive(Debug, Clone)]
struct LocSubState {
    /// The link pointing towards the consumer (a client node at the border
    /// broker, a broker link elsewhere).
    towards_consumer: NodeId,
    /// Hop distance from the consumer's border broker (0 at that broker).
    hop: usize,
    /// The subscription template with its `myloc` markers.
    template: LocationDependentFilter,
    /// The adaptivity plan assigning uncertainty steps to hops.
    plan: AdaptivityPlan,
    /// The consumer's last known location.
    location: LocationId,
    /// The currently installed instantiation of the template at this hop.
    current_filter: Filter,
}

/// Configuration shared by all brokers of a deployment.
///
/// The struct is `#[non_exhaustive]`: build it with
/// [`BrokerConfig::default`] and the `with_*` setters (or mutate the public
/// fields on a default instance) so future fields are not a breaking change.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct BrokerConfig {
    /// Routing strategy used by the static routing engine.
    pub strategy: RoutingStrategyKind,
    /// The movement graph over which `ploc` is evaluated (the location model
    /// is deployment-wide configuration).
    pub movement_graph: MovementGraph,
    /// How long the new border broker waits for a replay before it flushes
    /// its holding buffer anyway (a safety valve; the paper notes that
    /// buffering approaches guarantee completeness only "within the
    /// boundaries of time and/or space limitations").
    pub relocation_timeout: SimDuration,
    /// When set, transit notifications are queued and flushed through the
    /// batch matching path every `drain_interval` instead of being routed
    /// one at a time — fewer link messages at equal deliveries under load.
    /// `None` (the default) routes every notification immediately.
    pub drain_interval: Option<SimDuration>,
    /// Where the per-broker write-ahead handoff logs live.
    pub persistence: PersistenceConfig,
    /// Records between WAL compaction checkpoints (0 disables compaction).
    pub wal_checkpoint_every: usize,
    /// Scope relocation floods to broker links holding a covering routing
    /// entry (the default).  Disable only as an instrumentation baseline:
    /// unscoped floods send `Relocate` over every broker link, as the plain
    /// Section 4 protocol does.
    pub scoped_relocation: bool,
    /// When set, the broker retains the publications of its local
    /// publishers in a segment-rotated [`RetentionStore`] and serves
    /// time-aware subscriptions ([`Message::SubscribeSince`]) from it.
    /// `None` (the default) disables retention: `SubscribeSince` still
    /// installs the live subscription, but no history is replayed from
    /// this broker.
    pub retention: Option<RetentionConfig>,
    /// When set, counterparts whose client never reattaches are expired
    /// after this lease: their buffered deliveries, routing entries and
    /// WAL streams are reclaimed by a periodic sweep.  `None` (the
    /// default) keeps counterparts forever, as the plain Section 4
    /// protocol does.
    pub counterpart_lease: Option<SimDuration>,
    /// Trace-sampling rate in parts per 65536 (see
    /// [`rebeca_obs::rate_per_64k`]).  Sampling is a deterministic hash of
    /// `(publisher, publisher_seq)` — every broker, on every driver, makes
    /// the same decision for the same publication.  0 (the default)
    /// disables tracing entirely; the hot path then takes no allocation.
    pub trace_sample_per_64k: u32,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        Self {
            strategy: RoutingStrategyKind::Covering,
            movement_graph: MovementGraph::paper_example(),
            relocation_timeout: SimDuration::from_secs(10),
            drain_interval: None,
            persistence: PersistenceConfig::InMemory,
            wal_checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
            scoped_relocation: true,
            retention: None,
            counterpart_lease: None,
            trace_sample_per_64k: 0,
        }
    }
}

impl BrokerConfig {
    /// Sets the routing strategy.
    pub fn with_strategy(mut self, strategy: RoutingStrategyKind) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the movement graph over which `ploc` is evaluated.
    pub fn with_movement_graph(mut self, graph: MovementGraph) -> Self {
        self.movement_graph = graph;
        self
    }

    /// Sets the holding-buffer safety-valve timeout of the relocation
    /// protocol.
    pub fn with_relocation_timeout(mut self, timeout: SimDuration) -> Self {
        self.relocation_timeout = timeout;
        self
    }

    /// Sets (or, with `None`, disables) the transit-notification drain
    /// interval.
    pub fn with_drain_interval(mut self, interval: Option<SimDuration>) -> Self {
        self.drain_interval = interval;
        self
    }

    /// Sets where the per-broker write-ahead handoff logs live.
    pub fn with_persistence(mut self, persistence: PersistenceConfig) -> Self {
        self.persistence = persistence;
        self
    }

    /// Sets the number of WAL records between compaction checkpoints
    /// (0 disables compaction).
    pub fn with_wal_checkpoint_every(mut self, records: usize) -> Self {
        self.wal_checkpoint_every = records;
        self
    }

    /// Enables or disables covering-scoped relocation floods.
    pub fn with_scoped_relocation(mut self, scoped: bool) -> Self {
        self.scoped_relocation = scoped;
        self
    }

    /// Sets (or, with `None`, disables) retained-publication storage and
    /// time-aware subscription replay.
    pub fn with_retention(mut self, retention: Option<RetentionConfig>) -> Self {
        self.retention = retention;
        self
    }

    /// Sets (or, with `None`, disables) the counterpart lease after which
    /// streams of clients that never reattach are reclaimed.
    pub fn with_counterpart_lease(mut self, lease: Option<SimDuration>) -> Self {
        self.counterpart_lease = lease;
        self
    }

    /// Sets the trace-sampling rate in parts per 65536 (0 disables
    /// tracing; [`rebeca_obs::rate_per_64k`] converts a fraction).
    pub fn with_trace_sampling(mut self, rate_per_64k: u32) -> Self {
        self.trace_sample_per_64k = rate_per_64k;
        self
    }
}

/// A Rebeca broker extended with the paper's mobility support.
#[derive(Debug, Clone)]
pub struct MobileBroker {
    core: BrokerCore,
    config: BrokerConfig,
    /// The extracted relocation engine (state machine + write-ahead log).
    machine: RelocationMachine,
    /// Location-dependent subscription state per subscription id.
    loc_subs: BTreeMap<SubscriptionId, LocSubState>,
    /// Coalescing queue for transit notifications, keyed by arrival link
    /// (the routing exclude differs per source).
    drain_queue: BTreeMap<NodeId, Vec<Envelope>>,
    /// Whether a drain-flush timer is currently armed.
    drain_armed: bool,
    /// Streams currently held at this (new border) broker and when the hold
    /// began — settling them feeds the hand-off latency histogram.  A plain
    /// vector: relocations in flight at one broker are few.
    holding_since: Vec<((ClientId, Filter), SimTime)>,
    /// When this broker last compacted its WAL (observed via the log's
    /// checkpoint counter; `None` until the first compaction).
    last_checkpoint_at: Option<SimTime>,
    /// WAL lifetime-append count at the last observation — diffed after
    /// every event to journal `wal.append` without touching the log's
    /// append path.
    wal_appends_seen: u64,
    /// WAL checkpoint count at the last observation.
    wal_checkpoints_seen: u64,
    /// Set by [`MobileBroker::recover`]; the first handled event journals
    /// it as a `wal.recovered` event (a restarted node has no live metrics
    /// context at construction time).
    recovery_note: Option<String>,
    /// Retained publications of this broker's local publishers
    /// (`None` when [`BrokerConfig::retention`] is unset).
    retention: Option<RetentionStore>,
    /// Open history sessions at this (border) broker, keyed by stream.
    history_sessions: BTreeMap<(ClientId, Filter), HistorySession>,
    /// Reverse-path pointers for history replays travelling back to the
    /// border broker that flooded the fetch (mirrors the relocation
    /// machine's replay routes; latest fetch wins).
    history_routes: BTreeMap<(ClientId, Filter), NodeId>,
    /// Next history gather-timer tag (counts up from
    /// [`HISTORY_TIMER_BASE`]).
    next_history_tag: u64,
    /// Session keys by live gather-timer tag; a tag missing here fired
    /// after its session already closed.
    history_tags: BTreeMap<u64, (ClientId, Filter)>,
    /// Whether a lease-sweep timer is currently armed.
    lease_sweep_armed: bool,
    /// Trace ids of sampled relocations in flight at this broker, learned
    /// from the protocol messages that carry `last_seq` (ReSubscribe,
    /// Relocate, Fetch) and consumed when the Replay — which carries no
    /// `last_seq` to re-derive the id from — passes through or settles.
    relocation_traces: BTreeMap<(ClientId, Filter), u64>,
    /// Nonce for span ids minted at this layer (replay/merge stitching).
    /// The high bit is set on use so the ids never collide with the
    /// wrapped [`BrokerCore`]'s own nonce space.
    trace_nonce: u64,
}

impl MobileBroker {
    /// Creates a mobility-aware broker with a fresh in-memory handoff log.
    pub fn new(
        id: NodeId,
        role: BrokerRole,
        broker_links: Vec<NodeId>,
        config: BrokerConfig,
    ) -> Self {
        let log = HandoffLog::in_memory().checkpoint_every(config.wal_checkpoint_every);
        Self::with_log(id, role, broker_links, config, log)
    }

    /// Creates a mobility-aware broker over an explicit handoff log (the
    /// deployment facade passes per-broker logs whose backends it keeps
    /// handles to, so the "disk" survives a broker crash).
    pub fn with_log(
        id: NodeId,
        role: BrokerRole,
        broker_links: Vec<NodeId>,
        config: BrokerConfig,
        log: HandoffLog,
    ) -> Self {
        let mut machine = RelocationMachine::new(config.relocation_timeout, log);
        machine.set_scoped_flood(config.scoped_relocation);
        let wal_appends_seen = machine.log().appends_total();
        let wal_checkpoints_seen = machine.log().checkpoints_total();
        let mut core = BrokerCore::new(id, role, broker_links, config.strategy);
        let retention = config.retention.clone().map(RetentionStore::new);
        core.set_record_published(retention.is_some());
        core.set_trace_sampling(config.trace_sample_per_64k);
        Self {
            core,
            config,
            machine,
            loc_subs: BTreeMap::new(),
            drain_queue: BTreeMap::new(),
            drain_armed: false,
            holding_since: Vec::new(),
            last_checkpoint_at: None,
            wal_appends_seen,
            wal_checkpoints_seen,
            recovery_note: None,
            retention,
            history_sessions: BTreeMap::new(),
            history_routes: BTreeMap::new(),
            next_history_tag: HISTORY_TIMER_BASE,
            history_tags: BTreeMap::new(),
            lease_sweep_armed: false,
            relocation_traces: BTreeMap::new(),
            trace_nonce: 0,
        }
    }

    /// Restarts a broker from its write-ahead handoff log: the machine and
    /// the mobility-relevant parts of the static broker (disconnected
    /// client records, their routing entries, sequence watermarks, buffered
    /// counterparts) are reconstructed exactly.  Returns the broker plus
    /// the timer tags of recovered relocation holdings; the caller must
    /// re-arm each with the configured relocation timeout.
    pub fn recover(
        id: NodeId,
        role: BrokerRole,
        broker_links: Vec<NodeId>,
        config: BrokerConfig,
        log: HandoffLog,
    ) -> (Self, Vec<u64>) {
        let mut core = BrokerCore::new(id, role, broker_links, config.strategy);
        let (mut machine, tags) =
            RelocationMachine::recover(config.relocation_timeout, log, &mut core);
        machine.set_scoped_flood(config.scoped_relocation);
        let recovery_note = Some(format!(
            "broker={id} generation={} wal_depth={} rearmed_holdings={}",
            machine.generation(),
            machine.log().depth(),
            tags.len()
        ));
        let wal_appends_seen = machine.log().appends_total();
        let wal_checkpoints_seen = machine.log().checkpoints_total();
        // Retention is in-memory per incarnation: a restarted broker comes
        // back with an empty store (the WAL covers counterpart streams, not
        // retained history — a documented scope bound).
        let retention = config.retention.clone().map(RetentionStore::new);
        core.set_record_published(retention.is_some());
        core.set_trace_sampling(config.trace_sample_per_64k);
        (
            Self {
                core,
                config,
                machine,
                loc_subs: BTreeMap::new(),
                drain_queue: BTreeMap::new(),
                drain_armed: false,
                holding_since: Vec::new(),
                last_checkpoint_at: None,
                wal_appends_seen,
                wal_checkpoints_seen,
                recovery_note,
                retention,
                history_sessions: BTreeMap::new(),
                history_routes: BTreeMap::new(),
                next_history_tag: HISTORY_TIMER_BASE,
                history_tags: BTreeMap::new(),
                lease_sweep_armed: false,
                relocation_traces: BTreeMap::new(),
                trace_nonce: 0,
            },
            tags,
        )
    }

    /// Read access to the wrapped static broker.
    pub fn core(&self) -> &BrokerCore {
        &self.core
    }

    /// The configuration the broker was created with.
    pub fn config(&self) -> &BrokerConfig {
        &self.config
    }

    /// Read access to the relocation engine.
    pub fn machine(&self) -> &RelocationMachine {
        &self.machine
    }

    /// Number of `(client, filter)` streams currently buffered by virtual
    /// counterparts at this broker.
    pub fn counterpart_count(&self) -> usize {
        self.machine.counterpart_count()
    }

    /// Total number of deliveries currently buffered by virtual counterparts.
    pub fn buffered_deliveries(&self) -> usize {
        self.machine.buffered_deliveries()
    }

    /// Number of relocations currently waiting for their replay at this
    /// broker.
    pub fn pending_relocations(&self) -> usize {
        self.machine.pending_relocations()
    }

    /// Number of live relocation-timeout guards (zero once every relocation
    /// has settled — guards of completed relocations are reclaimed, not
    /// leaked).
    pub fn timeout_tag_count(&self) -> usize {
        self.machine.timeout_tag_count()
    }

    /// The relocation phase of a stream at this broker.
    pub fn relocation_phase(&self, client: ClientId, filter: &Filter) -> RelocationPhase {
        self.machine.phase(client, filter)
    }

    /// Number of transit notifications currently queued for the next drain
    /// flush.
    pub fn drain_queue_len(&self) -> usize {
        self.drain_queue.values().map(Vec::len).sum()
    }

    /// Number of location-dependent subscriptions installed at this broker.
    pub fn loc_sub_count(&self) -> usize {
        self.loc_subs.len()
    }

    /// The currently installed filter for a location-dependent subscription,
    /// if this broker participates in it.
    pub fn loc_sub_filter(&self, sub_id: SubscriptionId) -> Option<&Filter> {
        self.loc_subs.get(&sub_id).map(|s| &s.current_filter)
    }

    /// The consumer location this broker last recorded for a
    /// location-dependent subscription.
    pub fn loc_sub_location(&self, sub_id: SubscriptionId) -> Option<LocationId> {
        self.loc_subs.get(&sub_id).map(|s| s.location)
    }

    /// Number of entries in the content-based routing table.
    pub fn routing_entries(&self) -> usize {
        self.core.engine().table_size()
    }

    /// Number of subscription subgroups (distinct filters) in the routing
    /// table; `routing_entries() / routing_subgroups()` is the table's
    /// compaction ratio.
    pub fn routing_subgroups(&self) -> usize {
        self.core.engine().subgroup_count()
    }

    /// When this broker last compacted its WAL (`None` until the first
    /// compaction of this incarnation).
    pub fn last_checkpoint_at(&self) -> Option<SimTime> {
        self.last_checkpoint_at
    }

    /// Read access to the retention store, when retention is configured.
    pub fn retention(&self) -> Option<&RetentionStore> {
        self.retention.as_ref()
    }

    /// Number of publications currently retained at this broker.
    pub fn retained_publications(&self) -> u64 {
        self.retention
            .as_ref()
            .map_or(0, RetentionStore::total_records)
    }

    /// Number of retention segments (archived + live) at this broker.
    pub fn retained_segments(&self) -> u64 {
        self.retention
            .as_ref()
            .map_or(0, RetentionStore::segment_count)
    }

    /// Timestamp (micros) of the oldest retained publication, if any.
    pub fn oldest_retained_ts(&self) -> Option<u64> {
        self.retention.as_ref().and_then(RetentionStore::oldest_ts)
    }

    /// Number of counterpart streams expired by the lease sweep over this
    /// broker incarnation's lifetime.
    pub fn expired_leases(&self) -> u64 {
        self.machine.leases_expired()
    }

    /// Number of history sessions currently gathering retained slices at
    /// this broker.
    pub fn open_history_sessions(&self) -> usize {
        self.history_sessions.len()
    }

    // ------------------------------------------------------------------
    // Observability
    // ------------------------------------------------------------------

    /// Starts the hand-off latency clock for a stream that entered a
    /// holding phase with this ReSubscribe, and journals the transition.
    fn note_resubscribed(
        &mut self,
        client: ClientId,
        filter: Filter,
        ctx: &mut Context<'_, Message>,
    ) {
        let phase = self.machine.phase(client, &filter);
        if !matches!(
            phase,
            RelocationPhase::Holding | RelocationPhase::AwaitingReplay
        ) {
            return;
        }
        let key = (client, filter);
        if !self.holding_since.iter().any(|(k, _)| *k == key) {
            if ctx.metrics().journal_enabled() {
                let now = ctx.now();
                let detail = format!("broker={} client={} phase={phase:?}", ctx.self_id(), key.0);
                ctx.metrics()
                    .record_event(now, "relocation.holding", detail);
            }
            let now = ctx.now();
            self.holding_since.push((key, now));
        }
    }

    /// Settles the hand-off latency clock for streams that left their
    /// holding phase: records the hold duration into the
    /// [`HANDOFF_LATENCY_HISTOGRAM`] and journals the transition under
    /// `kind`.
    ///
    /// `only` scopes the phase re-check to one client's streams — the
    /// per-replay path passes the replayed client so thousands of
    /// concurrent relocations do not turn each settle into a full
    /// phase-probe sweep of every held stream (`phase` walks the machine's
    /// relocation map with a filter comparison; the guard below is an
    /// integer compare).  `None` sweeps everything, for the timeout-flush
    /// path where the machine may have flushed arbitrary streams.
    fn note_settled(
        &mut self,
        ctx: &mut Context<'_, Message>,
        kind: &'static str,
        only: Option<ClientId>,
    ) {
        if self.holding_since.is_empty() {
            return;
        }
        let now = ctx.now();
        let mut settled = Vec::new();
        self.holding_since.retain(|(key, since)| {
            if only.is_some_and(|c| c != key.0) {
                return true;
            }
            let phase = self.machine.phase(key.0, &key.1);
            if matches!(
                phase,
                RelocationPhase::Holding | RelocationPhase::AwaitingReplay
            ) {
                true
            } else {
                settled.push((key.clone(), *since));
                false
            }
        });
        for (key, since) in settled {
            let client = key.0;
            let latency = now.since(since).as_micros();
            ctx.metrics().observe(HANDOFF_LATENCY_HISTOGRAM, latency);
            if ctx.metrics().journal_enabled() {
                let detail = format!(
                    "broker={} client={client} latency_micros={latency}",
                    ctx.self_id()
                );
                ctx.metrics().record_event(now, kind, detail);
            }
            // The hold span covers the buffering window at this (new
            // border) broker, nested under its own resubscribe span.
            if let Some(trace_id) = self.relocation_traces.remove(&key) {
                if ctx.metrics().span_enabled() {
                    let me = ctx.self_id().index() as u64;
                    Self::record_span(
                        ctx,
                        trace_id,
                        rebeca_obs::phase_span_id(trace_id, me, "hold"),
                        rebeca_obs::phase_span_id(trace_id, me, "relocation.resubscribe"),
                        "hold",
                        format!("client={client} latency_micros={latency}"),
                        since.as_micros(),
                    );
                }
            }
        }
    }

    /// Diffs the WAL's lifetime counters against the last observation and
    /// journals `wal.append` / `wal.checkpoint` / `wal.recovered` events.
    /// Called once per handled event: the steady-state cost is two integer
    /// compares, so the notification hot path stays flat.
    fn note_wal(&mut self, ctx: &mut Context<'_, Message>) {
        if let Some(note) = self.recovery_note.take() {
            ctx.metrics().incr("wal.recoveries");
            let now = ctx.now();
            ctx.metrics().record_event(now, "wal.recovered", note);
        }
        let appends = self.machine.log().appends_total();
        if appends != self.wal_appends_seen {
            let grew = appends - self.wal_appends_seen;
            self.wal_appends_seen = appends;
            ctx.metrics().add("wal.appends", grew);
            if ctx.metrics().journal_enabled() {
                let now = ctx.now();
                let detail = format!(
                    "broker={} records={grew} depth={}",
                    ctx.self_id(),
                    self.machine.log().depth()
                );
                ctx.metrics().record_event(now, "wal.append", detail);
            }
        }
        let checkpoints = self.machine.log().checkpoints_total();
        if checkpoints != self.wal_checkpoints_seen {
            let grew = checkpoints - self.wal_checkpoints_seen;
            self.wal_checkpoints_seen = checkpoints;
            self.last_checkpoint_at = Some(ctx.now());
            ctx.metrics().add("wal.checkpoints", grew);
            if ctx.metrics().journal_enabled() {
                let now = ctx.now();
                let detail = format!(
                    "broker={} depth={}",
                    ctx.self_id(),
                    self.machine.log().depth()
                );
                ctx.metrics().record_event(now, "wal.checkpoint", detail);
            }
        }
    }

    /// Journals a relocation-protocol control message (old-broker side of
    /// the hand-off: Relocate repoints routing, Fetch starts the replay).
    fn note_control(
        &mut self,
        kind: &'static str,
        client: ClientId,
        ctx: &mut Context<'_, Message>,
    ) {
        if ctx.metrics().journal_enabled() {
            let now = ctx.now();
            let detail = format!("broker={} client={client}", ctx.self_id());
            ctx.metrics().record_event(now, kind, detail);
        }
    }

    // ------------------------------------------------------------------
    // Distributed tracing (relocation-phase and replay/merge spans)
    // ------------------------------------------------------------------

    /// Records one finished span into the metrics span buffer.
    fn record_span(
        ctx: &mut Context<'_, Message>,
        trace_id: u64,
        span_id: u64,
        parent_span: u64,
        kind: &str,
        detail: String,
        start_micros: u64,
    ) {
        let end_micros = ctx.now().as_micros();
        let broker = ctx.self_id().index() as u64;
        ctx.metrics().record_span(SpanRecord {
            seq: 0,
            trace_id,
            span_id,
            parent_span,
            broker,
            kind: kind.to_string(),
            start_micros,
            end_micros,
            detail,
        });
    }

    /// Derives the trace id of a sampled relocation from the fields every
    /// `last_seq`-carrying protocol message repeats.
    fn sample_relocation(&self, client: ClientId, last_seq: u64) -> Option<u64> {
        rebeca_obs::sample_relocation(
            u64::from(client.raw()),
            last_seq,
            self.core.trace_sampling(),
        )
    }

    /// Records a relocation-phase span whose id is a pure function of
    /// `(trace_id, broker, phase)` — the broker handling the *next*
    /// protocol message derives its causal parent the same way, so the
    /// control messages carry no trace fields on the wire.
    fn note_phase(
        &mut self,
        ctx: &mut Context<'_, Message>,
        trace_id: u64,
        phase: &'static str,
        parent_span: u64,
        client: ClientId,
    ) {
        if !ctx.metrics().span_enabled() {
            return;
        }
        let span_id = rebeca_obs::phase_span_id(trace_id, ctx.self_id().index() as u64, phase);
        let now = ctx.now().as_micros();
        Self::record_span(
            ctx,
            trace_id,
            span_id,
            parent_span,
            phase,
            format!("client={client}"),
            now,
        );
    }

    /// A span id minted at this layer (high bit keeps it disjoint from the
    /// wrapped core's nonce space).
    fn next_trace_nonce(&mut self) -> u64 {
        let nonce = self.trace_nonce;
        self.trace_nonce += 1;
        nonce | (1 << 63)
    }

    /// Stitches publication traces back together after a relocation
    /// replay: deliveries that ride a [`Message::Replay`] were parked in a
    /// counterpart at the old broker, so the static core never recorded
    /// their delivery.  Each sampled envelope in the merged output gets a
    /// `replay` span (spanning the hold, parented on the envelope's
    /// recorded routing hop) and a `deliver` child.
    fn stitch_replayed(
        &mut self,
        out: &[(NodeId, Message)],
        hold_start_micros: Option<u64>,
        ctx: &mut Context<'_, Message>,
    ) {
        if !ctx.metrics().span_enabled() {
            return;
        }
        let now = ctx.now().as_micros();
        let broker = ctx.self_id().index() as u64;
        let mut sampled = Vec::new();
        for (_, message) in out {
            match message {
                Message::Deliver(d) => sampled.extend(
                    d.envelope
                        .trace
                        .filter(|t| t.sampled)
                        .map(|t| (t, d.subscriber, d.seq)),
                ),
                Message::DeliverBatch(batch) => {
                    for d in batch {
                        sampled.extend(
                            d.envelope
                                .trace
                                .filter(|t| t.sampled)
                                .map(|t| (t, d.subscriber, d.seq)),
                        );
                    }
                }
                _ => {}
            }
        }
        for (trace, subscriber, seq) in sampled {
            let replay_span = rebeca_obs::span_id(trace.trace_id, broker, self.next_trace_nonce());
            Self::record_span(
                ctx,
                trace.trace_id,
                replay_span,
                trace.parent_span,
                "replay",
                format!("client={subscriber} seq={seq}"),
                hold_start_micros.unwrap_or(now),
            );
            let deliver_span = rebeca_obs::span_id(trace.trace_id, broker, self.next_trace_nonce());
            Self::record_span(
                ctx,
                trace.trace_id,
                deliver_span,
                replay_span,
                "deliver",
                format!("client={subscriber} seq={seq}"),
                now,
            );
        }
    }

    // ------------------------------------------------------------------
    // Shared helpers
    // ------------------------------------------------------------------

    /// Runs a static-broker handler and applies the mobility
    /// post-processing (holding interception and counterpart absorption).
    fn run_core(
        &mut self,
        from: NodeId,
        message: Message,
        now_micros: u64,
    ) -> Vec<(NodeId, Message)> {
        let out = match self.core.handle_message(from, message) {
            Ok(out) => out,
            Err(unhandled) => {
                unreachable!("static broker rejected a non-mobility message: {unhandled:?}")
            }
        };
        let out = self.machine.intercept_holding(out);
        self.machine.absorb_parked(&mut self.core, now_micros);
        out
    }

    /// Moves publications the static broker recorded from local publishers
    /// into the retention store and expires aged-out segments.  Called once
    /// per handled event; a no-op without retention.
    fn absorb_published(&mut self, ctx: &mut Context<'_, Message>) {
        let Some(store) = self.retention.as_mut() else {
            return;
        };
        let now = ctx.now().as_micros();
        let published = self.core.take_published();
        if !published.is_empty() {
            ctx.metrics().add("retain.appended", published.len() as u64);
            for envelope in published {
                store.append(now, envelope);
            }
        }
        store.expire(now);
    }

    /// Interprets machine effects against the simulation context, collecting
    /// outgoing messages.
    fn apply_effects(
        &mut self,
        effects: Vec<Effect>,
        ctx: &mut Context<'_, Message>,
        out: &mut Vec<(NodeId, Message)>,
    ) {
        for effect in effects {
            match effect {
                Effect::Send(to, message) => out.push((to, message)),
                Effect::SetTimer(delay, tag) => ctx.set_timer(delay, tag),
                Effect::Incr(name) => ctx.metrics().incr(name),
                Effect::Add(name, amount) => ctx.metrics().add(name, amount),
            }
        }
    }

    // ------------------------------------------------------------------
    // Batch draining
    // ------------------------------------------------------------------

    /// Queues transit envelopes for the next drain flush, arming the flush
    /// timer when the queue was empty.
    fn enqueue_for_drain(
        &mut self,
        from: NodeId,
        envelopes: Vec<Envelope>,
        interval: SimDuration,
        ctx: &mut Context<'_, Message>,
    ) {
        ctx.metrics()
            .add("broker.drain_queued", envelopes.len() as u64);
        self.drain_queue.entry(from).or_default().extend(envelopes);
        if !self.drain_armed {
            self.drain_armed = true;
            ctx.set_timer(interval, DRAIN_TIMER_TAG);
        }
    }

    /// Flushes the coalescing queue through the batch matching path: one
    /// `route_envelope_batch` call per arrival link, survivors re-grouped
    /// into per-link [`Message::NotificationBatch`]es by the engine.
    fn drain_queued(&mut self, ctx: &mut Context<'_, Message>) -> Vec<(NodeId, Message)> {
        self.drain_armed = false;
        let queues = std::mem::take(&mut self.drain_queue);
        let mut out = Vec::new();
        let now = ctx.now().as_micros();
        for (from, envelopes) in queues {
            ctx.metrics().add("broker.drained", envelopes.len() as u64);
            let routed = self.core.route_envelope_batch(envelopes, Some(from));
            let routed = self.machine.intercept_holding(routed);
            self.machine.absorb_parked(&mut self.core, now);
            out.extend(routed);
        }
        ctx.metrics().incr("broker.drain_flush");
        out
    }

    /// Flushes the drain queue ahead of a mobility control message.
    ///
    /// The relocation protocol relies on per-link FIFO order between
    /// notifications and the control messages that chase them (a
    /// notification forwarded before a `Relocate`/`Fetch` must reach the
    /// old border broker before it, so it lands in the counterpart and not
    /// in the void after garbage collection).  Coalescing would let control
    /// messages overtake queued notifications, so the queue is flushed —
    /// and the flushed messages emitted — *before* the control message is
    /// handled, restoring the FIFO relationship.
    fn flush_drain_for_control(
        &mut self,
        ctx: &mut Context<'_, Message>,
    ) -> Vec<(NodeId, Message)> {
        if self.drain_queue.is_empty() {
            return Vec::new();
        }
        ctx.metrics().incr("broker.drain_control_flush");
        self.drain_queued(ctx)
    }

    // ------------------------------------------------------------------
    // Logical mobility (Section 5)
    // ------------------------------------------------------------------

    /// Installs (or refreshes) the filter of a location-dependent
    /// subscription at this hop and returns the old filter, if any.
    fn install_loc_filter(&mut self, sub_id: SubscriptionId, state: LocSubState) -> Option<Filter> {
        let previous = self.loc_subs.insert(sub_id, state.clone());
        let towards = state.towards_consumer;
        if let Some(prev) = &previous {
            self.core
                .engine_mut()
                .table_mut()
                .remove(&prev.current_filter, &prev.towards_consumer);
            if let Some(client) = self.core.client_by_node(prev.towards_consumer) {
                if let Some(record) = self.core.client_mut(client) {
                    record.subscriptions.retain(|f| f != &prev.current_filter);
                }
            }
        }
        self.core
            .engine_mut()
            .table_mut()
            .insert(state.current_filter.clone(), towards);
        if let Some(client) = self.core.client_by_node(towards) {
            if let Some(record) = self.core.client_mut(client) {
                if !record.subscriptions.contains(&state.current_filter) {
                    record.subscriptions.push(state.current_filter.clone());
                }
            }
        }
        previous.map(|p| p.current_filter)
    }

    /// Handles a location-dependent subscription entering or travelling
    /// through the network.
    #[allow(clippy::too_many_arguments)] // mirrors the LocSubscribe message fields
    fn handle_loc_subscribe(
        &mut self,
        sub_id: SubscriptionId,
        template: LocationDependentFilter,
        plan: AdaptivityPlan,
        location: LocationId,
        hop: usize,
        from: NodeId,
        ctx: &mut Context<'_, Message>,
    ) -> Vec<(NodeId, Message)> {
        // If the subscription comes directly from a local client, make sure
        // the client is attached.
        if self.core.client_by_node(from).is_none() && !self.core.broker_links().contains(&from) {
            self.core.handle_attach(sub_id.client, from);
        }

        let q = plan.step_at(hop);
        let locations = self
            .config
            .movement_graph
            .ploc(location, q)
            .into_iter()
            .map(|l| l.raw());
        let current_filter = template.instantiate(locations);
        self.install_loc_filter(
            sub_id,
            LocSubState {
                towards_consumer: from,
                hop,
                template: template.clone(),
                plan: plan.clone(),
                location,
                current_filter,
            },
        );
        ctx.metrics().incr("logical.subscription_installed");

        self.core
            .broker_links_except(from)
            .into_iter()
            .map(|link| {
                ctx.metrics().incr("logical.subscribe_forwarded");
                (
                    link,
                    Message::LocSubscribe {
                        sub_id,
                        template: template.clone(),
                        plan: plan.clone(),
                        location,
                        hop: hop + 1,
                    },
                )
            })
            .collect()
    }

    /// Handles the retraction of a location-dependent subscription.
    fn handle_loc_unsubscribe(
        &mut self,
        sub_id: SubscriptionId,
        from: NodeId,
    ) -> Vec<(NodeId, Message)> {
        if let Some(state) = self.loc_subs.remove(&sub_id) {
            self.core
                .engine_mut()
                .table_mut()
                .remove(&state.current_filter, &state.towards_consumer);
            if let Some(client) = self.core.client_by_node(state.towards_consumer) {
                if let Some(record) = self.core.client_mut(client) {
                    record.subscriptions.retain(|f| f != &state.current_filter);
                }
            }
        }
        self.core
            .broker_links_except(from)
            .into_iter()
            .map(|link| (link, Message::LocUnsubscribe { sub_id }))
            .collect()
    }

    /// Handles a location update travelling along the delivery paths: the
    /// broker swaps its instantiated filter (unsubscribing vanished
    /// locations, subscribing new ones) and forwards the update.
    fn handle_location_update(
        &mut self,
        sub_id: SubscriptionId,
        location: LocationId,
        hop: usize,
        from: NodeId,
        ctx: &mut Context<'_, Message>,
    ) -> Vec<(NodeId, Message)> {
        let Some(state) = self.loc_subs.get(&sub_id).cloned() else {
            // Not participating in this subscription (e.g. the update reached
            // a broker the subscription never covered): nothing to do.
            return Vec::new();
        };
        let q = state.plan.step_at(state.hop);
        let locations = self
            .config
            .movement_graph
            .ploc(location, q)
            .into_iter()
            .map(|l| l.raw());
        let new_filter = state.template.instantiate(locations);
        let unchanged = new_filter == state.current_filter;
        self.install_loc_filter(
            sub_id,
            LocSubState {
                location,
                current_filter: new_filter,
                ..state
            },
        );
        if unchanged {
            ctx.metrics().incr("logical.update_noop");
        } else {
            ctx.metrics().incr("logical.filter_swapped");
        }

        self.core
            .broker_links_except(from)
            .into_iter()
            .map(|link| {
                ctx.metrics().incr("logical.update_forwarded");
                (
                    link,
                    Message::LocationUpdate {
                        sub_id,
                        location,
                        hop: hop + 1,
                    },
                )
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Time-aware subscriptions: retained-history replay
    // ------------------------------------------------------------------

    /// The broker's local retained slice for a history window, as
    /// `(ts_micros, envelope)` pairs.
    fn retained_slice(&self, since_micros: u64, filter: &Filter) -> Vec<(u64, Envelope)> {
        self.retention
            .as_ref()
            .map(|store| {
                store
                    .fetch_since(since_micros, filter)
                    .into_iter()
                    .map(|p| (p.ts_micros, p.envelope))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Handles a time-aware subscription at the client's border broker:
    /// installs the live subscription, opens a history session seeded with
    /// the local retained slice, floods a [`Message::HistoryFetch`] over
    /// the broker links and arms the gather timeout.  With no broker links
    /// (single-broker deployment) the session closes — and the merged
    /// batch ships — immediately.
    fn handle_subscribe_since(
        &mut self,
        client: ClientId,
        filter: Filter,
        since_micros: u64,
        last_seq: u64,
        from: NodeId,
        ctx: &mut Context<'_, Message>,
    ) -> Vec<(NodeId, Message)> {
        if self.core.client_by_node(from).is_none() && !self.core.broker_links().contains(&from) {
            self.core.handle_attach(client, from);
        }
        let now = ctx.now().as_micros();
        let mut out = self.run_core(
            from,
            Message::Subscribe {
                subscriber: client,
                filter: filter.clone(),
            },
            now,
        );

        let entries = self.retained_slice(since_micros, &filter);
        let tag = self.next_history_tag;
        self.next_history_tag += 1;
        let key = (client, filter.clone());
        self.history_tags.insert(tag, key.clone());
        self.history_sessions.insert(
            key,
            HistorySession {
                client_node: from,
                since_micros,
                last_seq,
                entries,
                held: Vec::new(),
            },
        );
        ctx.metrics().incr("retain.history_session_opened");

        let links = self.core.broker_links_except(from);
        if links.is_empty() {
            out.extend(self.close_history_session(tag, ctx));
        } else {
            let origin = ctx.self_id();
            for link in links {
                out.push((
                    link,
                    Message::HistoryFetch {
                        client,
                        filter: filter.clone(),
                        since_micros,
                        origin,
                    },
                ));
            }
            ctx.set_timer(self.config.relocation_timeout, tag);
        }
        out
    }

    /// Handles a history fetch travelling through the network: records the
    /// reverse-path pointer, replies with the local retained slice (when
    /// non-empty) and forwards the fetch over the remaining broker links.
    fn handle_history_fetch(
        &mut self,
        client: ClientId,
        filter: Filter,
        since_micros: u64,
        origin: NodeId,
        from: NodeId,
        ctx: &mut Context<'_, Message>,
    ) -> Vec<(NodeId, Message)> {
        self.history_routes.insert((client, filter.clone()), from);
        let mut out = Vec::new();
        let entries = self.retained_slice(since_micros, &filter);
        if !entries.is_empty() {
            ctx.metrics().add("retain.replayed", entries.len() as u64);
            out.push((
                from,
                Message::HistoryReplay {
                    client,
                    filter: filter.clone(),
                    entries,
                },
            ));
        }
        for link in self.core.broker_links_except(from) {
            out.push((
                link,
                Message::HistoryFetch {
                    client,
                    filter: filter.clone(),
                    since_micros,
                    origin,
                },
            ));
        }
        out
    }

    /// Handles a history replay: absorbed into the open session at the
    /// border broker, forwarded along the recorded reverse path elsewhere.
    /// A replay arriving after its session closed is dropped (counted) —
    /// the gather timeout is the completeness bound, exactly like the
    /// relocation holding timeout.
    fn handle_history_replay(
        &mut self,
        client: ClientId,
        filter: Filter,
        entries: Vec<(u64, Envelope)>,
        ctx: &mut Context<'_, Message>,
    ) -> Vec<(NodeId, Message)> {
        let key = (client, filter.clone());
        if let Some(session) = self.history_sessions.get_mut(&key) {
            ctx.metrics()
                .add("retain.replay_absorbed", entries.len() as u64);
            session.entries.extend(entries);
            Vec::new()
        } else if let Some(&next) = self.history_routes.get(&key) {
            vec![(
                next,
                Message::HistoryReplay {
                    client,
                    filter,
                    entries,
                },
            )]
        } else {
            ctx.metrics().incr("retain.replay_dropped");
            Vec::new()
        }
    }

    /// Closes a history session: filters the gathered entries to the
    /// requested window, orders them by `(ts, publisher, publisher_seq)`,
    /// de-duplicates against themselves and the held live deliveries by
    /// publication identity, assigns delivery sequence numbers continuing
    /// the client's `last_seq`, and ships everything as one batch.
    fn close_history_session(
        &mut self,
        tag: u64,
        ctx: &mut Context<'_, Message>,
    ) -> Vec<(NodeId, Message)> {
        let Some(key) = self.history_tags.remove(&tag) else {
            return Vec::new();
        };
        let Some(session) = self.history_sessions.remove(&key) else {
            return Vec::new();
        };
        let (client, filter) = key;

        let mut entries = session.entries;
        entries.retain(|(ts, e)| *ts >= session.since_micros && filter.matches(&e.notification));
        entries.sort_by(|a, b| {
            (a.0, a.1.publisher, a.1.publisher_seq).cmp(&(b.0, b.1.publisher, b.1.publisher_seq))
        });
        let mut seen = BTreeSet::new();
        entries.retain(|(_, e)| seen.insert((e.publisher, e.publisher_seq)));

        let mut next_seq = session.last_seq + 1;
        let mut deliveries = Vec::new();
        for (_, envelope) in entries {
            deliveries.push(Delivery {
                subscriber: client,
                filter: filter.clone(),
                seq: next_seq,
                envelope,
            });
            next_seq += 1;
        }
        // Held live deliveries already present in the history (the
        // publication was both retained and routed live) are suppressed;
        // the rest follow the history in arrival order.
        for envelope in session.held {
            if seen.insert((envelope.publisher, envelope.publisher_seq)) {
                deliveries.push(Delivery {
                    subscriber: client,
                    filter: filter.clone(),
                    seq: next_seq,
                    envelope,
                });
                next_seq += 1;
            }
        }
        // Future live deliveries continue after the merged batch.  (The
        // registry may already sit past `next_seq` from the intercepted
        // deliveries; the resulting gap in broker sequence numbers is
        // harmless — delivery QoS is checked on publication identity.)
        self.core
            .sequences_mut()
            .fast_forward(client, &filter, next_seq);

        // Sampled publications that reach the client through the merged
        // batch mark the merge point in their trace: the `history.merge`
        // span hangs off whatever hop the envelope last recorded (a route
        // span for live-held traffic, the publish span for retained
        // history served at the origin broker).
        if ctx.metrics().span_enabled() {
            let now = ctx.now().as_micros();
            let broker = ctx.self_id().index() as u64;
            let spans: Vec<_> = deliveries
                .iter()
                .filter_map(|d| {
                    d.envelope
                        .trace
                        .filter(|t| t.sampled)
                        .map(|t| (t, d.seq, self.next_trace_nonce()))
                })
                .collect();
            for (trace, seq, nonce) in spans {
                Self::record_span(
                    ctx,
                    trace.trace_id,
                    rebeca_obs::span_id(trace.trace_id, broker, nonce),
                    trace.parent_span,
                    "history.merge",
                    format!("client={client} seq={seq}"),
                    now,
                );
            }
        }

        ctx.metrics()
            .add("retain.history_delivered", deliveries.len() as u64);
        ctx.metrics().incr("retain.history_session_closed");
        match deliveries.len() {
            0 => Vec::new(),
            1 => vec![(
                session.client_node,
                Message::Deliver(deliveries.into_iter().next().expect("len checked")),
            )],
            _ => vec![(session.client_node, Message::DeliverBatch(deliveries))],
        }
    }

    /// Diverts deliveries addressed to streams with an open history session
    /// into that session's hold buffer, passing everything else through.
    fn intercept_history(
        &mut self,
        out: Vec<(NodeId, Message)>,
        ctx: &mut Context<'_, Message>,
    ) -> Vec<(NodeId, Message)> {
        let mut kept = Vec::new();
        let mut held = 0u64;
        for (to, message) in out {
            match message {
                Message::Deliver(d) => {
                    let key = (d.subscriber, d.filter);
                    if let Some(session) = self.history_sessions.get_mut(&key) {
                        session.held.push(d.envelope);
                        held += 1;
                    } else {
                        kept.push((
                            to,
                            Message::Deliver(Delivery {
                                subscriber: key.0,
                                filter: key.1,
                                seq: d.seq,
                                envelope: d.envelope,
                            }),
                        ));
                    }
                }
                Message::DeliverBatch(batch) => {
                    let mut pass = Vec::new();
                    for d in batch {
                        let key = (d.subscriber, d.filter.clone());
                        if let Some(session) = self.history_sessions.get_mut(&key) {
                            session.held.push(d.envelope);
                            held += 1;
                        } else {
                            pass.push(d);
                        }
                    }
                    match pass.len() {
                        0 => {}
                        1 => kept.push((
                            to,
                            Message::Deliver(pass.into_iter().next().expect("len checked")),
                        )),
                        _ => kept.push((to, Message::DeliverBatch(pass))),
                    }
                }
                other => kept.push((to, other)),
            }
        }
        if held > 0 {
            ctx.metrics().add("retain.history_held", held);
        }
        kept
    }

    // ------------------------------------------------------------------
    // Counterpart lease sweep
    // ------------------------------------------------------------------

    /// Arms the periodic lease-sweep timer when a lease is configured and
    /// no sweep is pending.
    fn arm_lease_sweep(&mut self, ctx: &mut Context<'_, Message>) {
        if self.lease_sweep_armed {
            return;
        }
        if let Some(lease) = self.config.counterpart_lease {
            self.lease_sweep_armed = true;
            ctx.set_timer(lease, LEASE_SWEEP_TIMER_TAG);
        }
    }

    /// Runs one lease sweep: expires counterparts whose client never
    /// reattached within the lease, then re-arms while counterparts remain.
    fn sweep_leases(&mut self, ctx: &mut Context<'_, Message>) -> Vec<(NodeId, Message)> {
        self.lease_sweep_armed = false;
        let Some(lease) = self.config.counterpart_lease else {
            return Vec::new();
        };
        let now = ctx.now().as_micros();
        let effects = self
            .machine
            .expire_leases(&mut self.core, now, lease.as_micros());
        let mut out = Vec::new();
        self.apply_effects(effects, ctx, &mut out);
        if self.machine.counterpart_count() > 0 {
            self.arm_lease_sweep(ctx);
        }
        out
    }
}

impl Node for MobileBroker {
    type Message = Message;

    fn handle(&mut self, ctx: &mut Context<'_, Message>, event: Incoming<Message>) {
        let mut out = Vec::new();
        match event {
            Incoming::Timer {
                tag: DRAIN_TIMER_TAG,
            } => {
                out = self.drain_queued(ctx);
            }
            Incoming::Timer {
                tag: LEASE_SWEEP_TIMER_TAG,
            } => {
                out = self.sweep_leases(ctx);
            }
            Incoming::Timer { tag } if tag >= HISTORY_TIMER_BASE => {
                out = self.close_history_session(tag, ctx);
            }
            Incoming::Timer { tag } => {
                let effects = self.machine.on_timeout(&mut self.core, tag);
                self.apply_effects(effects, ctx, &mut out);
                // A fired timeout may have flushed held streams without a
                // replay — settle their latency clocks under the flush kind.
                self.note_settled(ctx, "relocation.timeout_flush", None);
            }
            Incoming::Message { from, message } => {
                ctx.metrics().incr(message.rx_counter());
                match message {
                    Message::ReSubscribe {
                        client,
                        filter,
                        last_seq,
                    } => {
                        out = self.flush_drain_for_control(ctx);
                        let effects = self.machine.on_resubscribe(
                            &mut self.core,
                            client,
                            filter.clone(),
                            last_seq,
                            from,
                        );
                        self.apply_effects(effects, ctx, &mut out);
                        if let Some(trace_id) = self.sample_relocation(client, last_seq) {
                            self.relocation_traces
                                .insert((client, filter.clone()), trace_id);
                            // The new border broker roots the relocation trace.
                            self.note_phase(ctx, trace_id, "relocation.resubscribe", 0, client);
                        }
                        self.note_resubscribed(client, filter, ctx);
                    }
                    Message::Relocate {
                        client,
                        filter,
                        last_seq,
                        new_broker,
                    } => {
                        out = self.flush_drain_for_control(ctx);
                        let trace_id = self.sample_relocation(client, last_seq);
                        if let Some(trace_id) = trace_id {
                            self.relocation_traces
                                .insert((client, filter.clone()), trace_id);
                        }
                        let effects = self.machine.on_relocate(
                            &mut self.core,
                            client,
                            filter,
                            last_seq,
                            new_broker,
                            from,
                        );
                        self.apply_effects(effects, ctx, &mut out);
                        if let Some(trace_id) = trace_id {
                            // Sent by the new border broker directly, or
                            // forwarded by a broker that handled it first.
                            let parent_phase = if from == new_broker {
                                "relocation.resubscribe"
                            } else {
                                "relocation.relocate"
                            };
                            let parent = rebeca_obs::phase_span_id(
                                trace_id,
                                from.index() as u64,
                                parent_phase,
                            );
                            self.note_phase(ctx, trace_id, "relocation.relocate", parent, client);
                        }
                        self.note_control("relocation.relocate", client, ctx);
                    }
                    Message::Fetch {
                        client,
                        filter,
                        last_seq,
                        junction,
                    } => {
                        out = self.flush_drain_for_control(ctx);
                        let trace_id = self.sample_relocation(client, last_seq);
                        if let Some(trace_id) = trace_id {
                            self.relocation_traces
                                .insert((client, filter.clone()), trace_id);
                        }
                        let effects = self.machine.on_fetch(
                            &mut self.core,
                            client,
                            filter,
                            last_seq,
                            junction,
                            from,
                        );
                        self.apply_effects(effects, ctx, &mut out);
                        if let Some(trace_id) = trace_id {
                            // The junction converts Relocate into Fetch;
                            // downstream brokers forward the Fetch.
                            let parent_phase = if from == junction {
                                "relocation.relocate"
                            } else {
                                "relocation.fetch"
                            };
                            let parent = rebeca_obs::phase_span_id(
                                trace_id,
                                from.index() as u64,
                                parent_phase,
                            );
                            self.note_phase(ctx, trace_id, "relocation.fetch", parent, client);
                            // If this broker answered with the counterpart's
                            // replay, that emission is causally under the
                            // fetch that triggered it.
                            let replied = out.iter().any(|(_, m)| {
                                matches!(m, Message::Replay { client: c, .. } if *c == client)
                            });
                            if replied {
                                let me = ctx.self_id().index() as u64;
                                let parent =
                                    rebeca_obs::phase_span_id(trace_id, me, "relocation.fetch");
                                self.note_phase(ctx, trace_id, "relocation.replay", parent, client);
                            }
                        }
                        self.note_control("relocation.fetch", client, ctx);
                    }
                    Message::Replay {
                        client,
                        filter,
                        deliveries,
                    } => {
                        out = self.flush_drain_for_control(ctx);
                        let key = (client, filter.clone());
                        let trace_id = self.relocation_traces.get(&key).copied();
                        let hold_start = self
                            .holding_since
                            .iter()
                            .find(|(k, _)| *k == key)
                            .map(|(_, since)| since.as_micros());
                        let effects = self.machine.on_replay(
                            &mut self.core,
                            client,
                            filter,
                            deliveries,
                            from,
                        );
                        self.apply_effects(effects, ctx, &mut out);
                        if let Some(trace_id) = trace_id {
                            let parent = rebeca_obs::phase_span_id(
                                trace_id,
                                from.index() as u64,
                                "relocation.replay",
                            );
                            let forwarded = out.iter().any(|(_, m)| {
                                matches!(m, Message::Replay { client: c, .. } if *c == client)
                            });
                            if forwarded {
                                // A relay hop towards the new border broker.
                                self.note_phase(ctx, trace_id, "relocation.replay", parent, client);
                                self.relocation_traces.remove(&key);
                            } else {
                                self.note_phase(
                                    ctx,
                                    trace_id,
                                    "relocation.settled",
                                    parent,
                                    client,
                                );
                            }
                        }
                        // Sampled publications that were parked at the old
                        // broker get their replay/deliver spans now.
                        self.stitch_replayed(&out, hold_start, ctx);
                        // The replay settles the holding phase; record the
                        // hand-off latency.
                        self.note_settled(ctx, "relocation.settled", Some(client));
                    }
                    Message::Detach { client } => {
                        // Queued notifications arrived before the detach:
                        // deliver them first, then let the static broker
                        // mark the client disconnected and the machine open
                        // durable counterparts for what is left behind.
                        out = self.flush_drain_for_control(ctx);
                        let now = ctx.now().as_micros();
                        out.extend(self.run_core(from, Message::Detach { client }, now));
                        self.machine.on_detach(&self.core, client, now);
                        self.note_control("relocation.detach", client, ctx);
                    }
                    Message::SubscribeSince {
                        subscriber,
                        filter,
                        since_micros,
                        last_seq,
                    } => {
                        out = self.flush_drain_for_control(ctx);
                        out.extend(self.handle_subscribe_since(
                            subscriber,
                            filter,
                            since_micros,
                            last_seq,
                            from,
                            ctx,
                        ));
                    }
                    Message::HistoryFetch {
                        client,
                        filter,
                        since_micros,
                        origin,
                    } => {
                        out = self.flush_drain_for_control(ctx);
                        out.extend(self.handle_history_fetch(
                            client,
                            filter,
                            since_micros,
                            origin,
                            from,
                            ctx,
                        ));
                    }
                    Message::HistoryReplay {
                        client,
                        filter,
                        entries,
                    } => {
                        out = self.flush_drain_for_control(ctx);
                        out.extend(self.handle_history_replay(client, filter, entries, ctx));
                    }
                    Message::Notification(envelope) if self.config.drain_interval.is_some() => {
                        let interval = self.config.drain_interval.expect("checked above");
                        self.enqueue_for_drain(from, vec![envelope], interval, ctx);
                    }
                    Message::NotificationBatch(envelopes)
                        if self.config.drain_interval.is_some() =>
                    {
                        let interval = self.config.drain_interval.expect("checked above");
                        self.enqueue_for_drain(from, envelopes, interval, ctx);
                    }
                    Message::LocSubscribe {
                        sub_id,
                        template,
                        plan,
                        location,
                        hop,
                    } => {
                        out = self
                            .handle_loc_subscribe(sub_id, template, plan, location, hop, from, ctx);
                    }
                    Message::LocUnsubscribe { sub_id } => {
                        out = self.handle_loc_unsubscribe(sub_id, from);
                    }
                    Message::LocationUpdate {
                        sub_id,
                        location,
                        hop,
                    } => {
                        out = self.handle_location_update(sub_id, location, hop, from, ctx);
                    }
                    other => {
                        let now = ctx.now().as_micros();
                        out = self.run_core(from, other, now);
                    }
                }
            }
        }
        if !self.history_sessions.is_empty() {
            out = self.intercept_history(out, ctx);
        }
        self.absorb_published(ctx);
        if self.machine.counterpart_count() > 0 {
            self.arm_lease_sweep(ctx);
        }
        self.note_wal(ctx);
        // Stamp and flush the span drafts the static core accumulated
        // while handling this event.  With tracing off this takes an empty
        // Vec — no allocation, no iteration.
        let drafts = self.core.take_trace_spans();
        if !drafts.is_empty() {
            let now = ctx.now().as_micros();
            let broker = ctx.self_id().index() as u64;
            for draft in drafts {
                ctx.metrics().record_span(SpanRecord {
                    seq: 0,
                    trace_id: draft.trace_id,
                    span_id: draft.span_id,
                    parent_span: draft.parent_span,
                    broker,
                    kind: draft.kind.to_string(),
                    start_micros: now,
                    end_micros: now,
                    detail: draft.detail,
                });
            }
        }
        for (to, message) in out {
            ctx.metrics().incr(message.tx_counter());
            ctx.send(to, message);
        }
    }
}
