//! Regenerates Table 1 of the paper: `ploc(x, t)` for the Figure 7 movement
//! graph.
fn main() {
    print!("{}", rebeca_bench::tables::table1().render());
}
