//! `rebeca-node`: one broker process of a TCP deployment.
//!
//! ```text
//! rebeca-node --config cluster.cfg --broker 1 [--run-secs 30] [--epoch 0] \
//!             [--status-file status.json] [--status-interval-ms 1000] \
//!             [--persist-dir DIR] [--recover] [--trace-sample RATE]
//! ```
//!
//! Reads the shared cluster config (see `rebeca_net::ClusterConfig` for the
//! format), hosts broker `--broker` on a `TcpDriver`, dials its topology
//! peers and serves until `--run-secs` elapses (forever when omitted).
//! Prints a single `listening` line once the socket is bound, so a harness
//! can wait for readiness, and a metrics summary on clean exit.
//!
//! With `--status-file`, the process writes its live status report (the
//! same JSON `rebeca-ctl status --json` renders) to the given file every
//! `--status-interval-ms` (default 1000) — a zero-dependency way to scrape
//! a deployment into flat files.  Each snapshot replaces the previous one
//! atomically (written to a `.tmp` sibling, then renamed), so a concurrent
//! reader always sees one complete JSON document, never a torn write.
//!
//! With `--trace-sample RATE` (a fraction; 1.0 traces everything), the
//! hosted broker samples distributed-trace spans into its span buffer,
//! served to `rebeca-ctl trace` via the `TraceRequest` admin frame.  Pass
//! the same rate to every node: sampling is a deterministic hash, so equal
//! rates mean every broker traces the same publications.
//!
//! With `--persist-dir`, the hosted broker's write-ahead handoff log lives
//! as a file under the given directory instead of in memory, surviving
//! process crashes.  `--recover` replays that log on startup before the
//! `listening` line is printed — the flag a supervisor passes when it
//! relaunches a SIGKILLed broker (together with a bumped `--epoch`, so the
//! restarted incarnation fences off its own zombie connections).

use std::process::ExitCode;

use rebeca_core::SystemBuilder;
use rebeca_net::{ClusterConfig, NetConfig, SystemBuilderTcp};
use rebeca_sim::SimDuration;

struct Args {
    config: String,
    broker: usize,
    run_secs: Option<u64>,
    epoch: u64,
    status_file: Option<String>,
    status_interval: SimDuration,
    persist_dir: Option<String>,
    recover: bool,
    trace_sample: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut config = None;
    let mut broker = None;
    let mut run_secs = None;
    let mut epoch = 0;
    let mut status_file = None;
    let mut status_interval_ms = 1_000;
    let mut persist_dir = None;
    let mut recover = false;
    let mut trace_sample = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} expects a value"));
        match flag.as_str() {
            "--config" => config = Some(value("--config")?),
            "--broker" => {
                broker = Some(
                    value("--broker")?
                        .parse::<usize>()
                        .map_err(|_| "--broker expects a broker index".to_string())?,
                )
            }
            "--run-secs" => {
                run_secs = Some(
                    value("--run-secs")?
                        .parse::<u64>()
                        .map_err(|_| "--run-secs expects a number of seconds".to_string())?,
                )
            }
            "--epoch" => {
                epoch = value("--epoch")?
                    .parse::<u64>()
                    .map_err(|_| "--epoch expects a number".to_string())?
            }
            "--status-file" => status_file = Some(value("--status-file")?),
            "--persist-dir" => persist_dir = Some(value("--persist-dir")?),
            "--recover" => recover = true,
            "--trace-sample" => {
                trace_sample = Some(
                    value("--trace-sample")?
                        .parse::<f64>()
                        .map_err(|_| "--trace-sample expects a fraction (e.g. 0.01)".to_string())?,
                )
            }
            "--status-interval-ms" => {
                status_interval_ms = value("--status-interval-ms")?
                    .parse::<u64>()
                    .map_err(|_| "--status-interval-ms expects milliseconds".to_string())?
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(Args {
        config: config.ok_or("--config is required")?,
        broker: broker.ok_or("--broker is required")?,
        run_secs,
        epoch,
        status_file,
        status_interval: SimDuration::from_millis(status_interval_ms),
        persist_dir,
        recover,
        trace_sample,
    })
}

/// Replaces `path` with `contents` atomically: the bytes are written to a
/// `.tmp` sibling and renamed over the target, so a concurrent reader
/// always sees either the previous snapshot or the new one in full.
fn write_atomic(path: &str, contents: &str) -> std::io::Result<()> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

fn run() -> Result<(), String> {
    let args = parse_args().map_err(|e| {
        format!(
            "{e}\nusage: rebeca-node --config FILE --broker N [--run-secs S] [--epoch E] \
             [--status-file PATH] [--status-interval-ms MS] [--persist-dir DIR] [--recover] \
             [--trace-sample RATE]"
        )
    })?;
    let cluster = ClusterConfig::load(&args.config).map_err(|e| e.to_string())?;
    if args.broker >= cluster.endpoints.len() {
        return Err(format!(
            "broker {} not in config (cluster has {} brokers)",
            args.broker,
            cluster.endpoints.len()
        ));
    }

    let net = NetConfig::new(cluster.endpoints.clone())
        .host(args.broker)
        .epoch(args.epoch)
        .seed(cluster.seed ^ args.broker as u64);
    let mut builder = SystemBuilder::new(&cluster.topology)
        .link_delay(cluster.delay)
        .seed(cluster.seed);
    if let Some(dir) = &args.persist_dir {
        builder = builder.persist_to(dir);
    }
    if let Some(rate) = args.trace_sample {
        builder = builder.trace_sample(rate);
    }
    let mut system = builder.build_tcp(net).map_err(|e| e.to_string())?;
    if args.recover {
        // Rebuild the mobility-relevant broker state from the surviving
        // write-ahead log before accepting any traffic.
        system
            .crash_and_restart_broker(args.broker)
            .map_err(|e| format!("recovery of broker {} failed: {e}", args.broker))?;
        println!("rebeca-node: broker {} recovered from WAL", args.broker);
    }

    println!(
        "rebeca-node: broker {} listening on {}",
        args.broker, cluster.endpoints[args.broker]
    );
    // The harness waits for this line before starting clients.
    use std::io::Write;
    let _ = std::io::stdout().flush();

    let mut status_sink = args.status_file.clone();

    let slice = SimDuration::from_millis(250);
    let deadline = args
        .run_secs
        .map(|secs| system.now() + SimDuration::from_secs(secs));
    let mut next_status = system.now();
    loop {
        let now = system.now();
        if let Some(deadline) = deadline {
            if now >= deadline {
                break;
            }
        }
        if let Some(path) = status_sink.as_ref() {
            if now >= next_status {
                next_status = now + args.status_interval;
                // The latest report only, replaced atomically: the same
                // JSON shape `rebeca-ctl status --json` prints.
                if write_atomic(path, &system.status().to_json()).is_err() {
                    eprintln!("rebeca-node: status file write failed; disabling snapshots");
                    status_sink = None;
                }
            }
        }
        system.run_until(now + slice);
    }

    let metrics = system.metrics();
    println!(
        "rebeca-node: broker {} done (link messages {}, frames in {}, frames out {})",
        args.broker,
        metrics.counter("network.messages"),
        metrics.counter("net.frames_in"),
        metrics.counter("net.frames_out"),
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("rebeca-node: {message}");
            ExitCode::FAILURE
        }
    }
}
