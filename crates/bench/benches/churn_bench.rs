//! End-to-end benchmark of the mobility engine under relocation churn:
//! thousands of mobile consumers relocating once mid-stream while a
//! producer keeps publishing, exercising durable counterpart appends
//! (write-ahead log), relocation floods, batched replays and — in the
//! drained variants — the broker-side coalescing queue.
//!
//! Three questions are measured:
//!
//! 1. **Churn throughput** — wall-clock per full scenario run at 2k and 10k
//!    mobile clients (`churn/relocation/*`), the headline scale numbers.
//! 2. **Batch draining pays for itself** — the same transit-heavy stream
//!    with the drain timer off vs on (`churn/drain_off/2000` vs
//!    `churn/drain_on/2000`): coalescing must keep the run at least as
//!    fast while sending far fewer link messages.
//! 3. **Durability overhead stays bounded** — the 2k churn run with the
//!    WAL checkpointing left at its default vs a run without relocations
//!    (`churn/static/2000`) as the floor.
//!
//! `BENCH_mobility.json` at the repository root is generated from this
//! bench (see the file header there for the command);
//! `scripts/bench_gate.py` regression-gates it in CI.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rebeca_bench::scenarios::{run_churn, run_storm, ChurnScenario, StormScenario};
use rebeca_sim::SimDuration;

/// The relocation-churn load at a given client count.
fn churn(clients: usize) -> ChurnScenario {
    ChurnScenario {
        clients,
        groups: (clients / 20).max(1),
        publications: 200,
        relocate: true,
        ..ChurnScenario::default()
    }
}

/// Transit-heavy stream (every client its own group, so the delivery fan-out
/// is minimal and per-hop transit messages dominate) for the drain pair.
fn transit_heavy(clients: usize, drained: bool) -> ChurnScenario {
    ChurnScenario {
        clients,
        groups: clients,
        publications: 1_000,
        publish_interval: SimDuration::from_micros(500),
        relocate: false,
        drain_interval: drained.then(|| SimDuration::from_millis(5)),
        ..ChurnScenario::default()
    }
}

fn bench_relocation_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn/relocation");
    group.sample_size(10);
    for &clients in &[2_000usize, 10_000] {
        let params = churn(clients);
        // Sanity outside the timed loop: the scenario must be complete and
        // leak-free, otherwise the timing measures a broken run (hand-over
        // duplicates are bounded by the simulator's in-flight model, see
        // `ChurnOutcome::duplicated`).
        let outcome = run_churn(&ChurnScenario {
            verify: true,
            ..params.clone()
        });
        assert_eq!(outcome.lost, 0, "churn run lost notifications");
        assert!(
            outcome.duplicated * 50 <= outcome.expected,
            "hand-over duplicates out of bounds: {} of {}",
            outcome.duplicated,
            outcome.expected
        );
        assert_eq!(outcome.leaked_timeout_guards, 0, "timeout guards leaked");
        assert!(outcome.replayed > 0, "churn run exercised no replays");
        group.bench_with_input(BenchmarkId::from_parameter(clients), &clients, |b, _| {
            b.iter(|| black_box(run_churn(black_box(&params))))
        });
    }
    group.finish();
}

fn bench_drain_pair(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn");
    group.sample_size(10);
    let off = transit_heavy(2_000, false);
    let on = transit_heavy(2_000, true);
    let base = run_churn(&ChurnScenario {
        verify: true,
        ..off.clone()
    });
    let drained = run_churn(&ChurnScenario {
        verify: true,
        ..on.clone()
    });
    assert_eq!(base.delivered, base.expected);
    assert_eq!(base.lost + drained.lost, 0);
    assert_eq!(
        drained.delivered, base.delivered,
        "draining changed deliveries"
    );
    assert!(
        drained.total_messages < base.total_messages,
        "draining must reduce link messages ({} vs {})",
        drained.total_messages,
        base.total_messages
    );
    group.bench_with_input(BenchmarkId::new("drain_off", 2_000), &(), |b, _| {
        b.iter(|| black_box(run_churn(black_box(&off))))
    });
    group.bench_with_input(BenchmarkId::new("drain_on", 2_000), &(), |b, _| {
        b.iter(|| black_box(run_churn(black_box(&on))))
    });
    group.finish();
}

fn bench_static_floor(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn");
    group.sample_size(10);
    let params = ChurnScenario {
        relocate: false,
        ..churn(2_000)
    };
    group.bench_with_input(BenchmarkId::new("static", 2_000), &(), |b, _| {
        b.iter(|| black_box(run_churn(black_box(&params))))
    });
    group.finish();
}

/// Appends a synthetic count sample to `CRITERION_JSON` in the same
/// concatenated-array format the criterion shim emits (the count rides the
/// `ns_per_iter` field), so `scripts/bench_gate.py` picks it up alongside
/// the timing samples.
fn report_count(name: &str, count: u64) {
    println!("{name:<60} count: {count:>10}");
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let record =
        format!("[\n  {{\"name\": \"{name}\", \"ns_per_iter\": {count}.0, \"iters\": 1}}\n]\n");
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, record.as_bytes()));
    if let Err(e) = result {
        eprintln!("churn_bench: cannot write {path}: {e}");
    }
}

/// Subscription-control link messages in the relocation storm, scoped vs
/// unscoped (`churn/link_messages/{scoped,unscoped}/400`).  The simulation
/// is deterministic, so the counts are exact and machine-independent;
/// `scripts/bench_gate.py` holds the unscoped/scoped ratio to a hard
/// `>= 1.3x` floor (the tentpole's "≥ 30 % fewer subscription-control
/// messages" claim) on every run.
fn bench_link_messages(_c: &mut Criterion) {
    let base = StormScenario {
        verify: true,
        ..StormScenario::default()
    };
    let scoped = run_storm(&base);
    let unscoped = run_storm(&StormScenario {
        scoped_relocation: false,
        ..base
    });
    assert_eq!(
        scoped.lost + unscoped.lost,
        0,
        "storm run lost notifications"
    );
    assert_eq!(scoped.expected, unscoped.expected, "storm runs diverged");
    assert!(scoped.replayed > 0, "storm run exercised no replays");
    report_count(
        &format!("churn/link_messages/scoped/{}", base.clients),
        scoped.control_messages,
    );
    report_count(
        &format!("churn/link_messages/unscoped/{}", base.clients),
        unscoped.control_messages,
    );
}

criterion_group!(
    benches,
    bench_relocation_churn,
    bench_drain_pair,
    bench_static_floor,
    bench_link_messages
);
criterion_main!(benches);
