//! # Rebeca Mobility
//!
//! A Rust reproduction of *"Supporting Mobility in Content-Based
//! Publish/Subscribe Middleware"* (Fiege, Gärtner, Kasten, Zeidler —
//! Middleware 2003): a content-based publish/subscribe middleware in the
//! style of Rebeca, extended with
//!
//! * a **relocation protocol for physically mobile clients** — clients that
//!   disconnect and re-attach at a different border broker keep receiving
//!   every notification exactly once and in sender-FIFO order (Section 4 of
//!   the paper), and
//! * **location-dependent subscriptions for logically mobile clients** —
//!   subscriptions containing a `myloc` marker that the middleware keeps
//!   aligned with the client's current location by pre-subscribing to the
//!   possible future locations `ploc(x, q)` at brokers further away from the
//!   client (Section 5).
//!
//! This crate is a thin facade: it re-exports the workspace crates so that
//! applications can depend on a single crate.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`filter`] | `rebeca-filter` | notifications, content-based filters, covering/merging, `myloc` templates |
//! | [`matcher`] | `rebeca-matcher` | attribute-partitioned predicate index: counting matcher, covering candidates, `FilterSet` |
//! | [`location`] | `rebeca-location` | location spaces, movement graphs, `ploc`, adaptivity plans |
//! | [`obs`] | `rebeca-obs` | observability core: log2 latency histograms, bounded event journals, status reports |
//! | [`routing`] | `rebeca-routing` | index-backed routing tables and the flooding/simple/identity/covering/merging strategies |
//! | [`sim`] | `rebeca-sim` | deterministic discrete-event simulator (FIFO links, delays, metrics, topologies) |
//! | [`broker`] | `rebeca-broker` | the static Rebeca broker, message vocabulary, sequence numbering, delivery logs |
//! | [`retain`] | `rebeca-retain` | segment-rotated retained-publication store answering time-window fetches |
//! | [`mobility`] | `rebeca-core` | the paper's contribution: the mobility-aware broker, sessions, drivers, the deployment facade |
//! | [`net`] | `rebeca-net` | real TCP transport behind the [`Driver`] boundary: wire codec, `TcpDriver`, the `rebeca-node` process binary |
//!
//! The most convenient entry points are re-exported at the crate root:
//! [`SystemBuilder`] constructs a deployment, [`MobilitySystem::connect`]
//! opens an interactive [`Session`], and the sans-IO [`Driver`] boundary
//! picks between the deterministic simulator and the wall-clock
//! [`ThreadedDriver`].
//!
//! # Example
//!
//! ```
//! use rebeca::{
//!     ClientId, Constraint, DelayModel, Filter, Notification, RebecaError, SimTime,
//!     SystemBuilder, Topology,
//! };
//!
//! # fn main() -> Result<(), RebecaError> {
//! let mut system = SystemBuilder::new(&Topology::figure5())
//!     .link_delay(DelayModel::constant_millis(5))
//!     .seed(42)
//!     .build()?;
//!
//! // A consumer session at broker B6, a producer session at broker B8.
//! let consumer = system.connect(ClientId::new(1), 5)?;
//! consumer.subscribe(
//!     &mut system,
//!     Filter::new().with("service", Constraint::Eq("parking".into())),
//! )?;
//! let producer = system.connect(ClientId::new(2), 7)?;
//! system.run_until(SimTime::from_millis(50));
//!
//! // Publish ten vacancies; the consumer roams to B1 mid-stream — the
//! // relocation protocol makes the move invisible to the application.
//! for i in 0..10u64 {
//!     if i == 5 {
//!         consumer.move_to(&mut system, 0)?;
//!     }
//!     producer.publish(
//!         &mut system,
//!         Notification::builder().attr("service", "parking").attr("spot", i as i64).build(),
//!     )?;
//!     system.run_until(SimTime::from_millis(100 + i * 50));
//! }
//! system.run_until(SimTime::from_secs(5));
//!
//! assert_eq!(consumer.log(&system)?.len(), 10);
//! assert!(consumer.log(&system)?.is_clean());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Content-based data and filter model (re-export of `rebeca-filter`).
pub mod filter {
    pub use rebeca_filter::*;
}

/// Location model: spaces, movement graphs, `ploc`, adaptivity
/// (re-export of `rebeca-location`).
pub mod location {
    pub use rebeca_location::*;
}

/// Sub-linear content-based matching: the attribute-partitioned predicate
/// index and the index-backed filter set (re-export of `rebeca-matcher`).
pub mod matcher {
    pub use rebeca_matcher::*;
}

/// Content-based routing engine (re-export of `rebeca-routing`).
pub mod routing {
    pub use rebeca_routing::*;
}

/// Observability core: histograms, event journals, status reports
/// (re-export of `rebeca-obs`).
pub mod obs {
    pub use rebeca_obs::*;
}

/// Discrete-event network simulator (re-export of `rebeca-sim`).
pub mod sim {
    pub use rebeca_sim::*;
}

/// Broker network substrate (re-export of `rebeca-broker`).
pub mod broker {
    pub use rebeca_broker::*;
}

/// Retained publications: the segment-rotated retention store behind
/// time-aware subscriptions (re-export of `rebeca-retain`).
pub mod retain {
    pub use rebeca_retain::*;
}

/// Mobility support — the paper's contribution (re-export of `rebeca-core`).
pub mod mobility {
    pub use rebeca_core::*;
}

/// TCP transport and process-per-broker deployment (re-export of
/// `rebeca-net`).
pub mod net {
    pub use rebeca_net::*;
}

// Convenience re-exports of the most commonly used types.
pub use rebeca_broker::{ClientId, ConsumerLog, Delivery, Envelope, Message, SubscriptionId};
pub use rebeca_core::{
    BrokerConfig, ClientAction, ClientNode, Driver, LogicalMobilityMode, MobileBroker,
    MobilitySystem, PersistenceConfig, RebecaError, Session, SimDriver, SystemBuilder,
    ThreadedDriver,
};
pub use rebeca_filter::{Constraint, Filter, LocationDependentFilter, Notification, Value};
pub use rebeca_location::{AdaptivityPlan, Itinerary, LocationId, LocationSpace, MovementGraph};
pub use rebeca_matcher::{FilterIndex, FilterSet};
pub use rebeca_net::{ClusterConfig, Endpoint, NetConfig, SystemBuilderTcp, TcpDriver};
pub use rebeca_obs::{BrokerStatus, EventJournal, Histogram, LinkStatus, ObsEvent, StatusReport};
pub use rebeca_retain::{RetainedPublication, RetentionConfig, RetentionStore};
pub use rebeca_routing::RoutingStrategyKind;
pub use rebeca_sim::{DelayModel, Metrics, SimDuration, SimTime, Topology};
