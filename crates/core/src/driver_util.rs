//! Shared machinery for wall-clock [`Driver`](crate::Driver)
//! implementations.
//!
//! The [`ThreadedDriver`](crate::ThreadedDriver) (in-process, one thread per
//! node) and the TCP transport of `rebeca-net` (process-per-broker) host the
//! same sans-IO nodes under the same transport contract: FIFO links per
//! direction, timers firing in tag order at or after their deadline, a
//! wall clock reported as [`SimTime`].  This module is the single home of
//! the pieces both need, so fixes to the ordering rules (for example the
//! PR 4 FIFO tie-break fix) cannot silently diverge between drivers:
//!
//! * [`PendingEvent`] / [`PendingQueue`] — a due-time-ordered event heap
//!   whose sequence numbers break ties in *insertion* order, including
//!   across run phases (the queue's counter only moves forward);
//! * [`FifoClamp`] — the per-direction monotonic due-time clamp that keeps
//!   a link FIFO even when random delay sampling would reorder messages;
//! * [`WallClock`] — the `Instant` ↔ [`SimTime`] mapping of a run phase.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::hash::Hash;
use std::time::{Duration, Instant};

use rebeca_broker::Message;
use rebeca_obs::{BrokerStatus, LinkStatus};
use rebeca_sim::{Incoming, Metrics, SimDuration, SimTime};

use crate::mobile_broker::{MobileBroker, HANDOFF_LATENCY_HISTOGRAM};

/// Builds the status-plane entry for one hosted broker from its live state
/// and the driver's metrics store — shared by every [`Driver`](crate::Driver)
/// implementation (and the TCP driver of `rebeca-net`), so the report shape
/// cannot diverge between the simulator and a deployment.
///
/// `restart_epoch` is driver-defined (the WAL recovery generation for the
/// in-process drivers, `max(process epoch, generation)` under TCP); `links`
/// likewise (always-connected entries in process, live socket state under
/// TCP).  The hand-off latency histogram and the `mobility.*` counters come
/// from the driver-wide `metrics` store, which is per-process — and thus
/// per-broker — under the TCP deployment, and cluster-wide under the
/// in-process drivers.
pub fn broker_status(
    index: u64,
    broker: &MobileBroker,
    metrics: &Metrics,
    now: SimTime,
    restart_epoch: u64,
    links: Vec<LinkStatus>,
) -> BrokerStatus {
    let log = broker.machine().log();
    BrokerStatus {
        broker: index,
        restart_epoch,
        generation: broker.machine().generation(),
        routing_entries: broker.routing_entries() as u64,
        routing_subgroups: broker.routing_subgroups() as u64,
        wal_depth: log.depth(),
        wal_since_checkpoint: log.since_checkpoint(),
        last_checkpoint_age_ms: broker
            .last_checkpoint_at()
            .map(|at| now.since(at).as_millis()),
        counterparts: broker.counterpart_count() as u64,
        buffered_deliveries: broker.buffered_deliveries() as u64,
        pending_relocations: broker.pending_relocations() as u64,
        retained_publications: broker.retained_publications(),
        retained_segments: broker.retained_segments(),
        oldest_retained_age_ms: broker
            .oldest_retained_ts()
            .map(|ts| (now.as_micros().saturating_sub(ts)) / 1_000),
        expired_leases: broker.expired_leases(),
        relocations: metrics
            .counters()
            .filter(|(name, _)| name.starts_with("mobility."))
            .map(|(name, value)| (name.to_string(), value))
            .collect(),
        handoff_latency_micros: metrics
            .histogram(HANDOFF_LATENCY_HISTOGRAM)
            .cloned()
            .unwrap_or_default(),
        links,
    }
}

/// The always-connected link entries of an in-process driver: one per
/// broker link, no heartbeat age (in-process links cannot drop).
pub fn in_process_links(broker: &MobileBroker) -> Vec<LinkStatus> {
    broker
        .core()
        .broker_links()
        .iter()
        .map(|peer| LinkStatus {
            peer: peer.0 as u64,
            connected: true,
            last_heartbeat_age_ms: None,
            down_since_ms: None,
            redial_attempts: 0,
        })
        .collect()
}

/// One event waiting to be delivered to a node, stamped with the absolute
/// driver time at which it becomes due and a tie-breaking sequence number.
#[derive(Debug, Clone)]
pub struct PendingEvent {
    /// Absolute driver time at which the event becomes due.
    pub due: SimTime,
    /// Tie-break: events with equal due times dispatch in insertion order.
    pub seq: u64,
    /// The event itself.
    pub event: Incoming<Message>,
}

impl PartialEq for PendingEvent {
    fn eq(&self, other: &Self) -> bool {
        (self.due, self.seq) == (other.due, other.seq)
    }
}
impl Eq for PendingEvent {}
impl PartialOrd for PendingEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

/// A min-heap of [`PendingEvent`]s for one node.
///
/// The queue assigns its own monotonically increasing sequence numbers, so
/// two events with the same clamped due time always dispatch in the order
/// they were pushed — the FIFO tie-break the link contract requires.  The
/// counter travels *with* the queue when ownership moves between loops
/// (e.g. from the driver into a phase worker and back), so carried-over
/// events always win ties against events pushed later.
#[derive(Debug, Default)]
pub struct PendingQueue {
    heap: BinaryHeap<Reverse<PendingEvent>>,
    seq: u64,
}

impl PendingQueue {
    /// Creates an empty queue whose sequence counter starts at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes an event due at `due`, assigning the next sequence number.
    pub fn push(&mut self, due: SimTime, event: Incoming<Message>) {
        self.seq += 1;
        let seq = self.seq;
        self.heap.push(Reverse(PendingEvent { due, seq, event }));
    }

    /// The earliest due time, if any event is pending.
    pub fn next_due(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(p)| p.due)
    }

    /// Pops the earliest event if it is due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<PendingEvent> {
        if self.heap.peek().is_some_and(|Reverse(p)| p.due <= now) {
            self.heap.pop().map(|Reverse(p)| p)
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// The per-direction monotonic due-time clamp: arrival times on one link
/// direction never decrease, which preserves the FIFO link contract of the
/// paper's system model (Section 2.1) even under random delay models.
///
/// The key type is chosen by the caller: a per-node worker clamps by
/// destination (`K = NodeId`), a central event loop by directed pair
/// (`K = (NodeId, NodeId)`).
#[derive(Debug, Clone, Default)]
pub struct FifoClamp<K: Eq + Hash> {
    last_due: HashMap<K, SimTime>,
}

impl<K: Eq + Hash> FifoClamp<K> {
    /// Creates an empty clamp (every direction starts at time zero).
    pub fn new() -> Self {
        Self {
            last_due: HashMap::new(),
        }
    }

    /// Clamps `due` for the given direction: returns `max(due, last)` and
    /// records the result as the direction's new watermark.
    pub fn clamp(&mut self, key: K, due: SimTime) -> SimTime {
        let entry = self.last_due.entry(key).or_insert(SimTime::ZERO);
        let clamped = due.max(*entry);
        *entry = clamped;
        clamped
    }

    /// Raises a direction's watermark to `due` if it is behind (used when
    /// merging per-worker clamps back into a driver-wide one).
    pub fn raise(&mut self, key: K, due: SimTime) {
        let entry = self.last_due.entry(key).or_insert(SimTime::ZERO);
        if due > *entry {
            *entry = due;
        }
    }

    /// The current watermark of a direction (time zero when never used).
    pub fn watermark(&self, key: &K) -> SimTime {
        self.last_due.get(key).copied().unwrap_or(SimTime::ZERO)
    }

    /// Consumes the clamp, yielding every `(direction, watermark)` pair.
    pub fn into_watermarks(self) -> impl Iterator<Item = (K, SimTime)> {
        self.last_due.into_iter()
    }
}

impl<K: Eq + Hash> FromIterator<(K, SimTime)> for FifoClamp<K> {
    fn from_iter<I: IntoIterator<Item = (K, SimTime)>>(iter: I) -> Self {
        Self {
            last_due: iter.into_iter().collect(),
        }
    }
}

/// The `Instant` ↔ [`SimTime`] mapping of one wall-clock run: `base` in sim
/// time corresponds to `started` on the wall clock, microsecond for
/// microsecond.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    started: Instant,
    base: SimTime,
}

impl WallClock {
    /// Anchors sim time `base` at wall instant `started`.
    pub fn new(started: Instant, base: SimTime) -> Self {
        Self { started, base }
    }

    /// Anchors sim time `base` at the current instant.
    pub fn anchored_now(base: SimTime) -> Self {
        Self::new(Instant::now(), base)
    }

    /// The wall instant corresponding to a sim time (times before the base
    /// map to the anchor instant).
    pub fn to_wall(&self, t: SimTime) -> Instant {
        self.started + Duration::from_micros(t.since(self.base).as_micros())
    }

    /// The sim time corresponding to a wall instant (instants before the
    /// anchor map to the base time).
    pub fn to_sim(&self, i: Instant) -> SimTime {
        self.base + SimDuration::from_micros(i.duration_since(self.started).as_micros() as u64)
    }

    /// The sim time of the current instant.
    pub fn now(&self) -> SimTime {
        self.to_sim(Instant::now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(tag: u64) -> Incoming<Message> {
        Incoming::Timer { tag }
    }

    #[test]
    fn queue_orders_by_due_then_insertion() {
        let mut q = PendingQueue::new();
        q.push(SimTime::from_millis(5), timer(1));
        q.push(SimTime::from_millis(1), timer(2));
        q.push(SimTime::from_millis(5), timer(3));
        assert_eq!(q.len(), 3);
        assert_eq!(q.next_due(), Some(SimTime::from_millis(1)));
        let order: Vec<u64> = std::iter::from_fn(|| {
            q.pop_due(SimTime::from_secs(1)).map(|p| match p.event {
                Incoming::Timer { tag } => tag,
                _ => unreachable!(),
            })
        })
        .collect();
        // Equal due times (tags 1 and 3) dispatch in insertion order.
        assert_eq!(order, vec![2, 1, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_due_respects_the_deadline() {
        let mut q = PendingQueue::new();
        q.push(SimTime::from_millis(10), timer(1));
        assert!(q.pop_due(SimTime::from_millis(9)).is_none());
        assert!(q.pop_due(SimTime::from_millis(10)).is_some());
    }

    #[test]
    fn carried_events_win_ties_against_later_pushes() {
        // The counter travels with the queue, so an event queued "in an
        // earlier phase" keeps its tie-break priority over one pushed at
        // the same due time later.
        fn hand_over(queue: PendingQueue) -> PendingQueue {
            queue // ownership moves (driver -> worker); the counter travels
        }
        let mut q = PendingQueue::new();
        q.push(SimTime::from_millis(1), timer(1));
        let mut q = hand_over(q);
        q.push(SimTime::from_millis(1), timer(2));
        let first = q.pop_due(SimTime::from_secs(1)).unwrap();
        assert!(matches!(first.event, Incoming::Timer { tag: 1 }));
        let second = q.pop_due(SimTime::from_secs(1)).unwrap();
        assert!(matches!(second.event, Incoming::Timer { tag: 2 }));
    }

    #[test]
    fn clamp_is_monotone_per_direction() {
        let mut clamp: FifoClamp<u32> = FifoClamp::new();
        assert_eq!(
            clamp.clamp(7, SimTime::from_millis(10)),
            SimTime::from_millis(10)
        );
        // An earlier sampled arrival is clamped up to the watermark.
        assert_eq!(
            clamp.clamp(7, SimTime::from_millis(4)),
            SimTime::from_millis(10)
        );
        // Another direction is independent.
        assert_eq!(
            clamp.clamp(8, SimTime::from_millis(4)),
            SimTime::from_millis(4)
        );
        assert_eq!(clamp.watermark(&7), SimTime::from_millis(10));
        assert_eq!(clamp.watermark(&99), SimTime::ZERO);
    }

    #[test]
    fn clamp_merges_via_raise() {
        let mut driver_wide: FifoClamp<(u32, u32)> = FifoClamp::new();
        driver_wide.raise((1, 2), SimTime::from_millis(5));
        driver_wide.raise((1, 2), SimTime::from_millis(3)); // behind: no-op
        assert_eq!(driver_wide.watermark(&(1, 2)), SimTime::from_millis(5));
        let pairs: Vec<_> = driver_wide.into_watermarks().collect();
        assert_eq!(pairs, vec![((1, 2), SimTime::from_millis(5))]);
    }

    #[test]
    fn wall_clock_roundtrips_times() {
        let clock = WallClock::anchored_now(SimTime::from_secs(1));
        let t = SimTime::from_secs(1) + SimDuration::from_millis(250);
        let back = clock.to_sim(clock.to_wall(t));
        assert_eq!(back, t);
        // Times before the base map to the anchor.
        assert_eq!(
            clock.to_wall(SimTime::ZERO),
            clock.to_wall(SimTime::from_secs(1))
        );
        assert!(clock.now() >= SimTime::from_secs(1));
    }
}
