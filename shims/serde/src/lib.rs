//! Offline API stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so that
//! applications built on top can serialize them with real serde, but the
//! build environment for this repository cannot reach crates.io.  This shim
//! keeps the *API surface* (trait names in bounds, `#[derive(..)]`
//! attributes) compiling without providing an actual data format:
//!
//! * the derive macros (re-exported from the `serde_derive` shim) expand to
//!   nothing, and
//! * the traits below are blanket-implemented for every type, so bounds such
//!   as `T: Serialize` are always satisfied.
//!
//! Swapping in real serde is a one-line change in the workspace manifest.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Sub-module mirroring `serde::de` for code that names the owned variant.
pub mod de {
    pub use crate::DeserializeOwned;
}
