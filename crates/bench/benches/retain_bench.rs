//! Benchmarks for the segment-rotated retention store (`rebeca-retain`)
//! and the time-aware subscription path built on it.
//!
//! Three groups:
//!
//! * `retain/append` — steady-state append throughput with rotation and
//!   segment-cap eviction active (every append pays framing + CRC32; one
//!   in `segment_max_records` pays a seal + archive-evict).
//! * `retain/fetch` — time-window fetches against 100k retained records:
//!   the binary-searched [`RetentionStore::fetch_since`] (skips archived
//!   segments entirely older than the window via their time-index
//!   headers) vs the [`RetentionStore::fetch_since_linear`] oracle that
//!   walks every record.  `scripts/bench_gate.py` gates the within-run
//!   ratio and holds a hard floor on the recent-window pair: the
//!   time-index skip may never lose to the full scan.
//! * `retain/reattach` — the end-to-end time-aware subscription scenario
//!   on the deterministic simulator: detach, miss a publication batch,
//!   reattach elsewhere with `subscribe_since`, replay the gap from the
//!   origin broker's retention store.  Verified clean (outside the timed
//!   loop) before timing.
//!
//! `BENCH_retain.json` at the repository root is generated from this
//! bench (see the file header there for the command).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use rebeca_broker::{ClientId, Envelope};
use rebeca_core::{BrokerConfig, MobilitySystem, RetentionConfig, RetentionStore, SystemBuilder};
use rebeca_filter::{Constraint, Filter, Notification};
use rebeca_sim::{DelayModel, SimDuration, SimTime, Topology};

fn parking_filter() -> Filter {
    Filter::new().with("service", Constraint::Eq("parking".into()))
}

fn envelope(seq: u64) -> Envelope {
    Envelope::new(
        ClientId::new(9),
        seq,
        Notification::builder()
            .attr("service", "parking")
            .attr("spot", seq as i64)
            .build(),
    )
}

/// Steady-state appends: the store is pre-filled past its segment cap so
/// every iteration exercises the live-segment push and, amortised, the
/// seal-and-evict rotation.
fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("retain/append");
    for &segment_records in &[256usize, 1024] {
        let mut store = RetentionStore::new(RetentionConfig {
            segment_max_records: segment_records,
            max_segments: 64,
            retention_window_micros: 0,
        });
        // Past the cap: rotation now evicts the oldest archived segment.
        let warm = segment_records as u64 * 70;
        for i in 0..warm {
            store.append(i * 10, envelope(i + 1));
        }
        let mut ts = warm * 10;
        let mut seq = warm;
        group.bench_with_input(
            BenchmarkId::new("record", segment_records),
            &segment_records,
            |b, _| {
                b.iter(|| {
                    ts += 10;
                    seq += 1;
                    store.append(ts, envelope(seq));
                    black_box(store.total_records())
                })
            },
        );
    }
    group.finish();
}

/// Time-window fetches at 100k retained records.  `recent` asks for the
/// newest ~0.1% (the common reattach window — the time-index skip avoids
/// ~97 of 98 archived segments, and the small result set keeps the
/// clone cost from masking the scan-vs-skip difference); `half` asks
/// for the newest 50% (a parity pair: both sides scan the same
/// records).
fn bench_fetch(c: &mut Criterion) {
    const RECORDS: u64 = 100_000;
    let mut store = RetentionStore::new(RetentionConfig {
        segment_max_records: 1024,
        max_segments: 128,
        retention_window_micros: 0,
    });
    for i in 0..RECORDS {
        store.append(i * 1_000, envelope(i + 1));
    }
    assert_eq!(store.total_records(), RECORDS);
    let filter = parking_filter();

    let mut group = c.benchmark_group("retain/fetch");
    group.sample_size(20);
    for (window, since) in [("recent", 99_900 * 1_000u64), ("half", 50_000 * 1_000)] {
        let expect = store.fetch_since(since, &filter).len();
        assert_eq!(expect, store.fetch_since_linear(since, &filter).len());
        group.bench_with_input(
            BenchmarkId::new(format!("linear_{window}"), RECORDS),
            &since,
            |b, &since| b.iter(|| black_box(store.fetch_since_linear(since, &filter).len())),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("indexed_{window}"), RECORDS),
            &since,
            |b, &since| b.iter(|| black_box(store.fetch_since(since, &filter).len())),
        );
    }
    group.finish();
}

/// Publications delivered live before the detach.
const PRE: u64 = 10;
/// Matching publications missed while detached and replayed from the
/// origin broker's retention store.
const MISSED: u64 = 120;
const TOTAL: u64 = PRE + MISSED;
const CONSUMER: ClientId = ClientId::new(1);
const PRODUCER: ClientId = ClientId::new(2);
/// Mid-gap window start: after every pre-detach retention timestamp,
/// before every offline one (the schedule below is fixed virtual time).
const SINCE_MICROS: u64 = 600_000;

fn vacancy(i: u64) -> Notification {
    Notification::builder()
        .attr("service", "parking")
        .attr("spot", i as i64)
        .build()
}

/// The end-to-end reattach-replay scenario on the deterministic
/// simulator: detach at broker 0, miss [`MISSED`] publications, reattach
/// at broker 1 with a `since`-scoped subscription, replay the gap.
fn run_reattach_replay() -> MobilitySystem {
    let mut sys = SystemBuilder::new(&Topology::line(3))
        .config(
            BrokerConfig::default()
                .with_relocation_timeout(SimDuration::from_millis(500))
                .with_retention(Some(RetentionConfig {
                    segment_max_records: 32,
                    max_segments: 64,
                    retention_window_micros: 0,
                })),
        )
        .link_delay(DelayModel::constant_millis(2))
        .seed(42)
        .build()
        .expect("non-empty topology");
    let consumer = sys.connect(CONSUMER, 0).unwrap();
    consumer.subscribe(&mut sys, parking_filter()).unwrap();
    let producer = sys.connect(PRODUCER, 2).unwrap();
    sys.run_until(SimTime::from_millis(100));

    for i in 1..=PRE {
        producer.publish(&mut sys, vacancy(i)).unwrap();
    }
    sys.run_until(SimTime::from_millis(500));
    consumer.detach(&mut sys).unwrap();
    sys.run_until(SimTime::from_millis(700));

    for i in PRE + 1..=TOTAL {
        producer.publish(&mut sys, vacancy(i)).unwrap();
    }
    sys.run_until(SimTime::from_millis(1_500));

    consumer.reattach(&mut sys, 1).unwrap();
    sys.run_until(SimTime::from_millis(1_600));
    consumer
        .subscribe_since(&mut sys, parking_filter(), SINCE_MICROS)
        .unwrap();
    sys.run_until(SimTime::from_secs(4));
    sys
}

fn bench_reattach(c: &mut Criterion) {
    // Verified equivalent work outside the timed loop: the replay run
    // delivers the complete clean stream.
    let sys = run_reattach_replay();
    let log = sys.client_log(CONSUMER).unwrap();
    assert!(log.is_clean(), "violations: {:?}", log.violations());
    assert_eq!(
        log.distinct_publisher_seqs(PRODUCER),
        (1..=TOTAL).collect::<Vec<u64>>(),
        "incomplete replay"
    );

    let mut group = c.benchmark_group("retain/reattach");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("replay", MISSED), &(), |b, _| {
        b.iter(|| black_box(run_reattach_replay()))
    });
    group.finish();
}

criterion_group!(benches, bench_append, bench_fetch, bench_reattach);
criterion_main!(benches);
