//! Crash/restart durability of the relocation protocol.
//!
//! The headline property: a broker killed at an **arbitrary point
//! mid-relocation** and restarted from its write-ahead handoff log yields
//! per-client delivery sequences identical to a run without the crash — the
//! WAL makes the crash invisible to consumers.  Plus: replays are observed
//! on the wire as batch messages, and a corrupted WAL recovers to the last
//! valid record instead of panicking.

use proptest::prelude::*;

use rebeca_broker::{ClientId, Delivery};
use rebeca_core::{BrokerConfig, ClientAction, LogicalMobilityMode, MobilitySystem, SystemBuilder};
use rebeca_filter::{Constraint, Filter, Notification};
use rebeca_location::MovementGraph;
use rebeca_mobility::HandoffLog;
use rebeca_routing::RoutingStrategyKind;
use rebeca_sim::{DelayModel, SimDuration, SimTime, Topology};

fn filter() -> Filter {
    Filter::new().with("service", Constraint::Eq("telemetry".into()))
}

fn sample(i: u64) -> Notification {
    Notification::builder()
        .attr("service", "telemetry")
        .attr("reading", i as i64)
        .build()
}

/// Parameters of one randomized crash scenario on the Figure 5 topology:
/// the consumer starts at B6 (index 5, the broker that will crash), moves
/// to B1 (index 0) at `move_at_ms`, and the old border broker is killed and
/// restarted from its WAL at `move_at_ms + crash_offset_ms` — inside the
/// relocation window.
#[derive(Debug, Clone)]
struct CrashScenario {
    seed: u64,
    move_at_ms: u64,
    crash_offset_ms: u64,
    publications: u64,
    publish_interval_ms: u64,
    wal_checkpoint_every: usize,
    strategy: RoutingStrategyKind,
    /// Crash the broker a second time, 10 ms after the first restart.
    double_crash: bool,
}

fn scenario() -> impl Strategy<Value = CrashScenario> {
    (
        any::<u64>(),
        200u64..800,
        15u64..400,
        8u64..40,
        prop_oneof![
            Just(RoutingStrategyKind::Simple),
            Just(RoutingStrategyKind::Covering),
            Just(RoutingStrategyKind::Merging),
        ],
        any::<bool>(),
    )
        .prop_map(
            |(seed, move_at_ms, crash_offset_ms, publications, strategy, double_crash)| {
                CrashScenario {
                    seed,
                    move_at_ms,
                    crash_offset_ms,
                    publications,
                    publish_interval_ms: 20,
                    wal_checkpoint_every: 8,
                    strategy,
                    double_crash,
                }
            },
        )
}

const CONSUMER: ClientId = ClientId::new(1);
const PRODUCER: ClientId = ClientId::new(2);
const OLD_BROKER: usize = 5; // B6 in the paper's Figure 5
const NEW_BROKER: usize = 0; // B1

fn build(s: &CrashScenario) -> MobilitySystem {
    let config = BrokerConfig::default()
        .with_strategy(s.strategy)
        .with_movement_graph(MovementGraph::paper_example())
        .with_relocation_timeout(SimDuration::from_secs(60))
        // Usually a small checkpoint interval, so compaction happens
        // mid-scenario too.
        .with_wal_checkpoint_every(s.wal_checkpoint_every);
    let mut sys = SystemBuilder::new(&Topology::figure5())
        .config(config)
        .link_delay(DelayModel::constant_millis(5))
        .seed(s.seed)
        .build()
        .unwrap();
    sys.add_client(
        CONSUMER,
        LogicalMobilityMode::LocationDependent,
        &[OLD_BROKER, NEW_BROKER],
        vec![
            (
                SimTime::from_millis(1),
                ClientAction::Attach {
                    broker: sys.broker_node(OLD_BROKER).unwrap(),
                },
            ),
            (SimTime::from_millis(2), ClientAction::Subscribe(filter())),
            (
                SimTime::from_millis(s.move_at_ms),
                ClientAction::MoveTo {
                    broker: sys.broker_node(NEW_BROKER).unwrap(),
                },
            ),
        ],
    )
    .unwrap();
    let mut script = vec![(
        SimTime::from_millis(1),
        ClientAction::Attach {
            broker: sys.broker_node(7).unwrap(),
        },
    )];
    for i in 0..s.publications {
        script.push((
            SimTime::from_millis(50 + i * s.publish_interval_ms),
            ClientAction::Publish(sample(i)),
        ));
    }
    sys.add_client(
        PRODUCER,
        LogicalMobilityMode::LocationDependent,
        &[7],
        script,
    )
    .unwrap();
    sys
}

/// Runs a scenario, optionally crash-restarting the old border broker at
/// the scripted times, and returns the consumer's delivered sequence.
fn run(s: &CrashScenario, crash: bool) -> Vec<Delivery> {
    let mut sys = build(s);
    let crash_at = SimTime::from_millis(s.move_at_ms + s.crash_offset_ms);
    // Both runs pass the same run_until boundaries so the event pump is
    // identical; only the crash differs.
    sys.run_until(crash_at);
    if crash {
        sys.crash_and_restart_broker(OLD_BROKER).unwrap();
    }
    let second = SimTime::from_millis(s.move_at_ms + s.crash_offset_ms + 10);
    sys.run_until(second);
    if crash && s.double_crash {
        sys.crash_and_restart_broker(OLD_BROKER).unwrap();
    }
    sys.run_until(SimTime::from_secs(30));
    sys.client_log(CONSUMER).unwrap().deliveries().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 18, ..ProptestConfig::default() })]

    /// A broker restarted from its handoff log mid-relocation is invisible
    /// to consumers: the delivered sequence is byte-identical to the
    /// no-crash oracle (same deliveries, same order, same sequence
    /// numbers), for every crash instant, move time, publication count and
    /// routing strategy — even when the broker crashes twice.
    #[test]
    fn restart_from_wal_matches_the_no_crash_oracle(s in scenario()) {
        let oracle = run(&s, false);
        let crashed = run(&s, true);
        prop_assert_eq!(
            &crashed,
            &oracle,
            "scenario {:?}: delivery sequence diverged after crash/restart",
            s
        );
        // Sanity: the oracle itself is a complete, clean stream.
        prop_assert_eq!(oracle.len() as u64, s.publications, "oracle incomplete for {:?}", s);
    }
}

/// Deterministic spot check (fast, runs even when the proptest budget is
/// tight): crash right in the middle of the buffering window and compare.
#[test]
fn mid_buffering_crash_is_invisible() {
    let s = CrashScenario {
        seed: 7,
        move_at_ms: 400,
        crash_offset_ms: 30,
        publications: 25,
        publish_interval_ms: 20,
        wal_checkpoint_every: 8,
        strategy: RoutingStrategyKind::Covering,
        double_crash: false,
    };
    let oracle = run(&s, false);
    let crashed = run(&s, true);
    assert_eq!(crashed, oracle);
    assert_eq!(oracle.len(), 25);
}

/// The restarted broker really was rebuilt from the log: immediately after
/// the crash it holds the same buffered deliveries the crashed instance
/// had.
#[test]
fn restart_reconstructs_counterparts_exactly() {
    let s = CrashScenario {
        seed: 11,
        move_at_ms: 300,
        crash_offset_ms: 20,
        publications: 60,
        publish_interval_ms: 5,
        wal_checkpoint_every: 8,
        strategy: RoutingStrategyKind::Covering,
        double_crash: false,
    };
    let mut sys = build(&s);
    sys.run_until(SimTime::from_millis(s.move_at_ms + s.crash_offset_ms));
    let crashed = sys.crash_and_restart_broker(OLD_BROKER).unwrap();
    let restarted = sys.broker(OLD_BROKER).unwrap();
    assert_eq!(
        restarted.buffered_deliveries(),
        crashed.buffered_deliveries(),
        "recovered counterpart must hold exactly the crashed broker's buffer"
    );
    assert_eq!(restarted.counterpart_count(), crashed.counterpart_count());
    assert!(
        crashed.buffered_deliveries() > 0,
        "the crash window must actually cover buffered deliveries for this seed"
    );
    assert_eq!(
        sys.metrics().counter("mobility.broker_restart"),
        1,
        "the restart is accounted"
    );
}

/// Counterpart replays travel the wire as `DeliverBatch`/`Replay` batch
/// messages, not as N per-notification sends: with many deliveries
/// buffered during the hand-over, at least one batch delivery message is
/// observed and the per-delivery replay fan-out of the pre-engine broker
/// (one `Deliver` per replayed notification) is gone.
#[test]
fn replays_travel_as_batches_on_the_wire() {
    let s = CrashScenario {
        seed: 3,
        move_at_ms: 300,
        crash_offset_ms: 30,
        publications: 60,
        publish_interval_ms: 5,
        wal_checkpoint_every: 8,
        strategy: RoutingStrategyKind::Covering,
        double_crash: false,
    };
    let mut sys = build(&s);
    sys.run_until(SimTime::from_secs(30));
    let log = sys.client_log(CONSUMER).unwrap();
    assert!(log.is_clean(), "violations: {:?}", log.violations());
    assert_eq!(log.len() as u64, s.publications);

    let replayed = sys.metrics().counter("mobility.replay_delivered");
    assert!(
        replayed >= 2,
        "scenario must replay at least two buffered deliveries, got {replayed}"
    );
    let batch_sends = sys.metrics().counter("broker.tx.deliver_batch");
    assert!(
        batch_sends >= 1,
        "the merged replay must leave the new border broker as one batch message"
    );
    // The replayed deliveries did not fan out as single Deliver messages:
    // every single Deliver on the wire is accounted for by live (non-replay)
    // traffic, so their count stays below the total delivered.
    let single_delivers = sys.metrics().counter("broker.tx.deliver");
    assert!(
        single_delivers + replayed <= sys.metrics().counter("client.delivered") + 1,
        "replayed deliveries must not also travel as per-notification sends \
         (single={single_delivers}, replayed={replayed})"
    );
}

/// WAL-corruption smoke test: truncating the log or flipping bytes makes
/// recovery stop at the last valid record — never panic — and a broker
/// restarted from the damaged log still leaves the system running.
#[test]
fn corrupted_wal_recovers_to_the_last_valid_record() {
    let s = CrashScenario {
        seed: 19,
        move_at_ms: 300,
        crash_offset_ms: 60,
        publications: 60,
        publish_interval_ms: 5,
        // No mid-scenario compaction: the corruption drills below need a
        // multi-record history to damage.
        wal_checkpoint_every: 4096,
        strategy: RoutingStrategyKind::Covering,
        double_crash: false,
    };
    let mut sys = build(&s);
    sys.run_until(SimTime::from_millis(s.move_at_ms + s.crash_offset_ms));

    let backend = sys.wal_backend(OLD_BROKER).unwrap();
    let intact = HandoffLog::with_backend(backend.boxed_clone()).recover();
    assert!(!intact.truncated);
    assert!(intact.records_read >= 2, "scenario produced records");
    let bytes = backend.read_all().expect("wal readable");

    // (a) Torn tail: drop the last few bytes.
    let torn = bytes[..bytes.len() - 3].to_vec();
    // (b) Flipped byte inside the payload of the middle record.
    let mut flipped = bytes.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0xA5;
    // (c) Garbage length prefix appended after valid records.
    let mut garbage = bytes.clone();
    garbage.extend_from_slice(&[0xFF; 8]);

    for (name, corrupted) in [("torn", torn), ("flipped", flipped), ("garbage", garbage)] {
        let mut damaged = backend.boxed_clone();
        damaged.reset(&corrupted).expect("reset");
        let recovered = HandoffLog::with_backend(damaged).recover();
        assert!(
            recovered.truncated,
            "{name}: corruption must be detected, not silently accepted"
        );
        assert!(
            recovered.records_read <= intact.records_read,
            "{name}: recovery must stop at or before the intact record count"
        );
        assert!(
            recovered.records_read >= 1,
            "{name}: the valid prefix must survive"
        );
    }

    // Restarting from the torn log must not panic and the system keeps
    // running to completion (deliveries may be fewer — durability degrades
    // to the valid prefix — but nothing crashes).
    let mut damaged = backend.boxed_clone();
    damaged.reset(&bytes[..bytes.len() - 3]).expect("reset");
    sys.crash_and_restart_broker(OLD_BROKER).unwrap();
    sys.run_until(SimTime::from_secs(30));
    assert!(sys.client_log(CONSUMER).unwrap().is_clean());
}

/// The drain queue and the WAL compose: with batch draining enabled, a
/// crash after the relocation committed (in a quiescent window, so the
/// volatile drain queue is empty — queued-but-unrouted envelopes are
/// explicitly outside the durability contract) still satisfies the oracle
/// equality.  The consumer moves at 200 ms mid-stream, the relocation
/// settles around 260 ms, the first publication wave drains by ~350 ms, the
/// broker crashes at 450 ms, and a second wave from 600 ms exercises the
/// restarted broker.
#[test]
fn crash_with_batch_draining_enabled_matches_oracle() {
    let run_drained = |crash: bool| -> Vec<Delivery> {
        let config = BrokerConfig::default()
            .with_strategy(RoutingStrategyKind::Covering)
            .with_movement_graph(MovementGraph::paper_example())
            .with_relocation_timeout(SimDuration::from_secs(60))
            .with_drain_interval(Some(SimDuration::from_millis(8)))
            .with_wal_checkpoint_every(8);
        let mut sys = SystemBuilder::new(&Topology::figure5())
            .config(config)
            .link_delay(DelayModel::constant_millis(5))
            .seed(23)
            .build()
            .unwrap();
        sys.add_client(
            CONSUMER,
            LogicalMobilityMode::LocationDependent,
            &[OLD_BROKER, NEW_BROKER],
            vec![
                (
                    SimTime::from_millis(1),
                    ClientAction::Attach {
                        broker: sys.broker_node(OLD_BROKER).unwrap(),
                    },
                ),
                (SimTime::from_millis(2), ClientAction::Subscribe(filter())),
                (
                    SimTime::from_millis(200),
                    ClientAction::MoveTo {
                        broker: sys.broker_node(NEW_BROKER).unwrap(),
                    },
                ),
            ],
        )
        .unwrap();
        let mut script = vec![(
            SimTime::from_millis(1),
            ClientAction::Attach {
                broker: sys.broker_node(7).unwrap(),
            },
        )];
        for i in 0..12u64 {
            script.push((
                SimTime::from_millis(50 + i * 20),
                ClientAction::Publish(sample(i)),
            ));
        }
        for i in 12..25u64 {
            script.push((
                SimTime::from_millis(600 + (i - 12) * 20),
                ClientAction::Publish(sample(i)),
            ));
        }
        sys.add_client(
            PRODUCER,
            LogicalMobilityMode::LocationDependent,
            &[7],
            script,
        )
        .unwrap();
        sys.run_until(SimTime::from_millis(450));
        if crash {
            sys.crash_and_restart_broker(OLD_BROKER).unwrap();
        }
        sys.run_until(SimTime::from_secs(30));
        sys.client_log(CONSUMER).unwrap().deliveries().to_vec()
    };
    let oracle = run_drained(false);
    let crashed = run_drained(true);
    assert_eq!(crashed, oracle);
    assert_eq!(oracle.len(), 25);
}

/// A crash of the *new* border broker mid-relocation (before any fresh
/// envelope was held back): `RelocationBegin` carries the client's node, so
/// recovery re-attaches the client, re-arms the timeout and the replay
/// still merges — the delivered sequence matches the no-crash oracle.
#[test]
fn new_border_broker_crash_mid_holding_matches_oracle() {
    let run_new_border = |crash: bool| -> Vec<Delivery> {
        let s = CrashScenario {
            seed: 31,
            move_at_ms: 300,
            crash_offset_ms: 0, // unused; we crash the NEW broker below
            publications: 60,
            publish_interval_ms: 5,
            wal_checkpoint_every: 8,
            strategy: RoutingStrategyKind::Covering,
            double_crash: false,
        };
        let mut sys = build(&s);
        // Holding opens at ~305 ms; the earliest held envelope can reach
        // B1 at ~335 ms (the junction must see the Relocate first), so a
        // crash at 312 ms hits an open, still-empty holding.
        sys.run_until(SimTime::from_millis(312));
        if crash {
            sys.crash_and_restart_broker(NEW_BROKER).unwrap();
        }
        sys.run_until(SimTime::from_secs(30));
        sys.client_log(CONSUMER).unwrap().deliveries().to_vec()
    };
    let oracle = run_new_border(false);
    let crashed = run_new_border(true);
    assert_eq!(crashed, oracle);
    assert_eq!(oracle.len(), 60);
}

/// Regression test for restart timeout-tag aliasing: timers armed by a
/// crashed incarnation survive in the event queue and cannot be
/// cancelled.  Recovery numbers its tags from a fresh generation, so a
/// stale timer of an *earlier, settled* relocation firing while a
/// *recovered* holding is open must be a no-op — not flush the holding
/// and drop its replay.
#[test]
fn stale_timers_from_before_the_crash_cannot_flush_recovered_holdings() {
    let run_triple_move = |crash: bool| -> Vec<Delivery> {
        let config = BrokerConfig::default()
            .with_strategy(RoutingStrategyKind::Covering)
            .with_movement_graph(MovementGraph::paper_example())
            // Short timeout: the guard armed by relocation 1 (at ~205 ms)
            // fires at ~905 ms — after the crash at 885 ms, while the
            // recovered holding of relocation 3 is still waiting for its
            // replay (merge at ~925 ms).  Tag aliasing would flush it.
            .with_relocation_timeout(SimDuration::from_millis(700))
            .with_wal_checkpoint_every(8);
        let mut sys = SystemBuilder::new(&Topology::figure5())
            .config(config)
            .link_delay(DelayModel::constant_millis(5))
            .seed(37)
            .build()
            .unwrap();
        sys.add_client(
            CONSUMER,
            LogicalMobilityMode::LocationDependent,
            &[OLD_BROKER, NEW_BROKER],
            vec![
                (
                    SimTime::from_millis(1),
                    ClientAction::Attach {
                        broker: sys.broker_node(OLD_BROKER).unwrap(),
                    },
                ),
                (SimTime::from_millis(2), ClientAction::Subscribe(filter())),
                // Move 1 arms guard tag 0 at broker B1 (fires ~905 ms).
                (
                    SimTime::from_millis(200),
                    ClientAction::MoveTo {
                        broker: sys.broker_node(NEW_BROKER).unwrap(),
                    },
                ),
                // Move 2 returns to B6.
                (
                    SimTime::from_millis(500),
                    ClientAction::MoveTo {
                        broker: sys.broker_node(OLD_BROKER).unwrap(),
                    },
                ),
                // Move 3 back to B1: a fresh holding at the broker about to
                // crash.
                (
                    SimTime::from_millis(870),
                    ClientAction::MoveTo {
                        broker: sys.broker_node(NEW_BROKER).unwrap(),
                    },
                ),
            ],
        )
        .unwrap();
        let mut script = vec![(
            SimTime::from_millis(1),
            ClientAction::Attach {
                broker: sys.broker_node(7).unwrap(),
            },
        )];
        // Three carefully phased publication waves around move 3 (870 ms):
        // the steady wave ends at 845 ms so nothing sits in the one-pub
        // in-flight window at the move instant (which would add the benign
        // bounded hand-over duplicate and obscure this regression); a tail
        // burst at 865–880 ms arrives at B6 only after the detach (filling
        // the counterpart the replay must carry) and at B1 only after the
        // crash (held envelopes are volatile); the final wave from 1000 ms
        // exercises live delivery through the restarted broker.
        for i in 0..159u64 {
            script.push((
                SimTime::from_millis(50 + i * 5),
                ClientAction::Publish(sample(i)),
            ));
        }
        for i in 159..163u64 {
            script.push((
                SimTime::from_millis(865 + (i - 159) * 5),
                ClientAction::Publish(sample(i)),
            ));
        }
        for i in 163..203u64 {
            script.push((
                SimTime::from_millis(1000 + (i - 163) * 5),
                ClientAction::Publish(sample(i)),
            ));
        }
        sys.add_client(
            PRODUCER,
            LogicalMobilityMode::LocationDependent,
            &[7],
            script,
        )
        .unwrap();

        sys.run_until(SimTime::from_millis(885));
        if crash {
            // Crash B1 while its third-relocation holding is open and the
            // stale move-1 guard timer is still queued against it.
            sys.crash_and_restart_broker(NEW_BROKER).unwrap();
        }
        sys.run_until(SimTime::from_secs(30));
        sys.client_log(CONSUMER).unwrap().deliveries().to_vec()
    };
    let oracle = run_triple_move(false);
    let crashed = run_triple_move(true);
    assert_eq!(
        crashed, oracle,
        "a stale pre-crash timer must not flush a recovered holding"
    );
    assert_eq!(
        oracle.len(),
        203,
        "oracle stream complete across three moves"
    );
}
