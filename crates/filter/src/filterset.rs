//! Covering-aware filter collections.
//!
//! [`FilterSet`] is the building block of broker routing tables: a set of
//! filters associated with one destination, optionally reduced under the
//! covering relation so that only the most general filters are kept
//! (Rebeca's *covering routing*), and optionally compacted further by
//! perfect merging (*merging routing*).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::filter::Filter;
use crate::notification::Notification;

/// Outcome of inserting a filter into a [`FilterSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The filter was added as a new, independent entry.
    Added,
    /// The filter was already covered by an existing entry; nothing changed.
    Covered,
    /// The filter was added and replaced `n` existing entries that it covers.
    Replaced(usize),
    /// The filter was merged with an existing entry into a new entry.
    Merged,
}

/// A set of filters with covering-based redundancy elimination.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FilterSet {
    filters: Vec<Filter>,
}

impl FilterSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of filters currently stored.
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// `true` when no filters are stored.
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }

    /// Iterates over the stored filters.
    pub fn iter(&self) -> impl Iterator<Item = &Filter> {
        self.filters.iter()
    }

    /// Returns `true` when any stored filter matches the notification.
    pub fn matches(&self, notification: &Notification) -> bool {
        self.filters.iter().any(|f| f.matches(notification))
    }

    /// Returns `true` when any stored filter covers the given filter.
    pub fn covers(&self, filter: &Filter) -> bool {
        self.filters.iter().any(|f| f.covers(filter))
    }

    /// Returns `true` when the exact filter (structural equality) is stored.
    pub fn contains(&self, filter: &Filter) -> bool {
        self.filters.iter().any(|f| f == filter)
    }

    /// Inserts a filter without any covering optimization (simple routing).
    pub fn insert_simple(&mut self, filter: Filter) -> InsertOutcome {
        if self.contains(&filter) {
            return InsertOutcome::Covered;
        }
        self.filters.push(filter);
        InsertOutcome::Added
    }

    /// Inserts a filter, applying covering-based optimization: if an existing
    /// filter covers the new one nothing changes; otherwise every existing
    /// filter covered by the new one is removed.
    pub fn insert_covering(&mut self, filter: Filter) -> InsertOutcome {
        if self.covers(&filter) {
            return InsertOutcome::Covered;
        }
        let before = self.filters.len();
        self.filters.retain(|f| !filter.covers(f));
        let removed = before - self.filters.len();
        self.filters.push(filter);
        if removed > 0 {
            InsertOutcome::Replaced(removed)
        } else {
            InsertOutcome::Added
        }
    }

    /// Inserts a filter, first trying a perfect merge with an existing entry
    /// and falling back to covering insertion.
    pub fn insert_merging(&mut self, filter: Filter) -> InsertOutcome {
        if self.covers(&filter) {
            return InsertOutcome::Covered;
        }
        for i in 0..self.filters.len() {
            if let Some(merged) = self.filters[i].try_merge(&filter) {
                self.filters.remove(i);
                // The merged filter may in turn cover or merge with others.
                self.insert_merging(merged);
                return InsertOutcome::Merged;
            }
        }
        self.insert_covering(filter)
    }

    /// Removes the exact filter (structural equality).  Returns `true` when
    /// something was removed.
    pub fn remove(&mut self, filter: &Filter) -> bool {
        let before = self.filters.len();
        self.filters.retain(|f| f != filter);
        before != self.filters.len()
    }

    /// Removes every filter covered by `filter` (including exact matches).
    /// Returns the removed filters.
    pub fn remove_covered_by(&mut self, filter: &Filter) -> Vec<Filter> {
        let (removed, kept): (Vec<Filter>, Vec<Filter>) = std::mem::take(&mut self.filters)
            .into_iter()
            .partition(|f| filter.covers(f));
        self.filters = kept;
        removed
    }

    /// Removes every stored filter and returns them.
    pub fn drain(&mut self) -> Vec<Filter> {
        std::mem::take(&mut self.filters)
    }
}

impl fmt::Display for FilterSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, filter) in self.filters.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{filter}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<Filter> for FilterSet {
    fn from_iter<T: IntoIterator<Item = Filter>>(iter: T) -> Self {
        let mut set = FilterSet::new();
        for f in iter {
            set.insert_covering(f);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;

    fn cost_lt(v: i64) -> Filter {
        Filter::new()
            .with("service", Constraint::Eq("parking".into()))
            .with("cost", Constraint::Lt(v.into()))
    }

    fn loc_set(locs: &[u32]) -> Filter {
        Filter::new().with("location", Constraint::any_location_of(locs.iter().copied()))
    }

    #[test]
    fn simple_insert_keeps_duplicates_out_but_not_covered_filters() {
        let mut set = FilterSet::new();
        assert_eq!(set.insert_simple(cost_lt(3)), InsertOutcome::Added);
        assert_eq!(set.insert_simple(cost_lt(3)), InsertOutcome::Covered);
        assert_eq!(set.insert_simple(cost_lt(10)), InsertOutcome::Added);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn covering_insert_discards_covered_new_filter() {
        let mut set = FilterSet::new();
        set.insert_covering(cost_lt(10));
        assert_eq!(set.insert_covering(cost_lt(3)), InsertOutcome::Covered);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn covering_insert_replaces_covered_existing_filters() {
        let mut set = FilterSet::new();
        set.insert_covering(cost_lt(3));
        // cost < 5 covers cost < 3, so it replaces it immediately.
        assert_eq!(set.insert_covering(cost_lt(5)), InsertOutcome::Replaced(1));
        assert_eq!(set.len(), 1);
        assert_eq!(set.insert_covering(cost_lt(10)), InsertOutcome::Replaced(1));
        assert_eq!(set.len(), 1);
        assert!(set.covers(&cost_lt(3)));
    }

    #[test]
    fn merging_insert_unions_location_sets() {
        let mut set = FilterSet::new();
        set.insert_merging(loc_set(&[1, 2]));
        assert_eq!(set.insert_merging(loc_set(&[3])), InsertOutcome::Merged);
        assert_eq!(set.len(), 1);
        assert!(set.covers(&loc_set(&[1, 2, 3])));
    }

    #[test]
    fn merging_insert_cascades() {
        let mut set = FilterSet::new();
        set.insert_merging(loc_set(&[1]));
        set.insert_merging(loc_set(&[5]));
        // Merging {2} with {1} gives {1,2}; this cannot further merge with {5}
        // by covering but can by set-union, producing a single entry.
        set.insert_merging(loc_set(&[2]));
        assert_eq!(set.len(), 1);
        assert!(set.covers(&loc_set(&[1, 2, 5])));
    }

    #[test]
    fn matches_any_stored_filter() {
        let mut set = FilterSet::new();
        set.insert_covering(cost_lt(3));
        set.insert_covering(loc_set(&[7]));
        let n = Notification::builder()
            .attr("location", crate::Value::Location(7))
            .build();
        assert!(set.matches(&n));
        let miss = Notification::builder()
            .attr("location", crate::Value::Location(8))
            .build();
        assert!(!set.matches(&miss));
    }

    #[test]
    fn remove_exact_and_covered() {
        let mut set = FilterSet::new();
        set.insert_simple(cost_lt(3));
        set.insert_simple(cost_lt(5));
        assert!(set.remove(&cost_lt(3)));
        assert!(!set.remove(&cost_lt(3)));
        assert_eq!(set.len(), 1);

        set.insert_simple(cost_lt(3));
        let removed = set.remove_covered_by(&cost_lt(10));
        assert_eq!(removed.len(), 2);
        assert!(set.is_empty());
    }

    #[test]
    fn drain_empties_the_set() {
        let mut set: FilterSet = vec![cost_lt(3), loc_set(&[1])].into_iter().collect();
        let drained = set.drain();
        assert_eq!(drained.len(), 2);
        assert!(set.is_empty());
    }

    #[test]
    fn from_iterator_applies_covering() {
        let set: FilterSet = vec![cost_lt(3), cost_lt(10), cost_lt(5)].into_iter().collect();
        assert_eq!(set.len(), 1);
        assert!(set.covers(&cost_lt(9)));
    }

    #[test]
    fn display_lists_filters() {
        let mut set = FilterSet::new();
        set.insert_simple(Filter::universal());
        assert_eq!(set.to_string(), "[(true)]");
    }
}
