//! Instrumentation-overhead bench: the quickstart-plus-relocation scenario
//! with the observability journal enabled (default) vs disabled (capacity
//! 0), plus the metric-name microbench behind the `Cow<'static, str>`
//! counter keys.
//!
//! The tentpole claim of the observability PR is that tracing is cheap
//! enough to leave on: counters, gauges and histograms always record, and
//! the only toggleable cost is the structured event journal (whose hot-path
//! call sites are guarded by `journal_enabled`, so a disabled journal
//! never even formats its detail strings).
//!
//! Separate measurement windows drift by far more than the overhead being
//! bounded (CPU frequency and scheduling noise alone exceed 5% between two
//! multi-hundred-millisecond windows on a busy machine), so the overhead is
//! measured as the *median of interleaved pairs*: each round times one
//! baseline and one instrumented scenario back to back (alternating order
//! between rounds), and the per-round ratio cancels whatever drift both
//! sides shared.  The median ratio is reported as the synthetic sample
//! `obs/quickstart/overhead_x1000/200` (ratio scaled by 1000 so it rides
//! the `ns_per_iter` field), which `scripts/bench_gate.py` bounds by
//! `BENCH_GATE_OBS_OVERHEAD` (default 5%).
//!
//! The distributed-tracing layer is bounded the same way: the synthetic
//! sample `obs/quickstart/trace_overhead_x1000/200` is the median
//! interleaved ratio of the scenario at the production-typical 1%
//! sampling rate over the scenario with sampling off, bounded by
//! `BENCH_GATE_TRACE_OVERHEAD` (default 5%).  At 1% the dominant cost is
//! the *unsampled* hot path — the per-publication hash plus the
//! guaranteed-empty span drain — which is the deploy-it-everywhere claim
//! (the same rate regime Dapper reports sub-percent overhead for).  Full
//! sampling (`trace_sample(1.0)`: every publication drafts its
//! publish/match/route/deliver chain, the relocation its phase spans) is
//! *not* a production configuration on a workload this CPU-bound — eight
//! span records against ~5us of routing work is measurable by design — so
//! `obs/quickstart/trace_full_x1000/200` is reported and bounded only
//! against its own checked-in baseline (the absolute-median gate), not
//! against parity.
//!
//! The `obs/metrics` pair documents the counter-key satellite: `incr` with
//! a `&'static str` takes the zero-allocation `Cow::Borrowed` path, while
//! an owned `String` key (the cost every call paid before the `Cow`
//! rework, which built a fresh `String` per increment) allocates.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use rebeca_broker::ClientId;
use rebeca_core::{MobilitySystem, SystemBuilder};
use rebeca_filter::{Constraint, Filter, Notification};
use rebeca_sim::{DelayModel, Metrics, SimTime, Topology};

const PUBLICATIONS: u64 = 200;

fn subscription() -> Filter {
    Filter::new().with("service", Constraint::Eq("parking".into()))
}

fn vacancy(i: u64) -> Notification {
    Notification::builder()
        .attr("service", "parking")
        .attr("spot", i as i64)
        .build()
}

/// One full interactive scenario (3-broker line, consumer relocating
/// mid-stream) with the given journal ring capacity; 0 disables the
/// journal entirely.
fn run_quickstart(journal_capacity: usize) -> MobilitySystem {
    run_quickstart_traced(journal_capacity, 0.0)
}

/// [`run_quickstart`] with a distributed-trace sampling rate on top:
/// 1.0 spans every publication and the relocation, 0.0 is the untraced
/// default.
fn run_quickstart_traced(journal_capacity: usize, trace_rate: f64) -> MobilitySystem {
    let mut sys = SystemBuilder::new(&Topology::line(3))
        .link_delay(DelayModel::constant_millis(5))
        .seed(42)
        .trace_sample(trace_rate)
        .build()
        .expect("non-empty topology");
    sys.metrics_mut().set_journal_capacity(journal_capacity);
    let consumer = sys.connect(ClientId::new(1), 0).unwrap();
    consumer.subscribe(&mut sys, subscription()).unwrap();
    let producer = sys.connect(ClientId::new(2), 2).unwrap();
    for i in 0..PUBLICATIONS {
        sys.run_until(SimTime::from_millis(100 + i * 5));
        if i == 80 {
            consumer.move_to(&mut sys, 1).unwrap();
        }
        producer.publish(&mut sys, vacancy(i)).unwrap();
    }
    sys.run_until(SimTime::from_secs(3));
    sys
}

fn verify(sys: &MobilitySystem, label: &str) {
    let log = sys.client_log(ClientId::new(1)).unwrap();
    assert!(log.is_clean(), "{label}: {:?}", log.violations());
    assert_eq!(
        log.distinct_publisher_seqs(ClientId::new(2)),
        (1..=PUBLICATIONS).collect::<Vec<u64>>(),
        "{label}: incomplete delivery"
    );
}

/// Times one closure invocation in seconds.
fn time_one<T>(f: impl FnOnce() -> T) -> f64 {
    let start = std::time::Instant::now();
    black_box(f());
    start.elapsed().as_secs_f64()
}

/// Median instrumented/baseline ratio over interleaved pairs.  Returns the
/// ratio and the number of pairs measured.
fn interleaved_overhead_ratio(
    baseline: impl Fn() -> MobilitySystem,
    instrumented: impl Fn() -> MobilitySystem,
) -> (f64, usize) {
    let measurement_ms = std::env::var("CRITERION_MEASUREMENT_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    // Each pair costs ~2 scenario runs (low single-digit milliseconds);
    // scale the pair count with the configured measurement window.
    let rounds = (measurement_ms / 4).clamp(12, 120) as usize;
    let mut ratios = Vec::with_capacity(rounds);
    for round in 0..rounds {
        // Alternate the order so a monotone drift penalizes both sides
        // equally across the round set.
        let (base, instr) = if round % 2 == 0 {
            let base = time_one(&baseline);
            let instr = time_one(&instrumented);
            (base, instr)
        } else {
            let instr = time_one(&instrumented);
            let base = time_one(&baseline);
            (base, instr)
        };
        ratios.push(instr / base);
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    (ratios[ratios.len() / 2], rounds)
}

/// Appends a synthetic ratio sample to `CRITERION_JSON` in the same
/// concatenated-array format the criterion shim emits, so
/// `scripts/bench_gate.py` picks it up alongside the regular samples.
fn report_overhead(name: &str, ratio: f64, rounds: usize) {
    println!("{name:<60} ratio: {ratio:>10.4}x ({rounds} interleaved pairs)");
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let record = format!(
        "[\n  {{\"name\": \"{name}\", \"ns_per_iter\": {:.1}, \"iters\": {rounds}}}\n]\n",
        ratio * 1000.0
    );
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, record.as_bytes()));
    if let Err(e) = result {
        eprintln!("obs_bench: cannot write {path}: {e}");
    }
}

fn bench_instrumentation_overhead(c: &mut Criterion) {
    // Equivalence outside the timed loop: both configurations deliver the
    // identical clean stream, and the instrumented one actually observed
    // the relocation (journal events + a populated hand-off histogram) —
    // the overhead comparison is between real work and real tracing.
    let baseline = run_quickstart(0);
    let instrumented = run_quickstart(1024);
    verify(&baseline, "baseline");
    verify(&instrumented, "instrumented");
    assert!(baseline.metrics().journal().is_empty());
    assert!(!instrumented.metrics().journal().is_empty());
    assert!(
        instrumented.status().brokers[0]
            .handoff_latency_micros
            .count()
            > 0
    );

    // The gated signals: drift-cancelling interleaved pairs, one for the
    // journal and one for the distributed-tracing layer.
    let (ratio, rounds) = interleaved_overhead_ratio(|| run_quickstart(0), || run_quickstart(1024));
    report_overhead("obs/quickstart/overhead_x1000/200", ratio, rounds);

    // Tracing: journal on in both sides of each pair, so the pairs isolate
    // the tracing cost alone.  The gated pair runs the production-typical
    // 1% sampling rate (the cost there is the unsampled hot path: one hash
    // per publication, no allocation); the full-sampling pair is reported
    // for visibility and bounded only by its own baseline.
    let traced = run_quickstart_traced(1024, 1.0);
    verify(&traced, "traced");
    assert!(
        traced.metrics().spans().spans().next().is_some(),
        "full sampling must record spans"
    );
    assert!(
        instrumented.metrics().spans().is_empty(),
        "the untraced run must record none"
    );
    let (ratio, rounds) = interleaved_overhead_ratio(
        || run_quickstart_traced(1024, 0.0),
        || run_quickstart_traced(1024, 0.01),
    );
    report_overhead("obs/quickstart/trace_overhead_x1000/200", ratio, rounds);
    let (ratio, rounds) = interleaved_overhead_ratio(
        || run_quickstart_traced(1024, 0.0),
        || run_quickstart_traced(1024, 1.0),
    );
    report_overhead("obs/quickstart/trace_full_x1000/200", ratio, rounds);

    // The absolute medians, for the human-readable report and the
    // machine-baseline comparison.
    let mut group = c.benchmark_group("obs/quickstart");
    group.sample_size(20);
    group.bench_with_input(BenchmarkId::new("baseline", PUBLICATIONS), &(), |b, _| {
        b.iter(|| black_box(run_quickstart(0)))
    });
    group.bench_with_input(
        BenchmarkId::new("instrumented", PUBLICATIONS),
        &(),
        |b, _| b.iter(|| black_box(run_quickstart(1024))),
    );
    group.bench_with_input(BenchmarkId::new("traced", PUBLICATIONS), &(), |b, _| {
        b.iter(|| black_box(run_quickstart_traced(1024, 1.0)))
    });
    group.finish();
}

/// The counter names every message dispatch touches.
const HOT_COUNTERS: [&str; 8] = [
    "broker.rx.publish",
    "broker.tx.notification",
    "broker.rx.deliver",
    "broker.tx.deliver",
    "network.messages",
    "engine.forwards",
    "broker.rx.subscribe",
    "broker.tx.subscribe",
];

fn bench_counter_keys(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs/metrics");
    group.bench_with_input(
        BenchmarkId::new("incr_static", HOT_COUNTERS.len()),
        &(),
        |b, _| {
            let mut metrics = Metrics::new();
            b.iter(|| {
                for name in HOT_COUNTERS {
                    metrics.incr(black_box(name));
                }
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("incr_owned", HOT_COUNTERS.len()),
        &(),
        |b, _| {
            let mut metrics = Metrics::new();
            b.iter(|| {
                for name in HOT_COUNTERS {
                    // What every increment cost before the Cow keys: an
                    // owned String built per call.
                    metrics.incr(black_box(name).to_string());
                }
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_instrumentation_overhead, bench_counter_keys);
criterion_main!(benches);
