//! Parking guidance: the paper's motivating scenario for logical mobility.
//!
//! A car drives through a 5×5 grid of city blocks looking for a free parking
//! space "in the vicinity of its current location" (at most one block away).
//! The subscription is location dependent: it contains the `myloc` marker,
//! and the middleware keeps the per-hop filters aligned with the car's
//! position by pre-subscribing to the possible next blocks (`ploc`) at
//! brokers further away from the car (Section 5 of the paper).
//!
//! The car is an interactive [`rebeca::Session`]: it announces each block as
//! it drives, interleaved with the running system — exactly how an embedded
//! navigation unit would use the middleware.  The city's parking sensors are
//! scripted clients.
//!
//! Run with:
//! ```text
//! cargo run --example parking_guidance
//! ```

use rebeca::{
    AdaptivityPlan, BrokerConfig, ClientAction, ClientId, Constraint, DelayModel,
    LocationDependentFilter, LocationId, LogicalMobilityMode, Notification, RebecaError,
    RoutingStrategyKind, SimDuration, SimTime, SystemBuilder, Topology, Value,
};

fn vacancy(block: LocationId, spot: i64) -> Notification {
    Notification::builder()
        .attr("service", "parking")
        .attr("location", Value::Location(block.raw()))
        .attr("cost", spot % 4)
        .attr("spot", spot)
        .build()
}

fn main() -> Result<(), RebecaError> {
    // The city: a 5×5 grid of blocks; cars move one block per step.
    let city = rebeca::MovementGraph::grid(5, 5);

    // The pub/sub deployment: four brokers in a line — the car talks to
    // broker 0, the city's parking sensors publish through broker 3.
    let mut system = SystemBuilder::new(&Topology::line(4))
        .config(
            BrokerConfig::default()
                .with_strategy(RoutingStrategyKind::Covering)
                .with_movement_graph(city.clone())
                .with_relocation_timeout(SimDuration::from_secs(10)),
        )
        .link_delay(DelayModel::constant_millis(10))
        .seed(7)
        .build()?;

    // The parking sensors: one producer per row of the city, each reporting a
    // vacancy somewhere in its row every 150 ms.
    for row in 0..5u32 {
        let sensor = ClientId::new(100 + row);
        let mut script = vec![(
            SimTime::from_millis(1),
            ClientAction::Attach {
                broker: system.broker_node(3)?,
            },
        )];
        let mut t = SimTime::from_millis(50 + row as u64 * 10);
        let mut spot = 0i64;
        while t < SimTime::from_secs(6) {
            let block = LocationId::new(row * 5 + (spot as u32 % 5));
            script.push((t, ClientAction::Publish(vacancy(block, spot))));
            spot += 1;
            t += SimDuration::from_millis(150);
        }
        system.add_client(sensor, LogicalMobilityMode::LocationDependent, &[3], script)?;
    }

    // The car: subscribes to "free parking spaces at most one block from
    // myloc" and then drives along the first row of the grid, one block per
    // second.  The adaptivity plan: the car stays ~1 s per block,
    // subscriptions take ~10 ms per hop to process — the paper's rule
    // derives how much "uncertainty" each hop needs.
    let car = system.connect(ClientId::new(1), 0)?;
    car.loc_subscribe(
        &mut system,
        LocationDependentFilter::new("location", 1)
            .with_concrete("service", Constraint::Eq("parking".into())),
        AdaptivityPlan::adaptive(1_000_000, &[10_000, 10_000, 10_000]),
        LocationId::new(0),
    )?;

    // Drive east along the first row: blocks 0, 1, 2, 3, 4.
    for (step, block) in [1u32, 2, 3, 4].iter().enumerate() {
        system.run_until(SimTime::from_secs(1 + step as u64));
        car.set_location(&mut system, LocationId::new(*block))?;
    }
    system.run_until(SimTime::from_secs(6));

    let log = car.log(&system)?;
    println!("vacancies delivered to the car: {}", log.len());
    println!(
        "total messages in the network : {}",
        system.total_messages()
    );

    // Every delivered vacancy is at most one block away from where the car
    // was when its border broker forwarded it.
    let visited: Vec<LocationId> = (0..5).map(LocationId::new).collect();
    let mut per_block = std::collections::BTreeMap::new();
    for delivery in log.deliveries() {
        let block = delivery
            .envelope
            .notification
            .get("location")
            .and_then(|v| v.as_location())
            .unwrap();
        *per_block.entry(block).or_insert(0u32) += 1;
        let near_route = visited.iter().any(|b| {
            city.distance(LocationId::new(block), *b)
                .unwrap_or(usize::MAX)
                <= 1
        });
        assert!(
            near_route,
            "vacancy at block {block} is far from the car's route"
        );
    }
    println!("\nvacancies per block (car drove along blocks 0..4):");
    for (block, count) in per_block {
        println!("  block {block:>2}: {count}");
    }
    println!("\nparking guidance finished: only nearby vacancies were delivered.");
    Ok(())
}
