//! Deterministic discrete-event network simulator for the Rebeca mobility
//! reproduction.
//!
//! The paper's system model (Section 2.1) is a graph of brokers and clients
//! connected by point-to-point, FIFO-order, error-free links with
//! probabilistically distributed delays.  The original evaluation ran on the
//! Java Rebeca implementation over TCP; this crate substitutes a
//! discrete-event simulator that preserves exactly the properties the
//! algorithms rely on — FIFO links, configurable delays (`t_d`, `δ_i`),
//! virtual time — while making every experiment deterministic and
//! repeatable (see DESIGN.md, "Substitutions").
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution virtual time;
//! * [`DelayModel`] — constant / uniform / jittered link delays;
//! * [`Network`] / [`Node`] / [`Context`] — the event loop, FIFO links and
//!   the node behaviour trait;
//! * [`Topology`] — structural descriptions of broker graphs (lines, stars,
//!   balanced trees, the paper's Figure 5 layout, random trees);
//! * [`Metrics`] — named counters and time-series samples used to regenerate
//!   the paper's Figure 9.
//!
//! # Example
//!
//! ```
//! use rebeca_sim::{Context, DelayModel, Incoming, Network, Node, SimDuration, SimTime};
//!
//! /// A node that counts the messages it receives.
//! #[derive(Default)]
//! struct Counter(u64);
//!
//! impl Node for Counter {
//!     type Message = &'static str;
//!     fn handle(&mut self, ctx: &mut Context<'_, &'static str>, event: Incoming<&'static str>) {
//!         if let Incoming::Message { .. } = event {
//!             self.0 += 1;
//!             ctx.metrics().incr("received");
//!         }
//!     }
//! }
//!
//! let mut net: Network<Counter> = Network::new(42);
//! let a = net.add_node(Counter::default());
//! let b = net.add_node(Counter::default());
//! net.connect(a, b, DelayModel::constant_millis(5));
//! net.inject(a, "hello");
//! net.run(10);
//! assert_eq!(net.metrics().counter("received"), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delay;
mod metrics;
mod network;
mod time;
mod topology;

pub use delay::DelayModel;
pub use metrics::{MetricName, Metrics, Sample};
pub use network::{Context, Harvest, Incoming, Network, Node, NodeId, ParseNodeIdError};
pub use rebeca_obs::{EventJournal, Histogram, ObsEvent};
pub use time::{SimDuration, SimTime};
pub use topology::Topology;
