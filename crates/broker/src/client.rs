//! Client-side state: the delivery log of a consumer.
//!
//! [`ConsumerLog`] records every delivery a consumer receives and checks the
//! quality-of-service properties the paper requires from the mobility
//! support (Section 3.2): *completeness* (no notification is lost),
//! *no duplicates*, and *sender-FIFO ordering*.  The relocation protocol also
//! reads the last received sequence number per subscription from this log
//! when re-subscribing at a new border broker.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use rebeca_filter::Filter;

use crate::ids::ClientId;
use crate::message::Delivery;

/// A violation of the delivery quality of service detected by the log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeliveryViolation {
    /// The same publication was delivered twice for the same subscription
    /// (identified by the publisher and its publication sequence number;
    /// border-broker delivery sequence numbers restart per broker and are
    /// therefore not used for this check).
    Duplicate {
        /// The affected subscription.
        filter: Filter,
        /// The publisher of the duplicated notification.
        publisher: ClientId,
        /// The duplicated publication sequence number.
        publisher_seq: u64,
    },
    /// Two deliveries from the same publisher arrived out of publication
    /// order (sender-FIFO violation).
    FifoViolation {
        /// The publisher whose order was violated.
        publisher: ClientId,
        /// The publisher sequence number seen before.
        earlier: u64,
        /// The (smaller) publisher sequence number seen after.
        later: u64,
    },
}

/// The delivery log of one consumer.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConsumerLog {
    deliveries: Vec<Delivery>,
    last_seq: BTreeMap<Filter, u64>,
    seen_publications: BTreeMap<Filter, Vec<(ClientId, u64)>>,
    last_publisher_seq: BTreeMap<ClientId, u64>,
    violations: Vec<DeliveryViolation>,
}

impl ConsumerLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a delivery, checking for duplicates and sender-FIFO
    /// violations on the fly.
    pub fn record(&mut self, delivery: Delivery) {
        let publication = (delivery.envelope.publisher, delivery.envelope.publisher_seq);
        let seen = self
            .seen_publications
            .entry(delivery.filter.clone())
            .or_default();
        if seen.contains(&publication) {
            self.violations.push(DeliveryViolation::Duplicate {
                filter: delivery.filter.clone(),
                publisher: publication.0,
                publisher_seq: publication.1,
            });
        }
        seen.push(publication);

        let last = self.last_seq.entry(delivery.filter.clone()).or_insert(0);
        if delivery.seq > *last {
            *last = delivery.seq;
        }

        let publisher = delivery.envelope.publisher;
        let last_pub = self.last_publisher_seq.entry(publisher).or_insert(0);
        if delivery.envelope.publisher_seq < *last_pub {
            self.violations.push(DeliveryViolation::FifoViolation {
                publisher,
                earlier: *last_pub,
                later: delivery.envelope.publisher_seq,
            });
        } else {
            *last_pub = delivery.envelope.publisher_seq;
        }

        self.deliveries.push(delivery);
    }

    /// Every delivery recorded so far, in arrival order.
    pub fn deliveries(&self) -> &[Delivery] {
        &self.deliveries
    }

    /// Number of recorded deliveries.
    pub fn len(&self) -> usize {
        self.deliveries.len()
    }

    /// `true` when nothing has been delivered yet.
    pub fn is_empty(&self) -> bool {
        self.deliveries.is_empty()
    }

    /// The highest sequence number received for a subscription (0 when
    /// nothing arrived yet) — the number echoed in a re-subscription after
    /// relocation.
    pub fn last_seq(&self, filter: &Filter) -> u64 {
        self.last_seq.get(filter).copied().unwrap_or(0)
    }

    /// A copy of the log with the trace context stripped from every
    /// envelope.
    ///
    /// Distributed-trace sampling is deployment configuration, not
    /// payload: the same scenario run with and without `--trace-sample`
    /// (or on drivers that allocate span ids in a different local order)
    /// must still produce byte-identical *deliveries*.  Cross-driver
    /// equivalence tests compare `log.without_trace()` when the runs'
    /// sampling configurations differ.
    pub fn without_trace(&self) -> ConsumerLog {
        let mut log = self.clone();
        for delivery in &mut log.deliveries {
            delivery.envelope.trace = None;
        }
        log
    }

    /// The violations detected so far.
    pub fn violations(&self) -> &[DeliveryViolation] {
        &self.violations
    }

    /// `true` when no duplicate or FIFO violation has been observed.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The publisher sequence numbers received from one publisher, in arrival
    /// order (used by tests to assert completeness).
    pub fn publisher_seqs(&self, publisher: ClientId) -> Vec<u64> {
        self.deliveries
            .iter()
            .filter(|d| d.envelope.publisher == publisher)
            .map(|d| d.envelope.publisher_seq)
            .collect()
    }

    /// The distinct publisher sequence numbers received from one publisher
    /// (sorted).  With a single subscription this is the set of publications
    /// that actually reached the consumer.
    pub fn distinct_publisher_seqs(&self, publisher: ClientId) -> Vec<u64> {
        let mut seqs = self.publisher_seqs(publisher);
        seqs.sort_unstable();
        seqs.dedup();
        seqs
    }

    /// Checks completeness against an expected set of publisher sequence
    /// numbers: returns the numbers that never arrived.
    pub fn missing_from(
        &self,
        publisher: ClientId,
        expected: impl IntoIterator<Item = u64>,
    ) -> Vec<u64> {
        let received = self.distinct_publisher_seqs(publisher);
        expected
            .into_iter()
            .filter(|seq| !received.contains(seq))
            .collect()
    }

    /// Number of duplicate deliveries observed (per publisher sequence
    /// numbers), independent of border-broker sequence numbers.  Used by the
    /// Figure 2 experiment, which counts duplicates produced by the naive
    /// hand-off even though each duplicate carries a fresh delivery sequence
    /// number from a different broker.
    pub fn duplicate_publications(&self, publisher: ClientId) -> usize {
        let all = self.publisher_seqs(publisher);
        let distinct = self.distinct_publisher_seqs(publisher);
        all.len() - distinct.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Envelope;
    use rebeca_filter::{Constraint, Notification};

    fn parking() -> Filter {
        Filter::new().with("service", Constraint::Eq("parking".into()))
    }

    fn delivery(seq: u64, publisher_seq: u64) -> Delivery {
        Delivery {
            subscriber: ClientId::new(1),
            filter: parking(),
            seq,
            envelope: Envelope::new(
                ClientId::new(9),
                publisher_seq,
                Notification::builder().attr("service", "parking").build(),
            ),
        }
    }

    #[test]
    fn clean_run_has_no_violations() {
        let mut log = ConsumerLog::new();
        for i in 1..=5 {
            log.record(delivery(i, i));
        }
        assert!(log.is_clean());
        assert_eq!(log.len(), 5);
        assert_eq!(log.last_seq(&parking()), 5);
        assert_eq!(log.publisher_seqs(ClientId::new(9)), vec![1, 2, 3, 4, 5]);
        assert!(log.missing_from(ClientId::new(9), 1..=5).is_empty());
    }

    #[test]
    fn duplicates_are_detected() {
        let mut log = ConsumerLog::new();
        log.record(delivery(1, 1));
        log.record(delivery(1, 1));
        assert!(!log.is_clean());
        assert!(matches!(
            log.violations()[0],
            DeliveryViolation::Duplicate {
                publisher_seq: 1,
                ..
            }
        ));
        assert_eq!(log.duplicate_publications(ClientId::new(9)), 1);
    }

    #[test]
    fn fifo_violations_are_detected() {
        let mut log = ConsumerLog::new();
        log.record(delivery(1, 5));
        log.record(delivery(2, 3));
        assert!(!log.is_clean());
        assert!(matches!(
            log.violations()[0],
            DeliveryViolation::FifoViolation {
                earlier: 5,
                later: 3,
                ..
            }
        ));
    }

    #[test]
    fn missing_publications_are_reported() {
        let mut log = ConsumerLog::new();
        log.record(delivery(1, 1));
        log.record(delivery(2, 3));
        assert_eq!(log.missing_from(ClientId::new(9), 1..=3), vec![2]);
        assert_eq!(log.distinct_publisher_seqs(ClientId::new(9)), vec![1, 3]);
    }

    #[test]
    fn last_seq_of_unknown_filter_is_zero() {
        let log = ConsumerLog::new();
        assert_eq!(log.last_seq(&parking()), 0);
        assert!(log.is_empty());
    }

    #[test]
    fn publisher_seqs_are_separated_by_publisher() {
        let mut log = ConsumerLog::new();
        log.record(delivery(1, 1));
        let mut other = delivery(2, 7);
        other.envelope.publisher = ClientId::new(8);
        log.record(other);
        assert_eq!(log.publisher_seqs(ClientId::new(9)), vec![1]);
        assert_eq!(log.publisher_seqs(ClientId::new(8)), vec![7]);
        assert!(log.is_clean());
    }
}
