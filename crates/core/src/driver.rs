//! The sans-IO driver boundary between the mobility runtime and an event
//! loop.
//!
//! The broker and client runtimes of this workspace are written sans-IO:
//! a node ([`MobileBroker`](crate::MobileBroker),
//! [`ClientNode`](crate::ClientNode)) is a pure state machine that consumes
//! timestamped [`Incoming`](rebeca_sim::Incoming) events and, through the
//! harvest side of [`Context`](rebeca_sim::Context), emits outgoing messages
//! and timer requests — it never sleeps, never opens a socket, never reads a
//! clock.  What *moves* those messages and *fires* those timers is a
//! [`Driver`].
//!
//! Two drivers ship with the workspace:
//!
//! * [`SimDriver`] — the deterministic discrete-event simulator of
//!   `rebeca-sim` (virtual time, seeded delays, single-threaded).  This is
//!   the testbed every protocol test runs on.
//! * [`ThreadedDriver`](crate::ThreadedDriver) — a wall-clock, in-process
//!   deployment: one thread per node, `std::sync::mpsc` channels as FIFO
//!   links, real [`std::time::Instant`] timers.  No async runtime required.
//!
//! [`MobilitySystem`](crate::MobilitySystem) is written against the trait
//! only, so a future network transport (a tokio reactor, an io_uring loop, a
//! process-per-broker harness) plugs in by implementing [`Driver`] without
//! touching the protocol code.

use rebeca_obs::StatusReport;
use rebeca_sim::{DelayModel, Metrics, Network, NodeId, SimTime};

use crate::driver_util::{broker_status, in_process_links};
use crate::system::SystemNode;

/// An event loop hosting the deployment's nodes: it delivers timestamped
/// events *into* the sans-IO runtime and shuttles the harvested outgoing
/// messages and timer requests between nodes.
///
/// Implementations must preserve the transport contract the protocols are
/// verified against (Section 2.1 of the paper): links are point-to-point,
/// error-free and FIFO per direction, and a node's timers fire in tag order
/// at (or after) their requested time.
///
/// Drivers are `Send`: a whole [`MobilitySystem`](crate::MobilitySystem)
/// can move into a background thread, which is how multi-driver deployments
/// (e.g. the TCP transport of `rebeca-net` hosting brokers and clients in
/// separate drivers of one process) pump their broker side while the
/// application thread drives the client side.
pub trait Driver: Send {
    /// Adds a node and returns its id.
    fn add_node(&mut self, node: SystemNode) -> NodeId;

    /// Creates the bidirectional FIFO link between two nodes unless it
    /// already exists.  Returns `true` when the link was created.
    fn ensure_link(&mut self, a: NodeId, b: NodeId, delay: DelayModel) -> bool;

    /// Schedules a timer event for a node at the given absolute time (times
    /// in the past fire as soon as the driver runs) with a caller-chosen tag.
    fn schedule_timer(&mut self, node: NodeId, at: SimTime, tag: u64);

    /// The driver's current time.  Virtual for [`SimDriver`]; elapsed wall
    /// time since construction for wall-clock drivers.
    fn now(&self) -> SimTime;

    /// Processes a single event if one is due.  Returns `false` when there
    /// was nothing to do.  Wall-clock drivers interpret this as a minimal
    /// forward step rather than exactly one event.
    fn step(&mut self) -> bool;

    /// Runs the event loop until the driver's clock reaches `until`.
    /// Returns the number of events processed.
    fn run_until(&mut self, until: SimTime) -> u64;

    /// Runs until no further events are pending, bounded by `max_events`
    /// (a safety net against livelock).  Returns the number of events
    /// processed.  On wall-clock drivers this sleeps through real timer
    /// gaps; prefer [`Driver::run_until`] there.
    fn run_to_idle(&mut self, max_events: u64) -> u64;

    /// Immutable access to a node.  Callers guarantee the id exists (ids
    /// come from [`Driver::add_node`]).
    fn node(&self, id: NodeId) -> &SystemNode;

    /// Mutable access to a node (e.g. to drain an interactive client's
    /// mailbox between runs).
    fn node_mut(&mut self, id: NodeId) -> &mut SystemNode;

    /// Replaces a node's state in place, returning the old node — the
    /// crash/restart hook: links and in-flight traffic addressed to the node
    /// are untouched.
    fn replace_node(&mut self, id: NodeId, node: SystemNode) -> SystemNode;

    /// Number of nodes hosted by the driver.
    fn node_count(&self) -> usize;

    /// Read access to the global metrics.
    fn metrics(&self) -> &Metrics;

    /// Mutable access to the global metrics.
    fn metrics_mut(&mut self) -> &mut Metrics;

    /// A live status report over every broker the driver hosts: routing
    /// table size, WAL depth and checkpoint age, restart epoch, relocation
    /// activity, per-link liveness.  Identical in shape across drivers, so
    /// tests assert deterministically on the simulator what `rebeca-ctl`
    /// reads from a TCP cluster.  The report's `events` slice is empty —
    /// tailing the journal goes through [`Driver::metrics`] in process and
    /// through the `StatusRequest` cursor over the wire.
    fn status(&self) -> StatusReport;
}

/// The discrete-event simulation driver: a thin adapter over
/// [`rebeca_sim::Network`] giving the deterministic virtual-time testbed the
/// [`Driver`] contract.
pub struct SimDriver {
    network: Network<SystemNode>,
}

impl SimDriver {
    /// Creates an empty simulated network whose random delays derive from
    /// `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            network: Network::new(seed),
        }
    }

    /// The underlying simulated network (e.g. for sim-only inspection that
    /// the driver contract does not cover).
    pub fn network(&self) -> &Network<SystemNode> {
        &self.network
    }
}

impl Driver for SimDriver {
    fn add_node(&mut self, node: SystemNode) -> NodeId {
        self.network.add_node(node)
    }

    fn ensure_link(&mut self, a: NodeId, b: NodeId, delay: DelayModel) -> bool {
        if self.network.has_link(a, b) {
            return false;
        }
        self.network.connect(a, b, delay);
        true
    }

    fn schedule_timer(&mut self, node: NodeId, at: SimTime, tag: u64) {
        let delay = at.since(self.network.now());
        self.network.schedule_timer(node, delay, tag);
    }

    fn now(&self) -> SimTime {
        self.network.now()
    }

    fn step(&mut self) -> bool {
        self.network.step()
    }

    fn run_until(&mut self, until: SimTime) -> u64 {
        self.network.run_until(until)
    }

    fn run_to_idle(&mut self, max_events: u64) -> u64 {
        self.network.run(max_events)
    }

    fn node(&self, id: NodeId) -> &SystemNode {
        self.network.node(id)
    }

    fn node_mut(&mut self, id: NodeId) -> &mut SystemNode {
        self.network.node_mut(id)
    }

    fn replace_node(&mut self, id: NodeId, node: SystemNode) -> SystemNode {
        self.network.replace_node(id, node)
    }

    fn node_count(&self) -> usize {
        self.network.len()
    }

    fn metrics(&self) -> &Metrics {
        self.network.metrics()
    }

    fn metrics_mut(&mut self) -> &mut Metrics {
        self.network.metrics_mut()
    }

    fn status(&self) -> StatusReport {
        let now = self.network.now();
        let metrics = self.network.metrics();
        let brokers = (0..self.network.len())
            .filter_map(|i| match self.network.node(NodeId(i)) {
                SystemNode::Broker(broker) => Some(broker_status(
                    i as u64,
                    broker,
                    metrics,
                    now,
                    broker.machine().generation(),
                    in_process_links(broker),
                )),
                SystemNode::Client(_) => None,
            })
            .collect();
        StatusReport {
            now_micros: now.as_micros(),
            node_count: self.network.len() as u64,
            brokers,
            events: Vec::new(),
        }
    }
}

impl std::fmt::Debug for SimDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimDriver")
            .field("network", &self.network)
            .finish()
    }
}
