//! Session-API overhead microbench: the quickstart scenario driven through
//! the pre-scripted adapter vs interactive sessions.
//!
//! The session redesign routes *both* paths through the same per-client
//! action queue (a scripted client is a thin adapter that replays its script
//! through the session machinery), so the two runs must cost the same — the
//! redesign may not add routing-path overhead.  `scripts/bench_gate.py`
//! gates the `session/quickstart/scripted` vs `session/quickstart/session`
//! ratio against `BENCH_session.json`.
//!
//! Both runs are verified (outside the timed loop) to deliver the identical
//! clean log, so the timings compare equivalent work.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use rebeca_broker::ClientId;
use rebeca_core::{ClientAction, LogicalMobilityMode, MobilitySystem, SystemBuilder};
use rebeca_filter::{Constraint, Filter, Notification};
use rebeca_sim::{DelayModel, SimTime, Topology};

const PUBLICATIONS: u64 = 200;

fn subscription() -> Filter {
    Filter::new().with("service", Constraint::Eq("parking".into()))
}

fn vacancy(i: u64) -> Notification {
    Notification::builder()
        .attr("service", "parking")
        .attr("spot", i as i64)
        .build()
}

fn system() -> MobilitySystem {
    SystemBuilder::new(&Topology::line(3))
        .link_delay(DelayModel::constant_millis(5))
        .seed(42)
        .build()
        .expect("non-empty topology")
}

/// The scripted run: everything pre-arranged, one `run_until` to the end.
fn run_scripted() -> MobilitySystem {
    let mut sys = system();
    sys.add_client(
        ClientId::new(1),
        LogicalMobilityMode::LocationDependent,
        &[0, 1],
        vec![
            (
                SimTime::from_millis(1),
                ClientAction::Attach {
                    broker: sys.broker_node(0).unwrap(),
                },
            ),
            (
                SimTime::from_millis(2),
                ClientAction::Subscribe(subscription()),
            ),
            (
                SimTime::from_millis(500),
                ClientAction::MoveTo {
                    broker: sys.broker_node(1).unwrap(),
                },
            ),
        ],
    )
    .unwrap();
    let mut script = vec![(
        SimTime::from_millis(1),
        ClientAction::Attach {
            broker: sys.broker_node(2).unwrap(),
        },
    )];
    for i in 0..PUBLICATIONS {
        script.push((
            SimTime::from_millis(100 + i * 5),
            ClientAction::Publish(vacancy(i)),
        ));
    }
    sys.add_client(
        ClientId::new(2),
        LogicalMobilityMode::LocationDependent,
        &[2],
        script,
    )
    .unwrap();
    sys.run_until(SimTime::from_secs(3));
    sys
}

/// The session run: the identical scenario issued imperatively, with
/// `run_until` interleaved per publication (the realistic interactive
/// access pattern).
fn run_session() -> MobilitySystem {
    let mut sys = system();
    let consumer = sys.connect(ClientId::new(1), 0).unwrap();
    consumer.subscribe(&mut sys, subscription()).unwrap();
    let producer = sys.connect(ClientId::new(2), 2).unwrap();
    for i in 0..PUBLICATIONS {
        sys.run_until(SimTime::from_millis(100 + i * 5));
        if i == 80 {
            // t = 500 ms, matching the scripted move.
            consumer.move_to(&mut sys, 1).unwrap();
        }
        producer.publish(&mut sys, vacancy(i)).unwrap();
    }
    sys.run_until(SimTime::from_secs(3));
    sys
}

fn verify(sys: &MobilitySystem, label: &str) {
    let log = sys.client_log(ClientId::new(1)).unwrap();
    assert!(log.is_clean(), "{label}: {:?}", log.violations());
    assert_eq!(
        log.distinct_publisher_seqs(ClientId::new(2)),
        (1..=PUBLICATIONS).collect::<Vec<u64>>(),
        "{label}: incomplete delivery"
    );
}

fn bench_session_overhead(c: &mut Criterion) {
    // Equivalent work outside the timed loop: both paths deliver the same
    // clean stream.
    let scripted = run_scripted();
    let session = run_session();
    verify(&scripted, "scripted");
    verify(&session, "session");
    assert_eq!(
        scripted.client_log(ClientId::new(1)).unwrap(),
        session.client_log(ClientId::new(1)).unwrap(),
        "the two paths must record identical deliveries"
    );

    let mut group = c.benchmark_group("session/quickstart");
    group.sample_size(20);
    group.bench_with_input(BenchmarkId::new("scripted", PUBLICATIONS), &(), |b, _| {
        b.iter(|| black_box(run_scripted()))
    });
    group.bench_with_input(BenchmarkId::new("session", PUBLICATIONS), &(), |b, _| {
        b.iter(|| black_box(run_session()))
    });
    group.finish();
}

criterion_group!(benches, bench_session_overhead);
criterion_main!(benches);
