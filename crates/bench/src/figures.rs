//! Regeneration of the paper's figures (2, 3, 5, 9).
//!
//! Each function returns a structured result that the `exp_*` binaries print
//! and that EXPERIMENTS.md records; the unit tests assert the qualitative
//! *shape* the paper reports (who wins, where the blackouts are, by roughly
//! what factor), not absolute numbers.

use serde::Serialize;

use rebeca_broker::ClientId;
use rebeca_core::{BrokerConfig, ClientAction, LogicalMobilityMode, SystemBuilder};
use rebeca_location::{AdaptivityPlan, LocationId, MovementGraph};
use rebeca_routing::RoutingStrategyKind;
use rebeca_sim::{DelayModel, SimDuration, SimTime, Topology};

use crate::scenarios::{
    self, parking_template, run_logical, run_physical, vacancy_at, HandoffKind, LogicalScenario,
    LogicalScheme, PhysicalScenario,
};

// ---------------------------------------------------------------------------
// Figure 2 — lost and duplicated notifications with the naive hand-off
// ---------------------------------------------------------------------------

/// One row of the Figure 2 experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Figure2Row {
    /// Human-readable name of the hand-off scheme.
    pub scheme: String,
    /// Publications received at least once.
    pub received: usize,
    /// Publications never received.
    pub lost: usize,
    /// Publications received more than once.
    pub duplicated: usize,
    /// Whether per-producer FIFO order held.
    pub fifo_preserved: bool,
}

/// Figure 2: the naive hand-off either loses notifications (when the client
/// signs off and re-subscribes from scratch) or delivers duplicates (when it
/// cannot sign off and the old broker keeps delivering under flooding), while
/// the relocation protocol does neither.
pub fn figure2() -> Vec<Figure2Row> {
    let runs = [
        (
            "relocation protocol (Section 4)",
            RoutingStrategyKind::Covering,
            HandoffKind::Relocation,
        ),
        (
            "naive hand-off with sign-off",
            RoutingStrategyKind::Covering,
            HandoffKind::NaiveWithSignOff,
        ),
        (
            "naive hand-off, no sign-off, flooding",
            RoutingStrategyKind::Flooding,
            HandoffKind::NaiveSilent,
        ),
    ];
    runs.iter()
        .map(|(name, strategy, handoff)| {
            let outcome = run_physical(&PhysicalScenario {
                strategy: *strategy,
                handoff: *handoff,
                ..PhysicalScenario::default()
            });
            Figure2Row {
                scheme: (*name).to_string(),
                received: outcome.received,
                lost: outcome.lost,
                duplicated: outcome.duplicated,
                fifo_preserved: outcome.fifo_preserved,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 3 — blackout period after a location change
// ---------------------------------------------------------------------------

/// One row of the Figure 3 experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Figure3Row {
    /// Human-readable name of the scheme.
    pub scheme: String,
    /// Measured time from the location change until the first delivery for
    /// the new location, in milliseconds.
    pub blackout_ms: Option<u64>,
    /// Total messages transmitted over links during the run.
    pub total_messages: u64,
}

/// Parameters of the Figure 3 experiment.
#[derive(Debug, Clone)]
pub struct Figure3Params {
    /// Number of brokers on the line between consumer and producer.
    pub brokers: usize,
    /// Per-link delay (the paper's `t_d`).
    pub link_delay_ms: u64,
    /// Gap between publication rounds (one notification per location per
    /// round).
    pub publish_interval_ms: u64,
}

impl Default for Figure3Params {
    fn default() -> Self {
        Self {
            brokers: 4,
            link_delay_ms: 20,
            publish_interval_ms: 20,
        }
    }
}

/// Figure 3: measures the blackout after a single location change (a → b on
/// the Figure 7 graph) for the manual sub/unsub baseline, flooding with
/// client-side filtering, and the paper's location-dependent subscriptions.
pub fn figure3(params: &Figure3Params) -> Vec<Figure3Row> {
    let graph = MovementGraph::paper_example();
    let a = graph.space().id("a").expect("location a");
    let b = graph.space().id("b").expect("location b");
    let move_at = SimTime::from_secs(1);
    let horizon = SimTime::from_secs(3);

    let run = |name: &str,
               strategy: RoutingStrategyKind,
               mode: LogicalMobilityMode,
               plan: AdaptivityPlan|
     -> Figure3Row {
        let config = BrokerConfig::default()
            .with_strategy(strategy)
            .with_movement_graph(graph.clone())
            .with_relocation_timeout(SimDuration::from_secs(30));
        let topo = Topology::line(params.brokers);
        let mut sys = SystemBuilder::new(&topo)
            .config(config)
            .link_delay(DelayModel::constant_millis(params.link_delay_ms))
            .seed(5)
            .build()
            .unwrap();
        let consumer = scenarios::CONSUMER;
        let producer = ClientId::new(2);
        sys.add_client(
            consumer,
            mode,
            &[0],
            vec![
                (
                    SimTime::from_millis(1),
                    ClientAction::Attach {
                        broker: sys.broker_node(0).unwrap(),
                    },
                ),
                (
                    SimTime::from_millis(2),
                    ClientAction::LocSubscribe {
                        template: parking_template(),
                        plan,
                        location: a,
                    },
                ),
                (move_at, ClientAction::SetLocation(b)),
            ],
        )
        .unwrap();
        let far = params.brokers - 1;
        let mut script = vec![(
            SimTime::from_millis(1),
            ClientAction::Attach {
                broker: sys.broker_node(far).unwrap(),
            },
        )];
        let mut t = SimTime::from_millis(40);
        let mut spot = 0i64;
        while t < horizon {
            for location in graph.space().ids() {
                script.push((t, ClientAction::Publish(vacancy_at(location, spot))));
                spot += 1;
            }
            t += SimDuration::from_millis(params.publish_interval_ms);
        }
        sys.add_client(
            producer,
            LogicalMobilityMode::LocationDependent,
            &[far],
            script,
        )
        .unwrap();
        sys.run_until(horizon);

        // Blackout: first delivery for location b at or after the move.
        let client = sys.client(consumer).unwrap();
        let blackout_ms = client
            .log()
            .deliveries()
            .iter()
            .zip(client.delivery_times())
            .filter(|(d, (at, _))| {
                *at >= move_at
                    && d.envelope
                        .notification
                        .get("location")
                        .and_then(|v| v.as_location())
                        == Some(b.raw())
            })
            .map(|(_, (at, _))| (*at - move_at).as_millis())
            .min();
        Figure3Row {
            scheme: name.to_string(),
            blackout_ms,
            total_messages: sys.total_messages(),
        }
    };

    vec![
        run(
            "simple re-subscription (Fig. 3a baseline)",
            RoutingStrategyKind::Covering,
            LogicalMobilityMode::ManualSubUnsub { vicinity: 0 },
            AdaptivityPlan::global_sub_unsub(params.brokers),
        ),
        run(
            "flooding with client-side filtering (Fig. 3b)",
            RoutingStrategyKind::Flooding,
            LogicalMobilityMode::ManualSubUnsub { vicinity: 0 },
            AdaptivityPlan::flooding(params.brokers),
        ),
        run(
            "location-dependent subscriptions (Section 5)",
            RoutingStrategyKind::Covering,
            LogicalMobilityMode::LocationDependent,
            AdaptivityPlan::one_step_per_hop(params.brokers),
        ),
    ]
}

// ---------------------------------------------------------------------------
// Figure 5 — relocation walk-through
// ---------------------------------------------------------------------------

/// Summary of the Figure 5 relocation walk-through.
#[derive(Debug, Clone, Serialize)]
pub struct Figure5Report {
    /// Publications received exactly once by the roaming consumer.
    pub received: usize,
    /// Lost publications (must be 0).
    pub lost: usize,
    /// Duplicated publications (must be 0).
    pub duplicated: usize,
    /// Whether FIFO order held.
    pub fifo_preserved: bool,
    /// Junction candidates detected during the run.  B4 is the real junction
    /// of the figure; brokers on the old path may report further candidates
    /// because the relocation request keeps propagating (see the aliasing
    /// discussion in DESIGN.md).
    pub junctions_detected: u64,
    /// Notifications replayed from the virtual counterpart.
    pub replayed: u64,
    /// Whether the old border broker garbage collected the client.
    pub old_broker_clean: bool,
    /// Total messages transmitted over links.
    pub total_messages: u64,
}

/// Figure 5: runs the relocation walk-through (one producer at B8, consumer
/// moving B6 → B1) and reports the protocol-internal counters.
pub fn figure5() -> Figure5Report {
    let topo = Topology::figure5();
    let config = BrokerConfig::default()
        .with_strategy(RoutingStrategyKind::Covering)
        .with_movement_graph(MovementGraph::paper_example())
        .with_relocation_timeout(SimDuration::from_secs(30));
    let mut sys = SystemBuilder::new(&topo)
        .config(config)
        .link_delay(DelayModel::constant_millis(5))
        .seed(23)
        .build()
        .unwrap();
    let consumer = scenarios::CONSUMER;
    let producer = ClientId::new(2);

    sys.add_client(
        consumer,
        LogicalMobilityMode::LocationDependent,
        &[5, 0],
        vec![
            (
                SimTime::from_millis(1),
                ClientAction::Attach {
                    broker: sys.broker_node(5).unwrap(),
                },
            ),
            (
                SimTime::from_millis(2),
                ClientAction::Subscribe(scenarios::parking_filter()),
            ),
            (
                SimTime::from_millis(500),
                ClientAction::MoveTo {
                    broker: sys.broker_node(0).unwrap(),
                },
            ),
        ],
    )
    .unwrap();
    let mut script = vec![
        (
            SimTime::from_millis(1),
            ClientAction::Attach {
                broker: sys.broker_node(7).unwrap(),
            },
        ),
        (
            SimTime::from_millis(2),
            ClientAction::Advertise(scenarios::parking_filter()),
        ),
    ];
    let publications = 40u64;
    for i in 0..publications {
        script.push((
            SimTime::from_millis(50 + i * 25),
            ClientAction::Publish(vacancy_at(LocationId(0), i as i64)),
        ));
    }
    sys.add_client(
        producer,
        LogicalMobilityMode::LocationDependent,
        &[7],
        script,
    )
    .unwrap();
    sys.run_until(SimTime::from_secs(10));

    let log = sys.client_log(consumer).unwrap();
    Figure5Report {
        received: log.distinct_publisher_seqs(producer).len(),
        lost: log.missing_from(producer, 1..=publications).len(),
        duplicated: log.duplicate_publications(producer),
        fifo_preserved: log.is_clean(),
        junctions_detected: sys.metrics().counter("mobility.junction_detected"),
        replayed: sys.metrics().counter("mobility.replayed"),
        old_broker_clean: sys.broker(5).unwrap().counterpart_count() == 0
            && sys.broker(5).unwrap().core().client(consumer).is_none(),
        total_messages: sys.total_messages(),
    }
}

// ---------------------------------------------------------------------------
// Figure 9 — total number of messages: flooding vs. the new algorithm
// ---------------------------------------------------------------------------

/// Parameters of the Figure 9 experiment.
#[derive(Debug, Clone)]
pub struct Figure9Params {
    /// Number of brokers on the line between consumer and producers.
    pub brokers: usize,
    /// Number of producers at the far end.
    pub producers: usize,
    /// Side length of the square-grid location space (`side²` locations).
    pub grid_side: usize,
    /// Interval between publications per producer.
    pub publish_interval: SimDuration,
    /// Per-link delay (also used as the per-hop subscription-processing time
    /// `δ_i` when deriving the adaptivity plan).
    pub link_delay_ms: u64,
    /// Total simulated time.
    pub horizon_secs: u64,
    /// Random seed.
    pub seed: u64,
}

impl Default for Figure9Params {
    fn default() -> Self {
        Self {
            brokers: 10,
            producers: 10,
            grid_side: 10,
            publish_interval: SimDuration::from_millis(100),
            link_delay_ms: 5,
            horizon_secs: 100,
            seed: 42,
        }
    }
}

/// One series of Figure 9: cumulative total messages per second.
#[derive(Debug, Clone, Serialize)]
pub struct Figure9Series {
    /// Name of the scheme ("flooding", "new alg. Δ=1s", "new alg. Δ=10s").
    pub scheme: String,
    /// `(second, cumulative messages)` samples.
    pub samples: Vec<(u64, u64)>,
    /// Final cumulative count.
    pub total: u64,
    /// Notifications delivered to the consumer.
    pub delivered: usize,
}

/// Figure 9: total number of messages generated by flooding and by the new
/// algorithm for residence times Δ = 1 s and Δ = 10 s, sampled once per
/// simulated second over the whole run.
pub fn figure9(params: &Figure9Params) -> Vec<Figure9Series> {
    let graph = MovementGraph::grid(params.grid_side, params.grid_side);
    let horizon = SimTime::from_secs(params.horizon_secs);
    let hop_delays = vec![params.link_delay_ms * 1_000; params.brokers.saturating_sub(1)];

    let base = |scheme: LogicalScheme, residence: SimDuration| LogicalScenario {
        scheme,
        movement_graph: graph.clone(),
        brokers: params.brokers,
        producers: params.producers,
        residence,
        publish_interval: params.publish_interval,
        publish_batch: 1,
        link_delay: DelayModel::constant_millis(params.link_delay_ms),
        horizon,
        seed: params.seed,
    };

    let runs = [
        (
            "flooding",
            LogicalScheme::Flooding,
            SimDuration::from_secs(1),
        ),
        (
            "new alg. Delta=1s",
            LogicalScheme::LocationDependent(AdaptivityPlan::adaptive(1_000_000, &hop_delays)),
            SimDuration::from_secs(1),
        ),
        (
            "new alg. Delta=10s",
            LogicalScheme::LocationDependent(AdaptivityPlan::adaptive(10_000_000, &hop_delays)),
            SimDuration::from_secs(10),
        ),
    ];

    runs.into_iter()
        .map(|(name, scheme, residence)| {
            let outcome = run_logical(&base(scheme, residence));
            Figure9Series {
                scheme: name.to_string(),
                samples: outcome.message_series.clone(),
                total: outcome.total_messages,
                delivered: outcome.delivered,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_shape_matches_the_paper() {
        let rows = figure2();
        assert_eq!(rows.len(), 3);
        let relocation = &rows[0];
        assert_eq!(relocation.lost, 0);
        assert_eq!(relocation.duplicated, 0);
        assert!(relocation.fifo_preserved);
        let naive_signoff = &rows[1];
        assert!(
            naive_signoff.lost > 0,
            "naive sign-off must lose notifications"
        );
        let naive_silent = &rows[2];
        assert!(
            naive_silent.duplicated > 0,
            "silent naive hand-off must duplicate notifications"
        );
    }

    #[test]
    fn figure3_shape_matches_the_paper() {
        let rows = figure3(&Figure3Params::default());
        assert_eq!(rows.len(), 3);
        let baseline = rows[0].blackout_ms.expect("baseline eventually recovers");
        let flooding = rows[1].blackout_ms.expect("flooding delivers");
        let managed = rows[2].blackout_ms.expect("managed delivers");
        // The baseline blackout is about 2·t_d (the subscription travels to
        // the producer and notifications travel back) — with 20 ms links and
        // 4 brokers that is at least ~100 ms.
        assert!(
            baseline >= 100,
            "baseline blackout too short: {baseline} ms"
        );
        // Flooding and the location-dependent scheme recover within roughly
        // one client-link round trip plus one publication interval.
        assert!(flooding < 100, "flooding blackout too long: {flooding} ms");
        assert!(managed < 100, "managed blackout too long: {managed} ms");
        // And the managed scheme costs fewer messages than flooding.
        assert!(rows[2].total_messages < rows[1].total_messages);
    }

    #[test]
    fn figure5_walkthrough_is_clean() {
        let report = figure5();
        assert_eq!(report.lost, 0);
        assert_eq!(report.duplicated, 0);
        assert!(report.fifo_preserved);
        // B4 is the real junction; because the relocation request keeps
        // propagating (to stay correct when identical filters alias), brokers
        // on the old path may also report an apparent junction.
        assert!(report.junctions_detected >= 1, "at least the B4 junction");
        assert!(report.replayed > 0, "the counterpart must replay something");
        assert!(report.old_broker_clean);
    }

    #[test]
    fn figure9_shape_matches_the_paper() {
        // A scaled-down configuration so the test stays fast; the shape is
        // what matters: flooding ≫ new algorithm, and Δ = 10 s cheaper than
        // Δ = 1 s.
        let series = figure9(&Figure9Params {
            brokers: 5,
            producers: 3,
            grid_side: 5,
            publish_interval: SimDuration::from_millis(200),
            link_delay_ms: 5,
            horizon_secs: 20,
            seed: 7,
        });
        assert_eq!(series.len(), 3);
        let flooding = &series[0];
        let delta1 = &series[1];
        let delta10 = &series[2];
        assert!(
            flooding.total > delta1.total,
            "flooding ({}) must generate more messages than the new algorithm with Δ=1s ({})",
            flooding.total,
            delta1.total
        );
        assert!(
            delta1.total > delta10.total,
            "Δ=1s ({}) must generate more messages than Δ=10s ({})",
            delta1.total,
            delta10.total
        );
        // Cumulative series grow monotonically.
        for s in &series {
            assert!(s.samples.windows(2).all(|w| w[0].1 <= w[1].1));
            assert_eq!(s.samples.len(), 20);
        }
    }
}
