//! Roaming stock monitor: the paper's example of making an *existing*
//! application mobile without changing its interface (physical mobility,
//! Section 4).
//!
//! A stock-quote monitor subscribes to price updates for a handful of
//! symbols through an interactive [`rebeca::Session`].  Its user commutes
//! between home, the train and the office — the client disconnects and
//! re-attaches at a different border broker twice, while two exchanges
//! (scripted clients: the adapter that replays a script through the same
//! session machinery) keep publishing quotes.  The application code never
//! changes: the relocation protocol buffers and replays quotes so the
//! monitor sees a gapless, duplicate-free, in-order stream.
//!
//! Run with:
//! ```text
//! cargo run --example roaming_stock_monitor
//! ```

use rebeca::{
    ClientAction, ClientId, Constraint, DelayModel, Filter, LogicalMobilityMode, Notification,
    RebecaError, SimDuration, SimTime, SystemBuilder, Topology,
};

fn quote(symbol: &str, price: i64, update: i64) -> Notification {
    Notification::builder()
        .attr("service", "stock")
        .attr("symbol", symbol)
        .attr("price", price)
        .attr("update", update)
        .build()
}

fn main() -> Result<(), RebecaError> {
    // A metropolitan broker network: a balanced binary tree of 7 brokers.
    // Broker 3 serves the home district, broker 5 the train line, broker 6
    // the office district; the exchanges feed in at brokers 1 and 2.
    let mut system = SystemBuilder::new(&Topology::balanced_tree(2, 2))
        .link_delay(DelayModel::constant_millis(8))
        .seed(2024)
        .build()?;

    // Two exchanges publishing quotes for the watched and some unwatched
    // symbols — scripted clients, pre-arranged before the run.
    let symbols = ["REBECA", "SIENA", "ELVIN", "GRYPHON", "JEDI"];
    for (e, broker_index) in [(ClientId::new(10), 1usize), (ClientId::new(11), 2usize)] {
        let mut script = vec![(
            SimTime::from_millis(1),
            ClientAction::Attach {
                broker: system.broker_node(broker_index)?,
            },
        )];
        let mut t = SimTime::from_millis(100);
        let mut update = 0i64;
        while t < SimTime::from_secs(6) {
            let symbol = symbols[(update as usize) % symbols.len()];
            script.push((
                t,
                ClientAction::Publish(quote(symbol, 100 + update % 17, update)),
            ));
            update += 1;
            t += SimDuration::from_millis(80);
        }
        system.add_client(
            e,
            LogicalMobilityMode::LocationDependent,
            &[broker_index],
            script,
        )?;
    }

    // The monitor: an interactive session that starts at the home broker...
    let monitor = system.connect(ClientId::new(1), 3)?;
    monitor.subscribe(
        &mut system,
        Filter::new()
            .with("service", Constraint::Eq("stock".into()))
            .with("symbol", Constraint::any_of(["REBECA", "SIENA", "ELVIN"])),
    )?;

    // ...rides the morning commute (7:30 — leave home, connect from the
    // train; 8:00 — arrive at the office), reading its inbox along the way.
    system.run_until(SimTime::from_secs(2));
    monitor.move_to(&mut system, 5)?;
    let on_the_couch = monitor.poll_deliveries(&mut system)?.len();

    system.run_until(SimTime::from_secs(4));
    monitor.move_to(&mut system, 6)?;
    let on_the_train = monitor.poll_deliveries(&mut system)?.len();

    system.run_until(SimTime::from_secs(8));
    let at_the_office = monitor.poll_deliveries(&mut system)?.len();

    let log = monitor.log(&system)?;
    println!("quotes read at home   : {on_the_couch}");
    println!("quotes read on train  : {on_the_train}");
    println!("quotes read at office : {at_the_office}");
    println!("quotes delivered total: {}", log.len());
    println!("delivery log clean    : {}", log.is_clean());
    for publisher in [ClientId::new(10), ClientId::new(11)] {
        println!(
            "  exchange {publisher}: received {} distinct updates, {} duplicates",
            log.distinct_publisher_seqs(publisher).len(),
            log.duplicate_publications(publisher)
        );
    }
    let watched: Vec<&str> = ["REBECA", "SIENA", "ELVIN"].to_vec();
    assert!(log.deliveries().iter().all(|d| {
        d.envelope
            .notification
            .get("symbol")
            .and_then(|v| v.as_str())
            .map(|s| watched.contains(&s))
            .unwrap_or(false)
    }));
    assert!(log.is_clean());
    println!("\nroaming stock monitor finished: two hand-overs, zero gaps, zero duplicates.");
    Ok(())
}
