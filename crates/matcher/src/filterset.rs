//! Covering-aware filter collections, backed by the predicate index.
//!
//! [`FilterSet`] is the building block of broker routing state: a set of
//! filters associated with one destination, optionally reduced under the
//! covering relation so that only the most general filters are kept
//! (Rebeca's *covering routing*), and optionally compacted further by
//! perfect merging (*merging routing*).
//!
//! This is the index-backed successor of the linear-scan `FilterSet` that
//! used to live in `rebeca-filter`: matching delegates to the counting
//! algorithm of [`FilterIndex`], and every covering/merging decision runs
//! the index's exact covering queries instead of scanning all stored
//! filters.  Observable behaviour (including iteration order, which follows
//! insertion order) is unchanged.

use std::collections::HashMap;
use std::fmt;

use rebeca_filter::{Filter, Notification};

use crate::index::FilterIndex;

/// Outcome of inserting a filter into a [`FilterSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The filter was added as a new, independent entry.
    Added,
    /// The filter was already covered by an existing entry; nothing changed.
    Covered,
    /// The filter was added and replaced `n` existing entries that it covers.
    Replaced(usize),
    /// The filter was merged with an existing entry into a new entry.
    Merged,
}

/// A set of filters with covering-based redundancy elimination.
#[derive(Debug, Clone, Default)]
pub struct FilterSet {
    /// `(stable id, filter)` in insertion order.
    filters: Vec<(u64, Filter)>,
    /// Stable id → current position in `filters`.
    pos: HashMap<u64, usize>,
    index: FilterIndex<u64>,
    next_id: u64,
}

impl FilterSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of filters currently stored.
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// `true` when no filters are stored.
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }

    /// Iterates over the stored filters in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Filter> {
        self.filters.iter().map(|(_, f)| f)
    }

    /// Returns `true` when any stored filter matches the notification.
    pub fn matches(&self, notification: &Notification) -> bool {
        self.index.any_match(notification)
    }

    /// Returns `true` when any stored filter covers the given filter.
    pub fn covers(&self, filter: &Filter) -> bool {
        self.index.covers_any(filter)
    }

    /// Returns `true` when the exact filter (structural equality) is stored.
    pub fn contains(&self, filter: &Filter) -> bool {
        // Structural equality implies covering, so every equal filter is
        // among the covering keys.
        self.index
            .covering_keys(filter)
            .into_iter()
            .any(|id| &self.filters[self.pos[id]].1 == filter)
    }

    fn push(&mut self, filter: Filter) {
        let id = self.next_id;
        self.next_id += 1;
        self.index.insert(id, &filter);
        self.pos.insert(id, self.filters.len());
        self.filters.push((id, filter));
    }

    /// Removes the entries at the given positions (any order), preserving
    /// the relative order of the survivors.
    fn remove_positions(&mut self, mut positions: Vec<usize>) {
        if positions.is_empty() {
            return;
        }
        positions.sort_unstable();
        positions.dedup();
        for &p in positions.iter().rev() {
            let (id, _) = self.filters.remove(p);
            self.index.remove(&id);
            self.pos.remove(&id);
        }
        // Positions after the first removal point have shifted; rebuild them.
        for (p, (id, _)) in self.filters.iter().enumerate().skip(positions[0]) {
            self.pos.insert(*id, p);
        }
    }

    /// Positions (in insertion order) of stored filters covered by `filter`.
    fn covered_positions(&self, filter: &Filter) -> Vec<usize> {
        let mut positions: Vec<usize> = self
            .index
            .covered_keys(filter)
            .into_iter()
            .map(|id| self.pos[id])
            .collect();
        positions.sort_unstable();
        positions
    }

    /// Inserts a filter without any covering optimization (simple routing).
    pub fn insert_simple(&mut self, filter: Filter) -> InsertOutcome {
        if self.contains(&filter) {
            return InsertOutcome::Covered;
        }
        self.push(filter);
        InsertOutcome::Added
    }

    /// Inserts a filter, applying covering-based optimization: if an existing
    /// filter covers the new one nothing changes; otherwise every existing
    /// filter covered by the new one is removed.
    pub fn insert_covering(&mut self, filter: Filter) -> InsertOutcome {
        if self.covers(&filter) {
            return InsertOutcome::Covered;
        }
        let covered = self.covered_positions(&filter);
        let removed = covered.len();
        self.remove_positions(covered);
        self.push(filter);
        if removed > 0 {
            InsertOutcome::Replaced(removed)
        } else {
            InsertOutcome::Added
        }
    }

    /// Inserts a filter, first trying a perfect merge with an existing entry
    /// (the earliest-inserted mergeable one, like the linear scan it
    /// replaces) and falling back to covering insertion.
    pub fn insert_merging(&mut self, filter: Filter) -> InsertOutcome {
        if self.covers(&filter) {
            return InsertOutcome::Covered;
        }
        // A perfect merger exists only when one filter covers the other or
        // both constrain the same attribute set — so every possible partner
        // is among the covering, covered or same-attribute keys of `filter`.
        let mut candidates: Vec<usize> = self
            .index
            .covering_keys(&filter)
            .into_iter()
            .chain(self.index.covered_keys(&filter))
            .chain(self.index.same_attr_keys(&filter))
            .map(|id| self.pos[id])
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        for p in candidates {
            if let Some(merged) = self.filters[p].1.try_merge(&filter) {
                self.remove_positions(vec![p]);
                // The merged filter may in turn cover or merge with others.
                self.insert_merging(merged);
                return InsertOutcome::Merged;
            }
        }
        self.insert_covering(filter)
    }

    /// Removes the exact filter (structural equality).  Returns `true` when
    /// something was removed.
    pub fn remove(&mut self, filter: &Filter) -> bool {
        let positions: Vec<usize> = self
            .index
            .covering_keys(filter)
            .into_iter()
            .map(|id| self.pos[id])
            .filter(|&p| &self.filters[p].1 == filter)
            .collect();
        let removed = !positions.is_empty();
        self.remove_positions(positions);
        removed
    }

    /// Removes every filter covered by `filter` (including exact matches).
    /// Returns the removed filters in insertion order.
    pub fn remove_covered_by(&mut self, filter: &Filter) -> Vec<Filter> {
        let positions = self.covered_positions(filter);
        let removed: Vec<Filter> = positions
            .iter()
            .map(|&p| self.filters[p].1.clone())
            .collect();
        self.remove_positions(positions);
        removed
    }

    /// Removes every stored filter and returns them.
    pub fn drain(&mut self) -> Vec<Filter> {
        let filters = std::mem::take(&mut self.filters)
            .into_iter()
            .map(|(_, f)| f)
            .collect();
        self.pos.clear();
        self.index.clear();
        filters
    }
}

impl PartialEq for FilterSet {
    /// Multiset equality on the stored filters (the stable ids and index
    /// internals are representation, not state).
    fn eq(&self, other: &Self) -> bool {
        if self.len() != other.len() {
            return false;
        }
        let mut a: Vec<&Filter> = self.iter().collect();
        let mut b: Vec<&Filter> = other.iter().collect();
        a.sort_unstable();
        b.sort_unstable();
        a == b
    }
}

impl fmt::Display for FilterSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, filter) in self.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{filter}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<Filter> for FilterSet {
    fn from_iter<T: IntoIterator<Item = Filter>>(iter: T) -> Self {
        let mut set = FilterSet::new();
        for f in iter {
            set.insert_covering(f);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebeca_filter::{Constraint, Value};

    fn cost_lt(v: i64) -> Filter {
        Filter::new()
            .with("service", Constraint::Eq("parking".into()))
            .with("cost", Constraint::Lt(v.into()))
    }

    fn loc_set(locs: &[u32]) -> Filter {
        Filter::new().with(
            "location",
            Constraint::any_location_of(locs.iter().copied()),
        )
    }

    #[test]
    fn simple_insert_keeps_duplicates_out_but_not_covered_filters() {
        let mut set = FilterSet::new();
        assert_eq!(set.insert_simple(cost_lt(3)), InsertOutcome::Added);
        assert_eq!(set.insert_simple(cost_lt(3)), InsertOutcome::Covered);
        assert_eq!(set.insert_simple(cost_lt(10)), InsertOutcome::Added);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn covering_insert_discards_covered_new_filter() {
        let mut set = FilterSet::new();
        set.insert_covering(cost_lt(10));
        assert_eq!(set.insert_covering(cost_lt(3)), InsertOutcome::Covered);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn covering_insert_replaces_covered_existing_filters() {
        let mut set = FilterSet::new();
        set.insert_covering(cost_lt(3));
        // cost < 5 covers cost < 3, so it replaces it immediately.
        assert_eq!(set.insert_covering(cost_lt(5)), InsertOutcome::Replaced(1));
        assert_eq!(set.len(), 1);
        assert_eq!(set.insert_covering(cost_lt(10)), InsertOutcome::Replaced(1));
        assert_eq!(set.len(), 1);
        assert!(set.covers(&cost_lt(3)));
    }

    #[test]
    fn merging_insert_unions_location_sets() {
        let mut set = FilterSet::new();
        set.insert_merging(loc_set(&[1, 2]));
        assert_eq!(set.insert_merging(loc_set(&[3])), InsertOutcome::Merged);
        assert_eq!(set.len(), 1);
        assert!(set.covers(&loc_set(&[1, 2, 3])));
    }

    #[test]
    fn merging_insert_cascades() {
        let mut set = FilterSet::new();
        set.insert_merging(loc_set(&[1]));
        set.insert_merging(loc_set(&[5]));
        // Merging {2} with {1} gives {1,2}; this cannot further merge with {5}
        // by covering but can by set-union, producing a single entry.
        set.insert_merging(loc_set(&[2]));
        assert_eq!(set.len(), 1);
        assert!(set.covers(&loc_set(&[1, 2, 5])));
    }

    #[test]
    fn matches_any_stored_filter() {
        let mut set = FilterSet::new();
        set.insert_covering(cost_lt(3));
        set.insert_covering(loc_set(&[7]));
        let n = Notification::builder()
            .attr("location", Value::Location(7))
            .build();
        assert!(set.matches(&n));
        let miss = Notification::builder()
            .attr("location", Value::Location(8))
            .build();
        assert!(!set.matches(&miss));
    }

    #[test]
    fn remove_exact_and_covered() {
        let mut set = FilterSet::new();
        set.insert_simple(cost_lt(3));
        set.insert_simple(cost_lt(5));
        assert!(set.remove(&cost_lt(3)));
        assert!(!set.remove(&cost_lt(3)));
        assert_eq!(set.len(), 1);

        set.insert_simple(cost_lt(3));
        let removed = set.remove_covered_by(&cost_lt(10));
        assert_eq!(removed.len(), 2);
        assert!(set.is_empty());
    }

    #[test]
    fn drain_empties_the_set() {
        let mut set: FilterSet = vec![cost_lt(3), loc_set(&[1])].into_iter().collect();
        let drained = set.drain();
        assert_eq!(drained.len(), 2);
        assert!(set.is_empty());
        assert!(!set.matches(&Notification::builder().attr("cost", 1).build()));
    }

    #[test]
    fn from_iterator_applies_covering() {
        let set: FilterSet = vec![cost_lt(3), cost_lt(10), cost_lt(5)]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 1);
        assert!(set.covers(&cost_lt(9)));
    }

    #[test]
    fn display_lists_filters() {
        let mut set = FilterSet::new();
        set.insert_simple(Filter::universal());
        assert_eq!(set.to_string(), "[(true)]");
    }

    #[test]
    fn multiset_equality_ignores_insertion_order() {
        let mut a = FilterSet::new();
        a.insert_simple(cost_lt(3));
        a.insert_simple(loc_set(&[1]));
        let mut b = FilterSet::new();
        b.insert_simple(loc_set(&[1]));
        b.insert_simple(cost_lt(3));
        assert_eq!(a, b);
        b.insert_simple(cost_lt(5));
        assert_ne!(a, b);
    }
}
