//! The predicate store: deduplicated `(attribute, constraint)` predicates
//! partitioned by attribute and evaluation class.
//!
//! A [`PredStore`] owns the per-attribute partitions of one shard of an
//! index (a sequential [`FilterIndex`](crate::FilterIndex) is the one-store
//! special case).  Constraints are interned in a per-store
//! [`ConstraintArena`] shared across attributes; each distinct
//! `(attribute, constraint)` pair becomes one predicate with an inline
//! small-vector posting list of the filters using it.
//!
//! Within one attribute, predicates are partitioned by evaluation class:
//!
//! * **equality** (`Eq`, `In`) — a hash table from canonical value keys to
//!   predicates; numeric members are additionally registered in an ordered
//!   map (`eq_num`, keyed by the smallest member's sort key) so the
//!   covering walks can range-scan them;
//! * **ordered numeric** (`Lt`, `Le`, `Gt`, `Ge`, `Between` with `Int`/
//!   `Float` bounds) — ordered maps keyed by a monotone encoding of the
//!   bound;
//! * **existence** (`Exists`) — satisfied by presence alone;
//! * **residual** (string predicates, `Ne`, non-numeric ordered bounds,
//!   empty `In` sets) — a short list evaluated directly; exactness is never
//!   traded for speed.
//!
//! # Range-partitioned covering walks
//!
//! The covering queries used to test **every** distinct predicate of a
//! probe's attributes.  The walks below instead enumerate, per probe class,
//! only the partition ranges that can possibly contain a covering (or
//! covered) predicate — e.g. the predicates covering `cost < 5` are the
//! `Lt`/`Le` predicates with bounds at or above 5, plus `Exists` and the
//! residual class.  Every candidate is still verified with the exact
//! [`Constraint::covers`] test (except `Exists`, which covers everything by
//! definition), so the walks visit fewer predicates without ever changing a
//! result.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::ops::Bound::{Excluded, Unbounded};

use rebeca_filter::{Constraint, Value};
use smallvec::SmallVec;

use crate::arena::ConstraintArena;

/// Canonical hash key of a value under the filter model's equality
/// semantics ([`Value::value_eq`]): numeric values collapse onto the total
/// order of `f64`, every other kind is keyed by its exact payload.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum CanonKey {
    /// `Int` or `Float`, encoded with [`num_sort_key`].
    Num(u64),
    Str(String),
    Bool(bool),
    Loc(u32),
}

/// Monotone encoding of the `f64` total order into `u64`: `a.total_cmp(b)`
/// agrees with `num_sort_key(a).cmp(&num_sort_key(b))`.
pub(crate) fn num_sort_key(f: f64) -> u64 {
    let bits = f.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Numeric sort key of a value, when it has one.
pub(crate) fn value_num_key(v: &Value) -> Option<u64> {
    match v {
        Value::Int(i) => Some(num_sort_key(*i as f64)),
        Value::Float(f) => Some(num_sort_key(*f)),
        _ => None,
    }
}

pub(crate) fn canon_key(v: &Value) -> CanonKey {
    match v {
        Value::Int(i) => CanonKey::Num(num_sort_key(*i as f64)),
        Value::Float(f) => CanonKey::Num(num_sort_key(*f)),
        Value::Str(s) => CanonKey::Str(s.clone()),
        Value::Bool(b) => CanonKey::Bool(*b),
        Value::Location(l) => CanonKey::Loc(*l),
    }
}

/// Where a predicate lives inside its attribute partition (needed to undo
/// the insertion when the last filter using the predicate is removed).
#[derive(Debug, Clone)]
enum Slot {
    Eq {
        /// Canonical keys the predicate is registered under (one per
        /// distinct member value).
        keys: Vec<CanonKey>,
        /// Sort key of the smallest numeric member when **all** members are
        /// numeric; the predicate is then also registered in `eq_num`.
        num_key: Option<u64>,
    },
    Lt(u64),
    Le(u64),
    Gt(u64),
    Ge(u64),
    /// Keyed by the sort key of the lower bound.
    Between(u64),
    Exists,
    Residual,
}

/// One deduplicated `(attribute, constraint)` predicate.
#[derive(Debug, Clone)]
pub(crate) struct Pred {
    /// The predicate's own slot within its attribute (so visitors can refer
    /// back to it without re-deriving the id).
    pub(crate) id: u32,
    /// Arena id of the interned constraint.
    pub(crate) cid: u32,
    slot: Slot,
    /// Store-wide dense slot used by the batch kernel's per-predicate lane
    /// masks.
    pub(crate) mask_slot: u32,
    /// Filters using this predicate (insertion order, deterministic).
    pub(crate) postings: SmallVec<u32, 4>,
    /// How many of the postings belong to *single-constraint* filters.  A
    /// solo predicate that covers a probe constraint proves covering of the
    /// whole probe filter, which is what the covering summary exploits.
    solo: u32,
}

type ClassMap = BTreeMap<u64, SmallVec<u32, 2>>;

/// All predicates of one attribute, partitioned by evaluation class.
#[derive(Debug, Clone, Default)]
struct AttrIndex {
    /// Deduplication map: interned constraint id → predicate slot.
    dedup: HashMap<u32, u32>,
    preds: Vec<Option<Pred>>,
    free: Vec<u32>,
    /// Equality classes: canonical value key → predicates that a value with
    /// this key may satisfy (`Eq`, `In`).  Verified exactly on lookup.
    eq: HashMap<CanonKey, SmallVec<u32, 2>>,
    /// All-numeric equality predicates keyed by their smallest member's
    /// sort key, so range probes can enumerate the point predicates they
    /// may cover without touching the hash classes.
    eq_num: ClassMap,
    /// Ordered numeric predicates, keyed by the bound's sort key.  A query
    /// value strictly below/above the key is satisfied without further
    /// checks; the boundary class is verified exactly (this keeps huge-`i64`
    /// versus `f64` edge cases byte-identical to the linear scan).
    lt: ClassMap,
    le: ClassMap,
    gt: ClassMap,
    ge: ClassMap,
    /// `Between` predicates keyed by lower-bound sort key; candidates with a
    /// lower bound ≤ the query value are verified exactly.
    between: ClassMap,
    /// `Exists` predicates — satisfied by attribute presence.
    exists: SmallVec<u32, 2>,
    /// Predicates evaluated directly (`Ne`, string predicates, ordered
    /// constraints with non-numeric bounds, empty `In` sets).
    residual: SmallVec<u32, 4>,
    /// Filters constraining this attribute (sorted, deterministic), used by
    /// the same-attribute counting walks.
    filters: BTreeSet<u32>,
    /// Covering summary, maintained incrementally on insert/remove: the
    /// bound keys of predicates used by at least one single-constraint
    /// filter, per ordered class, with the number of such predicates at
    /// each key.  [`PredStore::solo_covers`] answers "does some stored
    /// one-constraint filter cover this probe constraint?" from these maps
    /// in a handful of ordered lookups — no posting list is walked at all.
    solo_lt: BTreeMap<u64, u32>,
    solo_le: BTreeMap<u64, u32>,
    solo_gt: BTreeMap<u64, u32>,
    solo_ge: BTreeMap<u64, u32>,
    /// Canonical value keys of solo `Eq`/`In` predicates — the value-set
    /// union of the equality summary (one count per registered key).
    solo_eq: HashMap<CanonKey, u32>,
    /// Number of solo `Exists` predicates (each covers every probe).
    solo_exists: u32,
    /// Number of solo residual predicates (verified exactly when probed;
    /// the residual list stays short by construction).
    solo_residual: u32,
}

impl AttrIndex {
    #[inline]
    fn pred(&self, id: u32) -> &Pred {
        self.preds[id as usize].as_ref().expect("live pred")
    }
}

/// One shard's worth of attribute partitions plus the shared constraint
/// arena and the store-wide mask-slot allocator.
#[derive(Debug, Clone, Default)]
pub(crate) struct PredStore {
    arena: ConstraintArena,
    attr_ids: HashMap<String, u32>,
    attrs: Vec<AttrIndex>,
    free_mask_slots: Vec<u32>,
    mask_slots: u32,
}

impl PredStore {
    /// Id of an attribute already seen by this store.
    #[inline]
    pub(crate) fn attr_id(&self, name: &str) -> Option<u32> {
        self.attr_ids.get(name).copied()
    }

    /// Id of `name`, creating the attribute partition if needed.
    pub(crate) fn ensure_attr(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.attr_ids.get(name) {
            return id;
        }
        let id = self.attrs.len() as u32;
        self.attr_ids.insert(name.to_string(), id);
        self.attrs.push(AttrIndex::default());
        id
    }

    /// The predicate `(attr_id, pred_id)`.
    #[inline]
    pub(crate) fn pred(&self, attr_id: u32, pred_id: u32) -> &Pred {
        self.attrs[attr_id as usize].pred(pred_id)
    }

    /// Filters (by entry id) constraining the attribute.
    pub(crate) fn attr_filters(&self, attr_id: u32) -> impl Iterator<Item = u32> + '_ {
        self.attrs[attr_id as usize].filters.iter().copied()
    }

    /// Number of live predicates across all attributes.
    pub(crate) fn pred_count(&self) -> usize {
        self.attrs
            .iter()
            .map(|a| a.preds.len() - a.free.len())
            .sum()
    }

    /// Number of distinct interned constraints.
    pub(crate) fn interned_count(&self) -> usize {
        self.arena.len()
    }

    /// Upper bound (exclusive) of the mask slots handed out so far; sizes
    /// the batch kernel's per-predicate scratch.
    pub(crate) fn mask_slot_count(&self) -> usize {
        self.mask_slots as usize
    }

    /// Registers `fid` as a user of `constraint` on the attribute, creating
    /// the deduplicated predicate if this is its first user.  `solo` marks
    /// `fid` as a single-constraint filter, which feeds the covering
    /// summary.  Returns the predicate id.
    pub(crate) fn add_constraint(
        &mut self,
        attr_id: u32,
        constraint: &Constraint,
        fid: u32,
        solo: bool,
    ) -> u32 {
        let cid = self.arena.intern(constraint);
        let attr = &mut self.attrs[attr_id as usize];
        let pred_id = match attr.dedup.get(&cid) {
            Some(&id) => {
                // The predicate already holds a reference to the constraint.
                self.arena.release(cid);
                id
            }
            None => {
                let mask_slot = match self.free_mask_slots.pop() {
                    Some(slot) => slot,
                    None => {
                        self.mask_slots += 1;
                        self.mask_slots - 1
                    }
                };
                let id = add_pred(attr, constraint, cid, mask_slot);
                attr.dedup.insert(cid, id);
                id
            }
        };
        let attr = &mut self.attrs[attr_id as usize];
        let first_solo = {
            let pred = attr.preds[pred_id as usize].as_mut().expect("live pred");
            pred.postings.push(fid);
            if solo {
                pred.solo += 1;
            }
            solo && pred.solo == 1
        };
        if first_solo {
            register_solo(attr, pred_id);
        }
        attr.filters.insert(fid);
        pred_id
    }

    /// Unregisters `fid` from the predicate, dropping the predicate when its
    /// posting list becomes empty.  `solo` must match the flag the filter
    /// was inserted with so the covering summary stays balanced.
    pub(crate) fn remove_constraint(&mut self, attr_id: u32, pred_id: u32, fid: u32, solo: bool) {
        let attr = &mut self.attrs[attr_id as usize];
        let last_solo = {
            let pred = attr.preds[pred_id as usize].as_mut().expect("live pred");
            let pos = pred
                .postings
                .iter()
                .position(|&f| f == fid)
                .expect("fid in postings");
            pred.postings.remove(pos);
            if solo {
                pred.solo -= 1;
            }
            solo && pred.solo == 0
        };
        if last_solo {
            unregister_solo(attr, pred_id);
        }
        attr.filters.remove(&fid);
        if attr.preds[pred_id as usize]
            .as_ref()
            .expect("live pred")
            .postings
            .is_empty()
        {
            let pred = attr.preds[pred_id as usize].take().expect("live pred");
            attr.dedup.remove(&pred.cid);
            drop_pred_registration(attr, pred_id, &pred.slot);
            attr.free.push(pred_id);
            self.free_mask_slots.push(pred.mask_slot);
            self.arena.release(pred.cid);
        }
    }

    /// Walks every predicate of the attribute that the value satisfies,
    /// exactly once each, in deterministic order.
    pub(crate) fn for_each_satisfied(
        &self,
        attr_id: u32,
        value: &Value,
        visit: &mut impl FnMut(&Pred),
    ) {
        let attr = &self.attrs[attr_id as usize];
        // Equality class: one hash lookup, then exact verification (canonical
        // numeric keys can collide across `i64`/`f64` extremes).
        if let Some(list) = attr.eq.get(&canon_key(value)) {
            for &id in list {
                let pred = attr.pred(id);
                if self.arena.get(pred.cid).matches_value(value) {
                    visit(pred);
                }
            }
        }
        // Ordered numeric partitions: strictly-inside classes are satisfied
        // by construction of the sort key; the boundary class is verified.
        if let Some(vk) = value_num_key(value) {
            for (&k, list) in attr.lt.range((Excluded(vk), Unbounded)) {
                debug_assert!(k > vk);
                for &id in list {
                    visit(attr.pred(id));
                }
            }
            for (&k, list) in attr.le.range(vk..) {
                for &id in list {
                    let pred = attr.pred(id);
                    if k > vk || self.arena.get(pred.cid).matches_value(value) {
                        visit(pred);
                    }
                }
            }
            for (&k, list) in attr.gt.range(..vk) {
                debug_assert!(k < vk);
                for &id in list {
                    visit(attr.pred(id));
                }
            }
            for (&k, list) in attr.ge.range(..=vk) {
                for &id in list {
                    let pred = attr.pred(id);
                    if k < vk || self.arena.get(pred.cid).matches_value(value) {
                        visit(pred);
                    }
                }
            }
            // Boundary classes of the strict partitions still need the exact
            // check (e.g. `Int(2^53)` and `Float(2^53 as f64)` share a key).
            for map in [&attr.lt, &attr.gt] {
                if let Some(list) = map.get(&vk) {
                    for &id in list {
                        let pred = attr.pred(id);
                        if self.arena.get(pred.cid).matches_value(value) {
                            visit(pred);
                        }
                    }
                }
            }
            // `Between` candidates: every class whose lower bound is ≤ the
            // value, verified exactly (the upper bound needs checking anyway).
            for (_, list) in attr.between.range(..=vk) {
                for &id in list {
                    let pred = attr.pred(id);
                    if self.arena.get(pred.cid).matches_value(value) {
                        visit(pred);
                    }
                }
            }
        }
        // Presence satisfies every `Exists` predicate.
        for &id in &attr.exists {
            visit(attr.pred(id));
        }
        // Residual predicates: direct evaluation.
        for &id in &attr.residual {
            let pred = attr.pred(id);
            if self.arena.get(pred.cid).matches_value(value) {
                visit(pred);
            }
        }
    }

    /// Walks every live predicate of the attribute whose constraint
    /// **covers** `probe`, exactly once each, in deterministic order.
    ///
    /// Candidates are enumerated per partition range (see the module
    /// documentation) and verified with the exact [`Constraint::covers`]
    /// test, so the walk visits only the predicates whose bounds overlap
    /// the probe's instead of every distinct predicate of the attribute.
    pub(crate) fn for_each_covering(
        &self,
        attr_id: u32,
        probe: &Constraint,
        visit: &mut impl FnMut(&Pred),
    ) {
        let attr = &self.attrs[attr_id as usize];
        // `Exists` covers every constraint; no verification needed.
        for &id in &attr.exists {
            visit(attr.pred(id));
        }
        // Residual predicates (strings, `Ne`, non-numeric bounds) are always
        // candidates; verify exactly.
        for &id in &attr.residual {
            let pred = attr.pred(id);
            if self.arena.get(pred.cid).covers(probe) {
                visit(pred);
            }
        }
        let mut verify = |pred: &Pred| {
            if self.arena.get(pred.cid).covers(probe) {
                visit(pred);
            }
        };
        match probe {
            // Only `Exists` covers `Exists` (already visited above).
            Constraint::Exists => {}
            // A predicate covers a point exactly when it accepts the point,
            // so the candidate ranges mirror `for_each_satisfied`.
            Constraint::Eq(v) => {
                visit_class(attr, attr.eq.get(&canon_key(v)), &mut verify);
                if let Some(vk) = value_num_key(v) {
                    visit_range(attr, attr.lt.range(vk..), &mut verify);
                    visit_range(attr, attr.le.range(vk..), &mut verify);
                    visit_range(attr, attr.gt.range(..=vk), &mut verify);
                    visit_range(attr, attr.ge.range(..=vk), &mut verify);
                    visit_range(attr, attr.between.range(..=vk), &mut verify);
                }
            }
            Constraint::In(set) => {
                // A covering equality predicate accepts every member, so it
                // is registered under the first member's class; a covering
                // `Between` needs a lower bound at or below the smallest
                // numeric member (and covers nothing if any member is
                // non-numeric).
                if let Some(first) = set.iter().next() {
                    visit_class(attr, attr.eq.get(&canon_key(first)), &mut verify);
                    let keys: Option<Vec<u64>> = set.iter().map(value_num_key).collect();
                    if let Some(min) = keys.and_then(|ks| ks.into_iter().min()) {
                        visit_range(attr, attr.between.range(..=min), &mut verify);
                    }
                } else {
                    // The empty set is covered *vacuously* by every `In` and
                    // every numeric `Between` predicate; there is no member
                    // class to anchor a range walk on, so test the equality
                    // and interval partitions exhaustively.
                    for pred in attr.preds.iter().flatten() {
                        if matches!(pred.slot, Slot::Eq { .. } | Slot::Between(_)) {
                            verify(pred);
                        }
                    }
                }
            }
            Constraint::Lt(b) | Constraint::Le(b) => {
                // Downward-unbounded probes are covered only by
                // downward-unbounded predicates with bounds at or above the
                // probe's.  (Non-numeric bounds live in the residual class.)
                if let Some(bk) = value_num_key(b) {
                    visit_range(attr, attr.lt.range(bk..), &mut verify);
                    visit_range(attr, attr.le.range(bk..), &mut verify);
                }
            }
            Constraint::Gt(b) | Constraint::Ge(b) => {
                if let Some(bk) = value_num_key(b) {
                    visit_range(attr, attr.gt.range(..=bk), &mut verify);
                    visit_range(attr, attr.ge.range(..=bk), &mut verify);
                }
            }
            Constraint::Between(lo, hi) => {
                if let (Some(lk), Some(hk)) = (value_num_key(lo), value_num_key(hi)) {
                    visit_range(attr, attr.lt.range(hk..), &mut verify);
                    visit_range(attr, attr.le.range(hk..), &mut verify);
                    visit_range(attr, attr.gt.range(..=lk), &mut verify);
                    visit_range(attr, attr.ge.range(..=lk), &mut verify);
                    visit_range(attr, attr.between.range(..=lk), &mut verify);
                    // Point intervals can additionally be covered by
                    // equality predicates containing the point.
                    if lo.value_eq(hi) {
                        visit_class(attr, attr.eq.get(&canon_key(lo)), &mut verify);
                    }
                }
            }
            // Equality and ordered-numeric predicates never cover `Ne` or
            // string constraints (`Constraint::covers` is sound-but-not-
            // complete and proves none of these cases).
            Constraint::Ne(_)
            | Constraint::Prefix(_)
            | Constraint::Suffix(_)
            | Constraint::Contains(_) => {}
        }
    }

    /// Walks every live predicate of the attribute whose constraint is
    /// **covered by** `probe`, exactly once each, in deterministic order.
    pub(crate) fn for_each_covered(
        &self,
        attr_id: u32,
        probe: &Constraint,
        visit: &mut impl FnMut(&Pred),
    ) {
        let attr = &self.attrs[attr_id as usize];
        if matches!(probe, Constraint::Exists) {
            // `Exists` covers everything; no verification needed.
            for pred in attr.preds.iter().flatten() {
                visit(pred);
            }
            return;
        }
        let mut verify = |pred: &Pred| {
            if probe.covers(self.arena.get(pred.cid)) {
                visit(pred);
            }
        };
        match probe {
            Constraint::Exists => unreachable!("handled above"),
            Constraint::Eq(v) => {
                // Covered predicates accept at most the point: equality
                // predicates in the point's class and point `Between`s.
                visit_class(attr, attr.eq.get(&canon_key(v)), &mut verify);
                if let Some(vk) = value_num_key(v) {
                    visit_class(attr, attr.between.get(&vk), &mut verify);
                }
                visit_list(attr, &attr.residual, &mut verify);
            }
            Constraint::In(set) if !set.is_empty() => {
                // An equality predicate covered by the set has all its
                // members in it; visiting it only from its *first* member's
                // class keeps the walk exactly-once even though `In`
                // predicates are registered under every member.  Member
                // values that alias under `value_eq` (e.g. `3` vs `3.0`)
                // are deduplicated first for the same reason.
                let mut keys: Vec<CanonKey> = Vec::with_capacity(set.len());
                for v in set {
                    let k = canon_key(v);
                    if !keys.contains(&k) {
                        keys.push(k);
                    }
                }
                for k in &keys {
                    if let Some(list) = attr.eq.get(k) {
                        for &id in list {
                            let pred = attr.pred(id);
                            let first_key = match &pred.slot {
                                Slot::Eq { keys, .. } => keys.first(),
                                _ => unreachable!("eq class holds Eq slots"),
                            };
                            if first_key == Some(k) {
                                verify(pred);
                            }
                        }
                    }
                    if let CanonKey::Num(nk) = k {
                        visit_class(attr, attr.between.get(nk), &mut verify);
                    }
                }
                visit_list(attr, &attr.residual, &mut verify);
            }
            Constraint::Lt(b) | Constraint::Le(b) if value_num_key(b).is_some() => {
                let bk = value_num_key(b).expect("checked numeric");
                visit_range(attr, attr.lt.range(..=bk), &mut verify);
                visit_range(attr, attr.le.range(..=bk), &mut verify);
                visit_range(attr, attr.between.range(..=bk), &mut verify);
                visit_range(attr, attr.eq_num.range(..=bk), &mut verify);
                visit_list(attr, &attr.residual, &mut verify);
            }
            Constraint::Gt(b) | Constraint::Ge(b) if value_num_key(b).is_some() => {
                let bk = value_num_key(b).expect("checked numeric");
                visit_range(attr, attr.gt.range(bk..), &mut verify);
                visit_range(attr, attr.ge.range(bk..), &mut verify);
                visit_range(attr, attr.between.range(bk..), &mut verify);
                visit_range(attr, attr.eq_num.range(bk..), &mut verify);
                visit_list(attr, &attr.residual, &mut verify);
            }
            Constraint::Between(lo, hi)
                if value_num_key(lo).is_some() && value_num_key(hi).is_some() =>
            {
                let (lk, hk) = (
                    value_num_key(lo).expect("checked numeric"),
                    value_num_key(hi).expect("checked numeric"),
                );
                if lk <= hk {
                    // A covered `Between` starts inside the probe interval;
                    // a covered equality predicate has its smallest member
                    // inside it.
                    visit_range(attr, attr.between.range(lk..=hk), &mut verify);
                    visit_range(attr, attr.eq_num.range(lk..=hk), &mut verify);
                }
                visit_list(attr, &attr.residual, &mut verify);
            }
            // Residual-class probes (`Ne`, strings, non-numeric bounds,
            // empty `In`): the covered set is not range-enumerable, so fall
            // back to the full exact walk.
            _ => {
                for pred in attr.preds.iter().flatten() {
                    verify(pred);
                }
            }
        }
    }

    /// `true` when some stored **single-constraint** filter on this
    /// attribute provably covers `probe` — a sufficient covering witness
    /// for any probe filter constraining the attribute, answered from the
    /// covering summary without walking a single posting list.
    ///
    /// Summary keys strictly inside the covering range imply covering by
    /// monotonicity of [`num_sort_key`] (a strictly larger key is a strictly
    /// larger bound); boundary keys are verified exactly against the class
    /// lists, since distinct huge `i64`/`f64` bounds can collide on one key.
    /// A `false` result only means "no one-constraint witness found" — the
    /// caller falls back to the counting walk.
    pub(crate) fn solo_covers(&self, attr_id: u32, probe: &Constraint) -> bool {
        let attr = &self.attrs[attr_id as usize];
        if attr.solo_exists > 0 {
            return true;
        }
        if attr.solo_residual > 0
            && attr.residual.iter().any(|&id| {
                let pred = attr.pred(id);
                pred.solo > 0 && self.arena.get(pred.cid).covers(probe)
            })
        {
            return true;
        }
        let above =
            |map: &BTreeMap<u64, u32>, k: u64| map.range((Excluded(k), Unbounded)).next().is_some();
        let below = |map: &BTreeMap<u64, u32>, k: u64| map.range(..k).next().is_some();
        let verify_at = |class: &ClassMap, solo: &BTreeMap<u64, u32>, k: u64| {
            solo.contains_key(&k)
                && class.get(&k).is_some_and(|list| {
                    list.iter().any(|&id| {
                        let pred = attr.pred(id);
                        pred.solo > 0 && self.arena.get(pred.cid).covers(probe)
                    })
                })
        };
        let verify_eq_class = |k: &CanonKey| {
            attr.solo_eq.contains_key(k)
                && attr.eq.get(k).is_some_and(|list| {
                    list.iter().any(|&id| {
                        let pred = attr.pred(id);
                        pred.solo > 0 && self.arena.get(pred.cid).covers(probe)
                    })
                })
        };
        match probe {
            // Only `Exists` covers `Exists` (summary count checked above).
            Constraint::Exists => false,
            Constraint::Eq(v) => {
                if verify_eq_class(&canon_key(v)) {
                    return true;
                }
                value_num_key(v).is_some_and(|vk| {
                    above(&attr.solo_lt, vk)
                        || above(&attr.solo_le, vk)
                        || below(&attr.solo_gt, vk)
                        || below(&attr.solo_ge, vk)
                        || verify_at(&attr.lt, &attr.solo_lt, vk)
                        || verify_at(&attr.le, &attr.solo_le, vk)
                        || verify_at(&attr.gt, &attr.solo_gt, vk)
                        || verify_at(&attr.ge, &attr.solo_ge, vk)
                })
            }
            // A covering equality predicate accepts every member, so it is
            // registered under the first member's key; ordered predicates
            // never provably cover a set (`Constraint::covers` is sound but
            // not complete there, matching `for_each_covering`).
            Constraint::In(set) => set
                .iter()
                .next()
                .is_some_and(|first| verify_eq_class(&canon_key(first))),
            Constraint::Lt(b) | Constraint::Le(b) => value_num_key(b).is_some_and(|bk| {
                above(&attr.solo_lt, bk)
                    || above(&attr.solo_le, bk)
                    || verify_at(&attr.lt, &attr.solo_lt, bk)
                    || verify_at(&attr.le, &attr.solo_le, bk)
            }),
            Constraint::Gt(b) | Constraint::Ge(b) => value_num_key(b).is_some_and(|bk| {
                below(&attr.solo_gt, bk)
                    || below(&attr.solo_ge, bk)
                    || verify_at(&attr.gt, &attr.solo_gt, bk)
                    || verify_at(&attr.ge, &attr.solo_ge, bk)
            }),
            Constraint::Between(lo, hi) => {
                match (value_num_key(lo), value_num_key(hi)) {
                    (Some(lk), Some(hk)) => {
                        // Point intervals can additionally be covered by
                        // equality predicates containing the point.
                        (lo.value_eq(hi) && verify_eq_class(&canon_key(lo)))
                            || above(&attr.solo_lt, hk)
                            || above(&attr.solo_le, hk)
                            || below(&attr.solo_gt, lk)
                            || below(&attr.solo_ge, lk)
                            || verify_at(&attr.lt, &attr.solo_lt, hk)
                            || verify_at(&attr.le, &attr.solo_le, hk)
                            || verify_at(&attr.gt, &attr.solo_gt, lk)
                            || verify_at(&attr.ge, &attr.solo_ge, lk)
                    }
                    _ => false,
                }
            }
            // Nothing in the summarized classes covers `Ne` or string
            // constraints (residual witnesses were checked above).
            Constraint::Ne(_)
            | Constraint::Prefix(_)
            | Constraint::Suffix(_)
            | Constraint::Contains(_) => false,
        }
    }

    /// Upper bound on the number of postings [`PredStore::for_each_covered`]
    /// would touch for `probe` on this attribute (candidate enumeration
    /// without verification).  The anchored covered walk uses this to pick
    /// the cheapest probe attribute to enumerate.
    pub(crate) fn covered_volume(&self, attr_id: u32, probe: &Constraint) -> usize {
        let attr = &self.attrs[attr_id as usize];
        let ids_vol =
            |ids: &[u32]| -> usize { ids.iter().map(|&id| attr.pred(id).postings.len()).sum() };
        let class_vol = |list: Option<&SmallVec<u32, 2>>| list.map_or(0, |l| ids_vol(l));
        let range_vol = |range: std::collections::btree_map::Range<'_, u64, SmallVec<u32, 2>>| {
            range.map(|(_, l)| ids_vol(l)).sum::<usize>()
        };
        let residual_vol = ids_vol(&attr.residual);
        match probe {
            Constraint::Exists => attr
                .preds
                .iter()
                .flatten()
                .map(|p| p.postings.len())
                .sum::<usize>(),
            Constraint::Eq(v) => {
                let mut vol = class_vol(attr.eq.get(&canon_key(v))) + residual_vol;
                if let Some(vk) = value_num_key(v) {
                    vol += class_vol(attr.between.get(&vk));
                }
                vol
            }
            Constraint::In(set) if !set.is_empty() => {
                let mut vol = residual_vol;
                for v in set {
                    let k = canon_key(v);
                    vol += class_vol(attr.eq.get(&k));
                    if let CanonKey::Num(nk) = k {
                        vol += class_vol(attr.between.get(&nk));
                    }
                }
                vol
            }
            Constraint::Lt(b) | Constraint::Le(b) if value_num_key(b).is_some() => {
                let bk = value_num_key(b).expect("checked numeric");
                range_vol(attr.lt.range(..=bk))
                    + range_vol(attr.le.range(..=bk))
                    + range_vol(attr.between.range(..=bk))
                    + range_vol(attr.eq_num.range(..=bk))
                    + residual_vol
            }
            Constraint::Gt(b) | Constraint::Ge(b) if value_num_key(b).is_some() => {
                let bk = value_num_key(b).expect("checked numeric");
                range_vol(attr.gt.range(bk..))
                    + range_vol(attr.ge.range(bk..))
                    + range_vol(attr.between.range(bk..))
                    + range_vol(attr.eq_num.range(bk..))
                    + residual_vol
            }
            Constraint::Between(lo, hi)
                if value_num_key(lo).is_some() && value_num_key(hi).is_some() =>
            {
                let (lk, hk) = (
                    value_num_key(lo).expect("checked numeric"),
                    value_num_key(hi).expect("checked numeric"),
                );
                let mut vol = residual_vol;
                if lk <= hk {
                    vol += range_vol(attr.between.range(lk..=hk))
                        + range_vol(attr.eq_num.range(lk..=hk));
                }
                vol
            }
            _ => attr
                .preds
                .iter()
                .flatten()
                .map(|p| p.postings.len())
                .sum::<usize>(),
        }
    }

    /// The live predicate for `constraint` on the attribute, when one
    /// exists — a pure lookup that never interns.
    pub(crate) fn resolve_pred(&self, attr_id: u32, constraint: &Constraint) -> Option<u32> {
        let cid = self.arena.lookup(constraint)?;
        self.attrs[attr_id as usize].dedup.get(&cid).copied()
    }

    /// The constraint behind predicate `(attr_id, pred_id)`.
    #[inline]
    pub(crate) fn constraint_of(&self, attr_id: u32, pred_id: u32) -> &Constraint {
        self.arena.get(self.pred(attr_id, pred_id).cid)
    }
}

/// Visits every predicate of one partition class through `verify`.
#[inline]
fn visit_class<const N: usize>(
    attr: &AttrIndex,
    list: Option<&SmallVec<u32, N>>,
    verify: &mut impl FnMut(&Pred),
) {
    if let Some(list) = list {
        for &id in list {
            verify(attr.pred(id));
        }
    }
}

/// Visits every predicate of a run of ordered classes through `verify`.
#[inline]
fn visit_range<'a, const N: usize>(
    attr: &AttrIndex,
    range: impl Iterator<Item = (&'a u64, &'a SmallVec<u32, N>)>,
    verify: &mut impl FnMut(&Pred),
) where
    SmallVec<u32, N>: 'a,
{
    for (_, list) in range {
        for &id in list {
            verify(attr.pred(id));
        }
    }
}

#[inline]
fn visit_list<const N: usize>(
    attr: &AttrIndex,
    list: &SmallVec<u32, N>,
    verify: &mut impl FnMut(&Pred),
) {
    for &id in list {
        verify(attr.pred(id));
    }
}

/// Classifies a constraint and registers a new predicate in the right
/// partitions, returning its id within the attribute.
fn add_pred(attr: &mut AttrIndex, constraint: &Constraint, cid: u32, mask_slot: u32) -> u32 {
    let slot = match constraint {
        Constraint::Eq(v) => Slot::Eq {
            keys: vec![canon_key(v)],
            num_key: value_num_key(v),
        },
        Constraint::In(set) if !set.is_empty() => {
            let mut keys: Vec<CanonKey> = Vec::with_capacity(set.len());
            for v in set {
                let k = canon_key(v);
                if !keys.contains(&k) {
                    keys.push(k);
                }
            }
            let num_key = set
                .iter()
                .map(value_num_key)
                .collect::<Option<Vec<u64>>>()
                .and_then(|ks| ks.into_iter().min());
            Slot::Eq { keys, num_key }
        }
        Constraint::Lt(v) => value_num_key(v).map(Slot::Lt).unwrap_or(Slot::Residual),
        Constraint::Le(v) => value_num_key(v).map(Slot::Le).unwrap_or(Slot::Residual),
        Constraint::Gt(v) => value_num_key(v).map(Slot::Gt).unwrap_or(Slot::Residual),
        Constraint::Ge(v) => value_num_key(v).map(Slot::Ge).unwrap_or(Slot::Residual),
        Constraint::Between(lo, hi) => match (value_num_key(lo), value_num_key(hi)) {
            (Some(lo_key), Some(_)) => Slot::Between(lo_key),
            _ => Slot::Residual,
        },
        Constraint::Exists => Slot::Exists,
        // Empty `In` sets accept nothing but still take part in covering
        // relations; the residual class keeps them exact.
        Constraint::In(_)
        | Constraint::Ne(_)
        | Constraint::Prefix(_)
        | Constraint::Suffix(_)
        | Constraint::Contains(_) => Slot::Residual,
    };
    let id = match attr.free.pop() {
        Some(id) => id,
        None => {
            attr.preds.push(None);
            (attr.preds.len() - 1) as u32
        }
    };
    match &slot {
        Slot::Eq { keys, num_key } => {
            for k in keys {
                attr.eq.entry(k.clone()).or_default().push(id);
            }
            if let Some(nk) = num_key {
                attr.eq_num.entry(*nk).or_default().push(id);
            }
        }
        Slot::Lt(k) => attr.lt.entry(*k).or_default().push(id),
        Slot::Le(k) => attr.le.entry(*k).or_default().push(id),
        Slot::Gt(k) => attr.gt.entry(*k).or_default().push(id),
        Slot::Ge(k) => attr.ge.entry(*k).or_default().push(id),
        Slot::Between(k) => attr.between.entry(*k).or_default().push(id),
        Slot::Exists => attr.exists.push(id),
        Slot::Residual => attr.residual.push(id),
    }
    attr.preds[id as usize] = Some(Pred {
        id,
        cid,
        slot,
        mask_slot,
        postings: SmallVec::new(),
        solo: 0,
    });
    id
}

/// Registers a predicate that just gained its first single-constraint-filter
/// posting in the covering summary of its class.  `Between` predicates are
/// not summarized (their covering test needs both bounds); probes they could
/// cover simply fall through to the range-partitioned walk.
fn register_solo(attr: &mut AttrIndex, pred_id: u32) {
    let slot = attr.preds[pred_id as usize]
        .as_ref()
        .expect("live pred")
        .slot
        .clone();
    match &slot {
        Slot::Eq { keys, .. } => {
            for k in keys {
                *attr.solo_eq.entry(k.clone()).or_insert(0) += 1;
            }
        }
        Slot::Lt(k) => *attr.solo_lt.entry(*k).or_insert(0) += 1,
        Slot::Le(k) => *attr.solo_le.entry(*k).or_insert(0) += 1,
        Slot::Gt(k) => *attr.solo_gt.entry(*k).or_insert(0) += 1,
        Slot::Ge(k) => *attr.solo_ge.entry(*k).or_insert(0) += 1,
        Slot::Between(_) => {}
        Slot::Exists => attr.solo_exists += 1,
        Slot::Residual => attr.solo_residual += 1,
    }
}

/// Removes a predicate that lost its last single-constraint-filter posting
/// from the covering summary.
fn unregister_solo(attr: &mut AttrIndex, pred_id: u32) {
    fn dec_map(map: &mut BTreeMap<u64, u32>, key: u64) {
        let count = map.get_mut(&key).expect("solo summary key");
        *count -= 1;
        if *count == 0 {
            map.remove(&key);
        }
    }
    let slot = attr.preds[pred_id as usize]
        .as_ref()
        .expect("live pred")
        .slot
        .clone();
    match &slot {
        Slot::Eq { keys, .. } => {
            for k in keys {
                let count = attr.solo_eq.get_mut(k).expect("solo eq key");
                *count -= 1;
                if *count == 0 {
                    attr.solo_eq.remove(k);
                }
            }
        }
        Slot::Lt(k) => dec_map(&mut attr.solo_lt, *k),
        Slot::Le(k) => dec_map(&mut attr.solo_le, *k),
        Slot::Gt(k) => dec_map(&mut attr.solo_gt, *k),
        Slot::Ge(k) => dec_map(&mut attr.solo_ge, *k),
        Slot::Between(_) => {}
        Slot::Exists => attr.solo_exists -= 1,
        Slot::Residual => attr.solo_residual -= 1,
    }
}

/// Unregisters a dropped predicate from its partition classes.
fn drop_pred_registration(attr: &mut AttrIndex, id: u32, slot: &Slot) {
    fn remove_from<const N: usize>(list: &mut SmallVec<u32, N>, id: u32) {
        let pos = list
            .iter()
            .position(|p| *p == id)
            .expect("pred in partition");
        list.remove(pos);
    }
    fn remove_from_map(map: &mut ClassMap, key: u64, id: u32) {
        let list = map.get_mut(&key).expect("bound class exists");
        remove_from(list, id);
        if list.is_empty() {
            map.remove(&key);
        }
    }
    match slot {
        Slot::Eq { keys, num_key } => {
            for k in keys {
                let list = attr.eq.get_mut(k).expect("eq class exists");
                remove_from(list, id);
                if list.is_empty() {
                    attr.eq.remove(k);
                }
            }
            if let Some(nk) = num_key {
                remove_from_map(&mut attr.eq_num, *nk, id);
            }
        }
        Slot::Lt(k) => remove_from_map(&mut attr.lt, *k, id),
        Slot::Le(k) => remove_from_map(&mut attr.le, *k, id),
        Slot::Gt(k) => remove_from_map(&mut attr.gt, *k, id),
        Slot::Ge(k) => remove_from_map(&mut attr.ge, *k, id),
        Slot::Between(k) => remove_from_map(&mut attr.between, *k, id),
        Slot::Exists => remove_from(&mut attr.exists, id),
        Slot::Residual => remove_from(&mut attr.residual, id),
    }
}
