//! Criterion benchmarks for the location model: `ploc` computation and
//! adaptivity planning, the operations performed on every location change.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rebeca_location::{AdaptivityPlan, LocationId, MovementGraph};

fn bench_ploc(c: &mut Criterion) {
    let mut group = c.benchmark_group("location/ploc");
    for &side in &[5usize, 10, 20] {
        let graph = MovementGraph::grid(side, side);
        let centre = LocationId((side * side / 2) as u32);
        for &q in &[1usize, 3, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("grid{side}x{side}"), q),
                &q,
                |b, &q| b.iter(|| black_box(graph.ploc(black_box(centre), q))),
            );
        }
    }
    group.finish();
}

fn bench_adaptivity(c: &mut Criterion) {
    let delays: Vec<u64> = (0..32).map(|i| 5_000 + i * 100).collect();
    c.bench_function("location/adaptivity_plan_32_hops", |b| {
        b.iter(|| {
            black_box(AdaptivityPlan::adaptive(
                black_box(1_000_000),
                black_box(&delays),
            ))
        })
    });
    let graph = MovementGraph::grid(10, 10);
    let plan = AdaptivityPlan::adaptive(1_000_000, &delays);
    c.bench_function("location/location_sets_10x10", |b| {
        b.iter(|| black_box(plan.location_sets(&graph, LocationId(45))))
    });
}

criterion_group!(benches, bench_ploc, bench_adaptivity);
criterion_main!(benches);
