//! In-process TCP cluster tests: brokers and clients in separate
//! [`TcpDriver`]s of one process, talking real loopback TCP.
//!
//! The broker system runs in a background thread (pumping its event loop)
//! while the test thread drives the client system interactively — exactly
//! the two-process deployment shape, minus the `fork`.  The multi-process
//! variant (spawned `rebeca-node` binaries) lives in `multiprocess.rs`.

mod common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rebeca_core::{MobilitySystem, SystemBuilder};
use rebeca_net::{Endpoint, FaultPlan, NetConfig, SystemBuilderTcp, TcpDriver};
use rebeca_sim::{DelayModel, SimDuration, Topology};

use common::{
    assert_exactly_once, builder, drive_retention_scenario, drive_scenario, reference_sim_log,
    retention_builder, retention_oracle_sim_log, CONSUMER, PRODUCER, RETAIN_TOTAL,
};

/// Builds the broker-side system: one driver hosting all three brokers of
/// the line, listening on an ephemeral loopback port.  Returns the system
/// and the endpoint client processes dial (the same for every broker —
/// connections are told apart by their handshakes).
fn broker_system() -> (MobilitySystem, Endpoint) {
    let placeholder = vec![Endpoint::new("127.0.0.1", 0); 3];
    let driver = TcpDriver::new(NetConfig::new(placeholder).host_all().seed(11))
        .expect("bind broker listener");
    let endpoint = driver.listen_endpoint().clone();
    let sys = builder(1)
        .build_with(Box::new(driver))
        .expect("broker system builds");
    (sys, endpoint)
}

/// Pumps a system's event loop until asked to stop, then returns it.
fn pump_in_background(
    mut sys: MobilitySystem,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<MobilitySystem> {
    std::thread::spawn(move || {
        while !stop.load(Ordering::SeqCst) {
            let now = sys.now();
            sys.run_until(now + SimDuration::from_millis(25));
        }
        sys
    })
}

/// The acceptance scenario: quickstart plus a mid-run relocation across
/// real TCP, asserted exactly-once and byte-identical to the simulator.
#[test]
fn loopback_cluster_matches_the_simulator_byte_for_byte() {
    let (broker_sys, endpoint) = broker_system();
    let stop = Arc::new(AtomicBool::new(false));
    let pump = pump_in_background(broker_sys, stop.clone());

    let client_net = NetConfig::new(vec![endpoint; 3]).seed(13);
    let mut client_sys = builder(1)
        .build_tcp(client_net)
        .expect("client system builds");

    let tcp_log = drive_scenario(&mut client_sys, 30_000);
    stop.store(true, Ordering::SeqCst);
    let broker_sys = pump.join().expect("broker pump thread");

    assert_exactly_once(&tcp_log);
    // The same scenario on the deterministic simulator delivers the
    // byte-identical log (same deliveries, same stream sequence numbers,
    // same order) — the transport is invisible to the protocol.
    let sim_log = reference_sim_log();
    assert_eq!(
        tcp_log, sim_log,
        "TCP and sim delivery logs must be identical"
    );

    // The brokers actually moved traffic over the wire.
    assert!(broker_sys.metrics().counter("net.frames_in") > 0);
    assert!(broker_sys.metrics().counter("net.frames_out") > 0);
    assert!(broker_sys.metrics().counter("net.hello_in") > 0);
}

/// Time-aware subscriptions over real TCP: the consumer detaches from
/// broker 0, misses >100 matching publications, and reattaches at broker 1
/// with a `since`-scoped subscription.  The retained history replays the
/// gap exactly once, merged in order with the live tail — byte-identical
/// to a never-detached run on the deterministic simulator.
#[test]
fn subscribe_since_replays_the_offline_gap_over_tcp() {
    let placeholder = vec![Endpoint::new("127.0.0.1", 0); 3];
    let driver = TcpDriver::new(NetConfig::new(placeholder).host_all().seed(17))
        .expect("bind broker listener");
    let endpoint = driver.listen_endpoint().clone();
    let broker_sys = retention_builder(1)
        .build_with(Box::new(driver))
        .expect("broker system builds");
    let stop = Arc::new(AtomicBool::new(false));
    let pump = pump_in_background(broker_sys, stop.clone());

    let client_net = NetConfig::new(vec![endpoint; 3]).seed(19);
    let mut client_sys = retention_builder(1)
        .build_tcp(client_net)
        .expect("client system builds");

    let tcp_log = drive_retention_scenario(&mut client_sys, 60_000);
    stop.store(true, Ordering::SeqCst);
    let broker_sys = pump.join().expect("broker pump thread");

    assert!(tcp_log.is_clean(), "violations: {:?}", tcp_log.violations());
    assert_eq!(
        tcp_log.distinct_publisher_seqs(PRODUCER),
        (1..=RETAIN_TOTAL).collect::<Vec<u64>>(),
        "the offline gap must be closed exactly once"
    );
    assert_eq!(
        tcp_log,
        retention_oracle_sim_log(),
        "history merge must be indistinguishable from never detaching"
    );

    // The history session ran on the broker side, fed by a remote broker's
    // retained slice, and the retention plane shows up in the status report.
    let m = broker_sys.metrics();
    assert_eq!(m.counter("retain.history_session_closed"), 1);
    assert!(m.counter("retain.replayed") >= 100);
    let status = broker_sys.status();
    let b2 = status.brokers.iter().find(|b| b.broker == 2).unwrap();
    assert!(
        b2.retained_publications >= 100,
        "origin broker reports its retained depth"
    );
    assert!(b2.oldest_retained_age_ms.is_some());
}

/// A broker split across two driver processes: broker 0 alone, brokers 1-2
/// together — broker↔broker links cross the wire too.
#[test]
fn split_broker_processes_deliver_end_to_end() {
    // Pre-bind two listeners on ephemeral ports to learn free port
    // numbers, then hand them to the two broker drivers.
    let probe_a = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let probe_b = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let port_a = probe_a.local_addr().unwrap().port();
    let port_b = probe_b.local_addr().unwrap().port();
    drop((probe_a, probe_b));
    let endpoints = vec![
        Endpoint::new("127.0.0.1", port_a),
        Endpoint::new("127.0.0.1", port_b),
        Endpoint::new("127.0.0.1", port_b),
    ];

    let sys_a = builder(1)
        .build_tcp(NetConfig::new(endpoints.clone()).host(0).seed(21))
        .expect("process A builds");
    let sys_b = builder(1)
        .build_tcp(NetConfig::new(endpoints.clone()).host(1).host(2).seed(22))
        .expect("process B builds");
    let stop = Arc::new(AtomicBool::new(false));
    let pump_a = pump_in_background(sys_a, stop.clone());
    let pump_b = pump_in_background(sys_b, stop.clone());

    let mut client_sys = builder(1)
        .build_tcp(NetConfig::new(endpoints).seed(23))
        .expect("client system builds");
    let tcp_log = drive_scenario(&mut client_sys, 30_000);

    stop.store(true, Ordering::SeqCst);
    let a = pump_a.join().expect("pump A");
    let b = pump_b.join().expect("pump B");

    assert_exactly_once(&tcp_log);
    assert_eq!(tcp_log, reference_sim_log());
    // The inter-broker edge 0-1 crossed processes.
    assert!(a.metrics().counter("net.frames_out") > 0);
    assert!(b.metrics().counter("net.frames_in") > 0);
}

/// The status plane over real TCP: after the scripted relocation, every
/// broker process answers a `StatusRequest` with live structured state —
/// routing tables, WAL depth, restart epoch, per-link heartbeat freshness,
/// the hand-off latency histogram, and a resumable journal tail.
#[test]
fn status_plane_reports_live_cluster_state() {
    let probe_a = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let probe_b = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let port_a = probe_a.local_addr().unwrap().port();
    let port_b = probe_b.local_addr().unwrap().port();
    drop((probe_a, probe_b));
    let endpoints = vec![
        Endpoint::new("127.0.0.1", port_a),
        Endpoint::new("127.0.0.1", port_b),
        Endpoint::new("127.0.0.1", port_b),
    ];

    // Broker 0 alone (restart epoch 2), brokers 1-2 together: the 0-1 edge
    // crosses the wire, so link liveness and heartbeat ages are real.
    let sys_a = builder(1)
        .build_tcp(
            NetConfig::new(endpoints.clone())
                .host(0)
                .epoch(2)
                .heartbeat(Duration::from_millis(50))
                .seed(31),
        )
        .expect("process A builds");
    let sys_b = builder(1)
        .build_tcp(
            NetConfig::new(endpoints.clone())
                .host(1)
                .host(2)
                .heartbeat(Duration::from_millis(50))
                .seed(32),
        )
        .expect("process B builds");
    let stop = Arc::new(AtomicBool::new(false));
    let pump_a = pump_in_background(sys_a, stop.clone());
    let pump_b = pump_in_background(sys_b, stop.clone());

    let mut client_sys = builder(1)
        .build_tcp(NetConfig::new(endpoints.clone()).seed(33))
        .expect("client system builds");
    let tcp_log = drive_scenario(&mut client_sys, 30_000);
    assert_exactly_once(&tcp_log);

    let timeout = Duration::from_secs(5);
    let report_a =
        rebeca_net::fetch_status(&endpoints[0], None, timeout).expect("process A serves status");
    let report_b =
        rebeca_net::fetch_status(&endpoints[1], None, timeout).expect("process B serves status");

    // Process A hosts exactly broker 0; process B brokers 1 and 2.
    assert_eq!(
        report_a
            .brokers
            .iter()
            .map(|b| b.broker)
            .collect::<Vec<_>>(),
        vec![0]
    );
    assert_eq!(
        report_b
            .brokers
            .iter()
            .map(|b| b.broker)
            .collect::<Vec<_>>(),
        vec![1, 2]
    );

    // Routing state is installed somewhere in the cluster.
    let routing_total: u64 = report_a
        .brokers
        .iter()
        .chain(&report_b.brokers)
        .map(|b| b.routing_entries)
        .sum();
    assert!(routing_total > 0, "no routing entries anywhere");
    let subgroup_total: u64 = report_a
        .brokers
        .iter()
        .chain(&report_b.brokers)
        .map(|b| b.routing_subgroups)
        .sum();
    assert!(
        subgroup_total > 0 && subgroup_total <= routing_total,
        "subgroups must be populated and never exceed entries \
         ({subgroup_total} of {routing_total})"
    );

    // The configured restart epoch is surfaced.
    assert_eq!(report_a.brokers[0].restart_epoch, 2);

    // Broker 0's wire link to broker 1 is up and recently heard from.
    let link_to_1 = report_a.brokers[0]
        .links
        .iter()
        .find(|l| l.peer == 1)
        .expect("broker 0 reports its link to broker 1");
    assert!(link_to_1.connected, "link 0->1 is up");
    let age = link_to_1
        .last_heartbeat_age_ms
        .expect("broker 1 has been heard from");
    assert!(age < 10_000, "heartbeat age is fresh, got {age}ms");

    // The relocation settled at the new border broker (broker 1, process
    // B): its hand-off latency histogram has non-zero quantiles.
    let histogram = &report_b.brokers[0].handoff_latency_micros;
    assert!(histogram.count() > 0, "hand-off latency was recorded");
    assert!(histogram.p50() > 0 && histogram.p99() >= histogram.p50());
    let relocation_counters: u64 = report_b
        .brokers
        .iter()
        .flat_map(|b| &b.relocations)
        .map(|(_, count)| count)
        .sum();
    assert!(relocation_counters > 0, "relocation counters in the report");

    // The journal tail is resumable: a cursor past the last seq is empty.
    let tail = rebeca_net::fetch_status(&endpoints[1], Some(0), timeout).expect("tail fetch");
    assert!(!tail.events.is_empty(), "journal events over the wire");
    let seqs: Vec<u64> = tail.events.iter().map(|e| e.seq).collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "seqs increase");
    assert!(
        tail.events
            .iter()
            .any(|e| e.kind.starts_with("relocation.")),
        "relocation transitions journaled"
    );
    let last = *seqs.last().unwrap();
    let resumed = rebeca_net::fetch_status(&endpoints[1], Some(last), timeout).expect("resume");
    assert!(
        resumed.events.iter().all(|e| e.seq > last),
        "resumed tail starts strictly after the cursor"
    );

    stop.store(true, Ordering::SeqCst);
    let _ = pump_a.join().expect("pump A");
    let _ = pump_b.join().expect("pump B");
}

/// The handshake carries node identity and epoch; heartbeats keep an idle
/// link alive without surfacing as protocol traffic.
#[test]
fn handshake_and_heartbeats_flow() {
    let listener_probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let port = listener_probe.local_addr().unwrap().port();
    drop(listener_probe);
    let endpoints = vec![Endpoint::new("127.0.0.1", port)];

    let mut broker = TcpDriver::new(
        NetConfig::new(endpoints.clone())
            .host(0)
            .epoch(3)
            .heartbeat(Duration::from_millis(30)),
    )
    .expect("broker driver binds");
    {
        // Host the single broker node on the raw driver.
        use rebeca_broker::BrokerRole;
        use rebeca_core::{Driver, MobileBroker, SystemNode};
        broker.add_node(SystemNode::Broker(MobileBroker::new(
            rebeca_sim::NodeId::new(0),
            BrokerRole::Border,
            Vec::new(),
            common::broker_config(),
        )));
    }

    let client_net = NetConfig::new(endpoints)
        .epoch(9)
        .heartbeat(Duration::from_millis(30));
    let mut client = SystemBuilder::new(&Topology::line(1))
        .link_delay(DelayModel::constant_millis(1))
        .build_tcp(client_net)
        .expect("client system builds");
    let session = client.connect(CONSUMER, 0).expect("connect");
    session
        .subscribe(&mut client, common::parking_filter())
        .expect("subscribe");

    // Drive both sides; use the raw Driver API on the broker side.
    use rebeca_core::Driver;
    for _ in 0..20 {
        let now = client.now();
        client.run_until(now + SimDuration::from_millis(10));
        let bnow = broker.now();
        broker.run_until(bnow + SimDuration::from_millis(10));
    }

    // The broker saw the client's handshake (node id 1 = first id after
    // the single-broker range) with the client's epoch.
    assert_eq!(broker.peer_epoch(rebeca_sim::NodeId::new(1)), Some(9));
    assert!(broker.metrics().counter("net.hello_in") >= 1);
    assert!(
        broker.metrics().counter("net.frames_in") >= 2,
        "attach + subscribe"
    );
}

/// Self-healing under injected faults: the client's writer drops its socket
/// after every third sequenced frame, redials, and replays its unacked
/// window — the scenario still delivers exactly-once, byte-identical to
/// the simulator, because receivers deduplicate by sequence number.
#[test]
fn forced_drops_resend_without_loss_or_duplication() {
    let (broker_sys, endpoint) = broker_system();
    let stop = Arc::new(AtomicBool::new(false));
    let pump = pump_in_background(broker_sys, stop.clone());

    let client_net = NetConfig::new(vec![endpoint; 3])
        .seed(41)
        .fault(FaultPlan::drop_after(3).recurring());
    let mut client_sys = builder(1)
        .build_tcp(client_net)
        .expect("client system builds");

    let tcp_log = drive_scenario(&mut client_sys, 60_000);
    stop.store(true, Ordering::SeqCst);
    let broker_sys = pump.join().expect("broker pump thread");

    assert_exactly_once(&tcp_log);
    assert_eq!(
        tcp_log,
        reference_sim_log(),
        "forced reconnects must be invisible to the protocol"
    );

    // The fault actually fired and the resend machinery actually worked.
    let m = client_sys.metrics();
    assert!(m.counter("net.link_down") >= 1, "no injected drop fired");
    assert!(
        m.counter("net.frames_resent") >= 1,
        "reconnect replayed nothing"
    );
    // Every drop was followed by a successful re-establishment.
    assert!(m.counter("net.link_up") > m.counter("net.link_down"));
    // The broker side silently absorbed any replay overlap.
    let dups = broker_sys.metrics().counter("net.frames_duplicate");
    let resent = m.counter("net.frames_resent");
    assert!(
        dups <= resent,
        "duplicates ({dups}) cannot exceed resends ({resent})"
    );
}

/// A raw-socket sender that repeats a sequenced frame sees it delivered
/// once: the reader deduplicates by per-direction sequence number and
/// acknowledges cumulatively.
#[test]
fn duplicate_frames_are_suppressed_and_acknowledged_cumulatively() {
    use rebeca_net::wire::Frame;
    use std::io::{Read, Write};

    let listener_probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let port = listener_probe.local_addr().unwrap().port();
    drop(listener_probe);
    let endpoints = vec![Endpoint::new("127.0.0.1", port)];

    let mut broker = TcpDriver::new(NetConfig::new(endpoints.clone()).host(0).seed(51))
        .expect("broker driver binds");
    {
        use rebeca_broker::BrokerRole;
        use rebeca_core::{Driver, MobileBroker, SystemNode};
        broker.add_node(SystemNode::Broker(MobileBroker::new(
            rebeca_sim::NodeId::new(0),
            BrokerRole::Border,
            Vec::new(),
            common::broker_config(),
        )));
    }

    let mut socket = std::net::TcpStream::connect(("127.0.0.1", port)).expect("dial broker");
    socket
        .set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    let hello = Frame::Hello {
        from: rebeca_sim::NodeId::new(1),
        to: rebeca_sim::NodeId::new(0),
        epoch: 0,
        listen: Endpoint::new("127.0.0.1", 1), // never dialled back in this test
        delay: DelayModel::Constant(0),
    };
    let first = Frame::Message {
        from: rebeca_sim::NodeId::new(1),
        to: rebeca_sim::NodeId::new(0),
        delay_micros: 0,
        seq: 1,
        message: rebeca_broker::Message::Attach { client: CONSUMER },
    };
    let second = Frame::Message {
        from: rebeca_sim::NodeId::new(1),
        to: rebeca_sim::NodeId::new(0),
        delay_micros: 0,
        seq: 2,
        message: rebeca_broker::Message::Subscribe {
            subscriber: CONSUMER,
            filter: common::parking_filter(),
        },
    };
    socket.write_all(&hello.encode_framed()).unwrap();
    socket.write_all(&first.encode_framed()).unwrap();
    // The retransmission a reconnecting writer would send: byte-identical.
    socket.write_all(&first.encode_framed()).unwrap();
    socket.write_all(&second.encode_framed()).unwrap();

    // Pump the broker until both unique frames landed, reading the acks the
    // reader pushes back on this same connection.
    use rebeca_core::Driver;
    let mut acked_high = 0u64;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    for _ in 0..100 {
        let now = broker.now();
        broker.run_until(now + SimDuration::from_millis(10));
        match socket.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => {}
        }
        let mut consumed = 0;
        while let Ok((frame, used)) = Frame::decode_framed(&buf[consumed..]) {
            consumed += used;
            if let Frame::Ack { seq } = frame {
                acked_high = acked_high.max(seq);
            }
        }
        buf.drain(..consumed);
        if acked_high >= 2 && broker.metrics().counter("net.frames_duplicate") >= 1 {
            break;
        }
    }

    assert_eq!(acked_high, 2, "cumulative ack reaches the receive high");
    assert_eq!(
        broker.metrics().counter("net.frames_in"),
        2,
        "the duplicate never reached the protocol"
    );
    assert_eq!(broker.metrics().counter("net.frames_duplicate"), 1);
}

/// Epoch fencing: a connection introducing itself with a stale restart
/// epoch is rejected with `Fenced`, and an already-accepted connection is
/// torn down as soon as a newer incarnation of the same peer appears.
#[test]
fn stale_epochs_are_fenced_and_zombie_connections_torn_down() {
    use rebeca_net::wire::Frame;
    use std::io::{Read, Write};

    let listener_probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let port = listener_probe.local_addr().unwrap().port();
    drop(listener_probe);
    let endpoints = vec![Endpoint::new("127.0.0.1", port)];

    let mut broker = TcpDriver::new(NetConfig::new(endpoints.clone()).host(0).seed(61))
        .expect("broker driver binds");
    {
        use rebeca_broker::BrokerRole;
        use rebeca_core::{Driver, MobileBroker, SystemNode};
        broker.add_node(SystemNode::Broker(MobileBroker::new(
            rebeca_sim::NodeId::new(0),
            BrokerRole::Border,
            Vec::new(),
            common::broker_config(),
        )));
    }

    let hello = |epoch: u64| Frame::Hello {
        from: rebeca_sim::NodeId::new(1),
        to: rebeca_sim::NodeId::new(0),
        epoch,
        listen: Endpoint::new("127.0.0.1", 1),
        delay: DelayModel::Constant(0),
    };
    let read_fenced = |socket: &mut std::net::TcpStream| -> Option<u64> {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 1024];
        for _ in 0..100 {
            match socket.read(&mut chunk) {
                Ok(0) => return None, // closed without a reply
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(_) => continue,
            }
            if let Ok((Frame::Fenced { expected }, _)) = Frame::decode_framed(&buf) {
                return Some(expected);
            }
        }
        None
    };
    use rebeca_core::Driver;
    let pump = |broker: &mut TcpDriver| {
        let now = broker.now();
        broker.run_until(now + SimDuration::from_millis(20));
    };

    // Incarnation with epoch 5 introduces itself and is accepted.
    let mut live = std::net::TcpStream::connect(("127.0.0.1", port)).expect("dial");
    live.set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    live.write_all(&hello(5).encode_framed()).unwrap();
    pump(&mut broker);

    // A zombie from before the restart (epoch 3) is rejected outright.
    let mut zombie = std::net::TcpStream::connect(("127.0.0.1", port)).expect("dial");
    zombie
        .set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    zombie.write_all(&hello(3).encode_framed()).unwrap();
    assert_eq!(
        read_fenced(&mut zombie),
        Some(5),
        "stale hello answered with the expected epoch"
    );

    // A successor incarnation (epoch 6) supersedes the live connection…
    let mut successor = std::net::TcpStream::connect(("127.0.0.1", port)).expect("dial");
    successor
        .set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    successor.write_all(&hello(6).encode_framed()).unwrap();
    pump(&mut broker);

    // …so the epoch-5 connection is fenced off even though it was once
    // legitimate: zombies can never interleave with their successors.
    assert_eq!(read_fenced(&mut live), Some(6), "zombie teardown");

    pump(&mut broker);
    assert!(
        broker.metrics().counter("net.link_fenced_rejected") >= 2,
        "both the stale hello and the superseded connection were counted"
    );
    let journal: Vec<_> = broker
        .metrics()
        .journal()
        .events()
        .filter(|e| e.kind == "link.fenced")
        .map(|e| e.detail.clone())
        .collect();
    assert!(
        journal.iter().any(|d| d.contains("stale_epoch=3")),
        "stale hello journaled, got {journal:?}"
    );
    assert!(
        journal.iter().any(|d| d.contains("stale_epoch=5")),
        "zombie teardown journaled, got {journal:?}"
    );
}

/// Regression: `step()` used to race a 1-microsecond phase window against
/// the live wall clock and intermittently return `false` with the connect
/// timer still pending — the `while system.step() {}` idiom then concluded
/// the system was idle before anything ran.
#[test]
fn step_dispatches_a_due_event_instead_of_reporting_idle() {
    let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let port = probe.local_addr().unwrap().port();
    drop(probe);
    let endpoints = vec![Endpoint::new("127.0.0.1", port)];
    for round in 0..20 {
        let mut client = SystemBuilder::new(&Topology::line(1))
            .link_delay(DelayModel::constant_millis(1))
            .build_tcp(NetConfig::new(endpoints.clone()).seed(round))
            .expect("client system builds");
        let _session = client.connect(CONSUMER, 0).expect("connect");
        // The Attach action timer is due immediately.
        assert!(
            client.step(),
            "round {round}: step() returned false with a due event pending"
        );
    }
}
