//! Shared scenario pieces of the TCP integration tests: the quickstart
//! topology, the mid-run relocation script, and the reference run on the
//! deterministic simulator the TCP runs must match byte for byte.
//!
//! Each integration-test binary uses its own subset of these helpers.
#![allow(dead_code)]

use rebeca_broker::{ClientId, ConsumerLog};
use rebeca_core::{BrokerConfig, MobilitySystem, RetentionConfig, SystemBuilder};
use rebeca_filter::{Constraint, Filter, Notification};
use rebeca_location::MovementGraph;
use rebeca_routing::RoutingStrategyKind;
use rebeca_sim::{DelayModel, SimDuration, Topology};

pub const CONSUMER: ClientId = ClientId::new(1);
pub const PRODUCER: ClientId = ClientId::new(2);
pub const PUBLICATIONS: u64 = 10;
/// The consumer relocates from broker 0 to broker 1 after this many
/// publications have been delivered.
pub const MOVE_AFTER: u64 = 5;

pub fn parking_filter() -> Filter {
    Filter::new().with("service", Constraint::Eq("parking".into()))
}

pub fn vacancy(i: u64) -> Notification {
    Notification::builder()
        .attr("service", "parking")
        .attr("spot", i as i64)
        .build()
}

pub fn broker_config() -> BrokerConfig {
    BrokerConfig::default()
        .with_strategy(RoutingStrategyKind::Covering)
        .with_movement_graph(MovementGraph::paper_example())
        .with_relocation_timeout(SimDuration::from_secs(5))
}

pub fn builder(delay_millis: u64) -> SystemBuilder {
    SystemBuilder::new(&Topology::line(3))
        .config(broker_config())
        .link_delay(DelayModel::constant_millis(delay_millis))
        .seed(7)
}

/// Publications delivered live before the detach in the retention scenario.
pub const RETAIN_PRE: u64 = 10;
/// Matching publications missed while detached (the acceptance floor is
/// 100).
pub const RETAIN_MISSED: u64 = 110;
/// Live publications after the history replay settled.
pub const RETAIN_TAIL: u64 = 10;
/// Total publications of the retention scenario.
pub const RETAIN_TOTAL: u64 = RETAIN_PRE + RETAIN_MISSED + RETAIN_TAIL;

/// Retention-enabled broker config for the time-aware subscription tests;
/// the relocation timeout doubles as the history-gather timeout.
pub fn retention_broker_config() -> BrokerConfig {
    broker_config()
        .with_relocation_timeout(SimDuration::from_secs(2))
        .with_retention(Some(RetentionConfig {
            segment_max_records: 32,
            max_segments: 64,
            retention_window_micros: 0,
        }))
}

pub fn retention_builder(delay_millis: u64) -> SystemBuilder {
    SystemBuilder::new(&Topology::line(3))
        .config(retention_broker_config())
        .link_delay(DelayModel::constant_millis(delay_millis))
        .seed(7)
}

/// Drives the retention acceptance scenario on an already-built system
/// (works on any driver): the consumer detaches from broker 0, misses
/// [`RETAIN_MISSED`] matching publications, reattaches at broker 1 with a
/// `since`-scoped subscription that replays the gap from the origin
/// broker's retention store, then receives a live tail.  Returns the
/// consumer's delivery log.
///
/// Every phase boundary is padded by a full second of quiet so the window
/// start is unambiguous even across the loosely-synchronised clocks of
/// separate wall-clock drivers.
pub fn drive_retention_scenario(sys: &mut MobilitySystem, budget_ms: u64) -> ConsumerLog {
    let consumer = sys.connect(CONSUMER, 0).expect("consumer connects");
    consumer
        .subscribe(sys, parking_filter())
        .expect("subscribe");
    let producer = sys.connect(PRODUCER, 2).expect("producer connects");
    let now = sys.now();
    sys.run_until(now + SimDuration::from_millis(300));

    for i in 1..=RETAIN_PRE {
        producer.publish(sys, vacancy(i)).expect("publish");
    }
    assert!(
        run_until_deliveries(sys, RETAIN_PRE as usize, budget_ms),
        "pre-detach publications not delivered in time: {:?}",
        sys.client_log(CONSUMER).unwrap().len()
    );
    let now = sys.now();
    sys.run_until(now + SimDuration::from_millis(1_000));

    consumer.detach(sys).expect("detach");
    let now = sys.now();
    sys.run_until(now + SimDuration::from_millis(1_000));
    // Mid-gap: strictly after every pre-detach retention timestamp,
    // strictly before every offline one.
    let since_micros = sys.now().as_micros();
    let now = sys.now();
    sys.run_until(now + SimDuration::from_millis(1_000));

    for i in RETAIN_PRE + 1..=RETAIN_PRE + RETAIN_MISSED {
        producer.publish(sys, vacancy(i)).expect("publish");
    }
    // Let the origin broker retain the offline batch.
    let now = sys.now();
    sys.run_until(now + SimDuration::from_millis(1_000));

    consumer.reattach(sys, 1).expect("reattach");
    let now = sys.now();
    sys.run_until(now + SimDuration::from_millis(300));
    consumer
        .subscribe_since(sys, parking_filter(), since_micros)
        .expect("subscribe_since");
    assert!(
        run_until_deliveries(sys, (RETAIN_PRE + RETAIN_MISSED) as usize, budget_ms),
        "history replay not delivered in time: {:?}",
        sys.client_log(CONSUMER).unwrap().len()
    );

    for i in RETAIN_PRE + RETAIN_MISSED + 1..=RETAIN_TOTAL {
        producer.publish(sys, vacancy(i)).expect("publish");
    }
    assert!(
        run_until_deliveries(sys, RETAIN_TOTAL as usize, budget_ms),
        "live tail not delivered in time: {:?}",
        sys.client_log(CONSUMER).unwrap().len()
    );
    sys.client_log(CONSUMER).unwrap().clone()
}

/// The never-detached oracle of the retention scenario: the identical
/// publication stream received live from start to finish on the
/// deterministic simulator.  A correct history merge is indistinguishable
/// from never having been away, so the detach/reattach runs must produce
/// a byte-identical consumer log.
pub fn retention_oracle_sim_log() -> ConsumerLog {
    let mut sys = retention_builder(1).build().expect("sim build");
    let consumer = sys.connect(CONSUMER, 0).expect("consumer connects");
    consumer
        .subscribe(&mut sys, parking_filter())
        .expect("subscribe");
    let producer = sys.connect(PRODUCER, 2).expect("producer connects");
    let now = sys.now();
    sys.run_until(now + SimDuration::from_millis(300));
    for i in 1..=RETAIN_TOTAL {
        producer.publish(&mut sys, vacancy(i)).expect("publish");
    }
    assert!(
        run_until_deliveries(&mut sys, RETAIN_TOTAL as usize, 60_000),
        "oracle run incomplete"
    );
    let log = sys.client_log(CONSUMER).unwrap().clone();
    assert!(log.is_clean(), "oracle run must be clean");
    log
}

/// Runs the driver until the consumer's log holds `want` deliveries or the
/// wall/virtual deadline passes.  Returns whether the target was reached.
pub fn run_until_deliveries(sys: &mut MobilitySystem, want: usize, budget_ms: u64) -> bool {
    let deadline = sys.now() + SimDuration::from_millis(budget_ms);
    loop {
        if sys.client_log(CONSUMER).unwrap().len() >= want {
            return true;
        }
        let now = sys.now();
        if now >= deadline {
            return false;
        }
        sys.run_until(now + SimDuration::from_millis(25));
    }
}

/// Drives the quickstart-plus-relocation scenario through interactive
/// sessions on an already-built system (works on any driver): consumer at
/// broker 0 subscribes, producer at broker 2 publishes
/// [`PUBLICATIONS`] vacancies, and the consumer moves to broker 1
/// mid-stream.  Returns the consumer's delivery log.
pub fn drive_scenario(sys: &mut MobilitySystem, budget_ms: u64) -> ConsumerLog {
    let consumer = sys.connect(CONSUMER, 0).expect("consumer connects");
    consumer
        .subscribe(sys, parking_filter())
        .expect("subscribe");
    let producer = sys.connect(PRODUCER, 2).expect("producer connects");
    // Let attach + subscription flooding settle before publishing.
    let now = sys.now();
    sys.run_until(now + SimDuration::from_millis(200));

    for i in 1..=MOVE_AFTER {
        producer.publish(sys, vacancy(i)).expect("publish");
    }
    assert!(
        run_until_deliveries(sys, MOVE_AFTER as usize, budget_ms),
        "first half not delivered in time: {:?}",
        sys.client_log(CONSUMER).unwrap().len()
    );

    // Mid-run relocation; the next publications race the hand-over.
    consumer.move_to(sys, 1).expect("relocate");
    for i in MOVE_AFTER + 1..=PUBLICATIONS {
        producer.publish(sys, vacancy(i)).expect("publish");
    }
    assert!(
        run_until_deliveries(sys, PUBLICATIONS as usize, budget_ms),
        "second half not delivered in time: {:?}",
        sys.client_log(CONSUMER).unwrap().len()
    );
    sys.client_log(CONSUMER).unwrap().clone()
}

/// The reference run: the identical scenario on the deterministic
/// simulator.  The TCP runs must produce a byte-identical consumer log.
pub fn reference_sim_log() -> ConsumerLog {
    let mut sys = builder(1).build().expect("sim build");
    let log = drive_scenario(&mut sys, 60_000);
    assert!(log.is_clean(), "reference run must be clean");
    log
}

/// Asserts the paper's QoS triple on a finished log: completeness, no
/// duplicates, sender-FIFO order.
pub fn assert_exactly_once(log: &ConsumerLog) {
    assert!(log.is_clean(), "violations: {:?}", log.violations());
    assert_eq!(log.len(), PUBLICATIONS as usize);
    assert_eq!(
        log.distinct_publisher_seqs(PRODUCER),
        (1..=PUBLICATIONS).collect::<Vec<u64>>(),
        "incomplete delivery"
    );
}
