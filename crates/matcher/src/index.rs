//! The attribute-partitioned predicate index.
//!
//! # Data structure
//!
//! A [`FilterIndex`] decomposes every inserted [`Filter`] into its
//! per-attribute [`Constraint`]s.  Constraints are **deduplicated**: each
//! distinct `(attribute, constraint)` pair is stored once as a *predicate*
//! with a posting list of the filters using it.  Predicates are partitioned
//! by attribute, and within one attribute by evaluation class:
//!
//! * **equality** (`Eq`, `In`) — a hash table from canonical value keys to
//!   predicates, so an attribute value finds all candidate equality
//!   predicates with one lookup;
//! * **ordered numeric** (`Lt`, `Le`, `Gt`, `Ge`, `Between` with `Int`/
//!   `Float` bounds) — ordered maps keyed by a monotone encoding of the
//!   bound, so one range scan yields every satisfied predicate;
//! * **existence** (`Exists`) — satisfied by presence alone;
//! * **residual** (string predicates, `Ne`, non-numeric ordered bounds) —
//!   a short list evaluated directly with [`Constraint::matches_value`];
//!   exactness is never traded for speed.
//!
//! # Matching: the counting algorithm
//!
//! Matching a [`Notification`] walks its attributes once, collects the
//! satisfied predicates per attribute from the partitions above, and
//! increments a per-filter hit counter over the predicates' posting lists.
//! A filter matches exactly when its counter reaches its constraint count
//! (conjunctive semantics); filters without constraints match always.  Cost
//! is proportional to the satisfied predicates and their postings — not to
//! the number of stored filters.
//!
//! # Covering queries
//!
//! The covering/merging optimizations of Fiege et al. §2.2 run the *same*
//! counting walk in the covering domain: for each attribute of a probe
//! filter, the attribute's **deduplicated** predicates are tested once with
//! [`Constraint::covers`] and the covering predicates' postings are
//! counted.  A stored filter covers the probe exactly when its counter
//! reaches its constraint count, so [`FilterIndex::covering_keys`] and
//! [`FilterIndex::covered_keys`] are **exact** (identical to running
//! [`Filter::covers`] against every stored filter) while paying one
//! constraint-level test per distinct predicate instead of one filter-level
//! test per stored filter.  [`FilterIndex::same_attr_keys`] completes the
//! merge-partner search of `FilterSet::insert_merging`.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::ops::Bound::{Excluded, Unbounded};

use rebeca_filter::{Constraint, Filter, Notification, Value};

/// Canonical hash key of a value under the filter model's equality
/// semantics ([`Value::value_eq`]): numeric values collapse onto the total
/// order of `f64`, every other kind is keyed by its exact payload.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum CanonKey {
    /// `Int` or `Float`, encoded with [`num_sort_key`].
    Num(u64),
    Str(String),
    Bool(bool),
    Loc(u32),
}

/// Monotone encoding of the `f64` total order into `u64`: `a.total_cmp(b)`
/// agrees with `num_sort_key(a).cmp(&num_sort_key(b))`.
fn num_sort_key(f: f64) -> u64 {
    let bits = f.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Numeric sort key of a value, when it has one.
fn value_num_key(v: &Value) -> Option<u64> {
    match v {
        Value::Int(i) => Some(num_sort_key(*i as f64)),
        Value::Float(f) => Some(num_sort_key(*f)),
        _ => None,
    }
}

fn canon_key(v: &Value) -> CanonKey {
    match v {
        Value::Int(i) => CanonKey::Num(num_sort_key(*i as f64)),
        Value::Float(f) => CanonKey::Num(num_sort_key(*f)),
        Value::Str(s) => CanonKey::Str(s.clone()),
        Value::Bool(b) => CanonKey::Bool(*b),
        Value::Location(l) => CanonKey::Loc(*l),
    }
}

/// Where a predicate lives inside its attribute partition (needed to undo
/// the insertion when the last filter using the predicate is removed).
#[derive(Debug, Clone)]
enum Slot {
    Eq(Vec<CanonKey>),
    Lt(u64),
    Le(u64),
    Gt(u64),
    Ge(u64),
    /// Keyed by the sort key of the lower bound.
    Between(u64),
    Exists,
    Residual,
}

/// One deduplicated `(attribute, constraint)` predicate.
#[derive(Debug, Clone)]
struct Pred {
    constraint: Constraint,
    slot: Slot,
    /// Filters using this predicate (insertion order, deterministic).
    postings: Vec<usize>,
}

/// All predicates of one attribute, partitioned by evaluation class.
#[derive(Debug, Clone, Default)]
struct AttrIndex {
    /// Deduplication map: constraint → predicate slot in `preds`.
    dedup: HashMap<Constraint, usize>,
    preds: Vec<Option<Pred>>,
    free: Vec<usize>,
    /// Equality classes: canonical value key → predicates that a value with
    /// this key may satisfy (`Eq`, `In`).  Verified exactly on lookup.
    eq: HashMap<CanonKey, Vec<usize>>,
    /// Ordered numeric predicates, keyed by the bound's sort key.  A query
    /// value strictly below/above the key is satisfied without further
    /// checks; the boundary class is verified exactly (this keeps huge-`i64`
    /// versus `f64` edge cases byte-identical to the linear scan).
    lt: BTreeMap<u64, Vec<usize>>,
    le: BTreeMap<u64, Vec<usize>>,
    gt: BTreeMap<u64, Vec<usize>>,
    ge: BTreeMap<u64, Vec<usize>>,
    /// `Between` predicates keyed by lower-bound sort key; candidates with a
    /// lower bound ≤ the query value are verified exactly.
    between: BTreeMap<u64, Vec<usize>>,
    /// `Exists` predicates — satisfied by attribute presence.
    exists: Vec<usize>,
    /// Predicates evaluated directly (`Ne`, string predicates, ordered
    /// constraints with non-numeric bounds).
    residual: Vec<usize>,
    /// Filters constraining this attribute (sorted, deterministic), used by
    /// the covering-candidate counting walks.
    filters: BTreeMap<usize, ()>,
}

impl AttrIndex {
    fn alloc_pred(&mut self, pred: Pred) -> usize {
        match self.free.pop() {
            Some(slot) => {
                self.preds[slot] = Some(pred);
                slot
            }
            None => {
                self.preds.push(Some(pred));
                self.preds.len() - 1
            }
        }
    }

    /// Classifies a constraint and registers the new predicate in the right
    /// partition, returning its slot.
    fn add_pred(&mut self, constraint: &Constraint) -> usize {
        let slot = match constraint {
            Constraint::Eq(v) => Slot::Eq(vec![canon_key(v)]),
            Constraint::In(set) => {
                let mut keys: Vec<CanonKey> = Vec::with_capacity(set.len());
                for v in set {
                    let k = canon_key(v);
                    if !keys.contains(&k) {
                        keys.push(k);
                    }
                }
                Slot::Eq(keys)
            }
            Constraint::Lt(v) => match value_num_key(v) {
                Some(k) => Slot::Lt(k),
                None => Slot::Residual,
            },
            Constraint::Le(v) => match value_num_key(v) {
                Some(k) => Slot::Le(k),
                None => Slot::Residual,
            },
            Constraint::Gt(v) => match value_num_key(v) {
                Some(k) => Slot::Gt(k),
                None => Slot::Residual,
            },
            Constraint::Ge(v) => match value_num_key(v) {
                Some(k) => Slot::Ge(k),
                None => Slot::Residual,
            },
            Constraint::Between(lo, hi) => match (value_num_key(lo), value_num_key(hi)) {
                (Some(lo_key), Some(_)) => Slot::Between(lo_key),
                _ => Slot::Residual,
            },
            Constraint::Exists => Slot::Exists,
            Constraint::Ne(_)
            | Constraint::Prefix(_)
            | Constraint::Suffix(_)
            | Constraint::Contains(_) => Slot::Residual,
        };
        let id = self.alloc_pred(Pred {
            constraint: constraint.clone(),
            slot: slot.clone(),
            postings: Vec::new(),
        });
        match slot {
            Slot::Eq(keys) => {
                for k in keys {
                    self.eq.entry(k).or_default().push(id);
                }
            }
            Slot::Lt(k) => self.lt.entry(k).or_default().push(id),
            Slot::Le(k) => self.le.entry(k).or_default().push(id),
            Slot::Gt(k) => self.gt.entry(k).or_default().push(id),
            Slot::Ge(k) => self.ge.entry(k).or_default().push(id),
            Slot::Between(k) => self.between.entry(k).or_default().push(id),
            Slot::Exists => self.exists.push(id),
            Slot::Residual => self.residual.push(id),
        }
        id
    }

    /// Unregisters a predicate that no filter uses anymore.
    fn drop_pred(&mut self, id: usize) {
        let pred = self.preds[id].take().expect("predicate must be live");
        debug_assert!(pred.postings.is_empty());
        self.dedup.remove(&pred.constraint);
        fn remove_from(list: &mut Vec<usize>, id: usize) {
            let pos = list
                .iter()
                .position(|p| *p == id)
                .expect("pred in partition");
            list.remove(pos);
        }
        fn remove_from_map(map: &mut BTreeMap<u64, Vec<usize>>, key: u64, id: usize) {
            let list = map.get_mut(&key).expect("bound class exists");
            remove_from(list, id);
            if list.is_empty() {
                map.remove(&key);
            }
        }
        match &pred.slot {
            Slot::Eq(keys) => {
                for k in keys {
                    let list = self.eq.get_mut(k).expect("eq class exists");
                    remove_from(list, id);
                    if list.is_empty() {
                        self.eq.remove(k);
                    }
                }
            }
            Slot::Lt(k) => remove_from_map(&mut self.lt, *k, id),
            Slot::Le(k) => remove_from_map(&mut self.le, *k, id),
            Slot::Gt(k) => remove_from_map(&mut self.gt, *k, id),
            Slot::Ge(k) => remove_from_map(&mut self.ge, *k, id),
            Slot::Between(k) => remove_from_map(&mut self.between, *k, id),
            Slot::Exists => remove_from(&mut self.exists, id),
            Slot::Residual => remove_from(&mut self.residual, id),
        }
        self.free.push(id);
    }

    /// Walks every live predicate of this attribute whose constraint
    /// **covers** `probe`, exactly once each, in deterministic (slot) order.
    ///
    /// The covering test runs once per *deduplicated* predicate — for a
    /// routing table holding thousands of filters over a handful of distinct
    /// constraints, this is the entire pruning.
    fn for_each_covering(&self, probe: &Constraint, visit: &mut impl FnMut(&Pred)) {
        for pred in self.preds.iter().flatten() {
            if pred.constraint.covers(probe) {
                visit(pred);
            }
        }
    }

    /// Walks every live predicate of this attribute whose constraint is
    /// **covered by** `probe`, exactly once each, in deterministic order.
    fn for_each_covered(&self, probe: &Constraint, visit: &mut impl FnMut(&Pred)) {
        for pred in self.preds.iter().flatten() {
            if probe.covers(&pred.constraint) {
                visit(pred);
            }
        }
    }

    /// Walks every predicate this attribute value satisfies, exactly once
    /// each, in deterministic order.
    fn for_each_satisfied(&self, value: &Value, visit: &mut impl FnMut(&Pred)) {
        // Equality class: one hash lookup, then exact verification (canonical
        // numeric keys can collide across `i64`/`f64` extremes).
        if let Some(list) = self.eq.get(&canon_key(value)) {
            for &id in list {
                let pred = self.preds[id].as_ref().expect("live pred");
                if pred.constraint.matches_value(value) {
                    visit(pred);
                }
            }
        }
        // Ordered numeric partitions: strictly-inside classes are satisfied
        // by construction of the sort key; the boundary class is verified.
        if let Some(vk) = value_num_key(value) {
            for (&k, list) in self.lt.range((Excluded(vk), Unbounded)) {
                debug_assert!(k > vk);
                for &id in list {
                    visit(self.preds[id].as_ref().expect("live pred"));
                }
            }
            for (&k, list) in self.le.range(vk..) {
                for &id in list {
                    let pred = self.preds[id].as_ref().expect("live pred");
                    if k > vk || pred.constraint.matches_value(value) {
                        visit(pred);
                    }
                }
            }
            for (&k, list) in self.gt.range(..vk) {
                debug_assert!(k < vk);
                for &id in list {
                    visit(self.preds[id].as_ref().expect("live pred"));
                }
            }
            for (&k, list) in self.ge.range(..=vk) {
                for &id in list {
                    let pred = self.preds[id].as_ref().expect("live pred");
                    if k < vk || pred.constraint.matches_value(value) {
                        visit(pred);
                    }
                }
            }
            // Boundary classes of the strict partitions still need the exact
            // check (e.g. `Int(2^53)` and `Float(2^53 as f64)` share a key).
            if let Some(list) = self.lt.get(&vk) {
                for &id in list {
                    let pred = self.preds[id].as_ref().expect("live pred");
                    if pred.constraint.matches_value(value) {
                        visit(pred);
                    }
                }
            }
            if let Some(list) = self.gt.get(&vk) {
                for &id in list {
                    let pred = self.preds[id].as_ref().expect("live pred");
                    if pred.constraint.matches_value(value) {
                        visit(pred);
                    }
                }
            }
            // `Between` candidates: every class whose lower bound is ≤ the
            // value, verified exactly (the upper bound needs checking anyway).
            for (_, list) in self.between.range(..=vk) {
                for &id in list {
                    let pred = self.preds[id].as_ref().expect("live pred");
                    if pred.constraint.matches_value(value) {
                        visit(pred);
                    }
                }
            }
        }
        // Presence satisfies every `Exists` predicate.
        for &id in &self.exists {
            visit(self.preds[id].as_ref().expect("live pred"));
        }
        // Residual predicates: direct evaluation.
        for &id in &self.residual {
            let pred = self.preds[id].as_ref().expect("live pred");
            if pred.constraint.matches_value(value) {
                visit(pred);
            }
        }
    }
}

/// One indexed filter.
#[derive(Debug, Clone)]
struct IndexEntry<K> {
    key: K,
    constraint_count: u32,
    /// `(attribute id, predicate id)` of every constraint.
    preds: Vec<(usize, usize)>,
}

/// Epoch-stamped counter scratchpad, reused across matching walks so that a
/// match costs no allocation and no O(#filters) clearing.
#[derive(Debug, Clone, Default)]
struct Scratch {
    stamps: Vec<u64>,
    counts: Vec<u32>,
    epoch: u64,
}

impl Scratch {
    fn begin(&mut self, size: usize) {
        if self.stamps.len() < size {
            self.stamps.resize(size, 0);
            self.counts.resize(size, 0);
        }
        self.epoch += 1;
    }

    /// Increments the counter for `fid`, returning the new count.
    fn bump(&mut self, fid: usize) -> u32 {
        if self.stamps[fid] != self.epoch {
            self.stamps[fid] = self.epoch;
            self.counts[fid] = 0;
        }
        self.counts[fid] += 1;
        self.counts[fid]
    }
}

/// An attribute-partitioned predicate index over content-based filters.
///
/// Filters are registered under an external key `K` (a routing-table entry
/// id, a destination, a subscription id …) and matched with the counting
/// algorithm; see the [module documentation](self) for the data-structure
/// and algorithm description.
///
/// All query results are deterministic: they depend only on the sequence of
/// insertions and removals, never on hash iteration order.
///
/// # Examples
///
/// ```
/// use rebeca_filter::{Constraint, Filter, Notification};
/// use rebeca_matcher::FilterIndex;
///
/// let mut index: FilterIndex<&str> = FilterIndex::new();
/// index.insert("cheap-parking", &Filter::new()
///     .with("service", Constraint::Eq("parking".into()))
///     .with("cost", Constraint::Lt(3.into())));
/// index.insert("all-parking", &Filter::new()
///     .with("service", Constraint::Eq("parking".into())));
///
/// let n = Notification::builder().attr("service", "parking").attr("cost", 5).build();
/// assert_eq!(index.matching_keys(&n), vec![&"all-parking"]);
/// ```
#[derive(Debug, Clone)]
pub struct FilterIndex<K> {
    keys: HashMap<K, usize>,
    entries: Vec<Option<IndexEntry<K>>>,
    free: Vec<usize>,
    /// Filters with zero constraints (they match everything and cover
    /// nothing but other universal filters); kept sorted for determinism.
    universal: BTreeMap<usize, ()>,
    attr_ids: HashMap<String, usize>,
    attrs: Vec<AttrIndex>,
    scratch: RefCell<Scratch>,
}

impl<K> Default for FilterIndex<K> {
    fn default() -> Self {
        FilterIndex {
            keys: HashMap::new(),
            entries: Vec::new(),
            free: Vec::new(),
            universal: BTreeMap::new(),
            attr_ids: HashMap::new(),
            attrs: Vec::new(),
            scratch: RefCell::new(Scratch::default()),
        }
    }
}

impl<K: Eq + Hash + Clone> FilterIndex<K> {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed filters.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// `true` when a filter is registered under `key`.
    pub fn contains_key(&self, key: &K) -> bool {
        self.keys.contains_key(key)
    }

    /// Indexes `filter` under `key`, replacing any previous filter with the
    /// same key.
    pub fn insert(&mut self, key: K, filter: &Filter) {
        if self.keys.contains_key(&key) {
            self.remove(&key);
        }
        let fid = match self.free.pop() {
            Some(fid) => fid,
            None => {
                self.entries.push(None);
                self.entries.len() - 1
            }
        };
        let mut preds = Vec::with_capacity(filter.len());
        for (name, constraint) in filter.iter() {
            let attr_id = match self.attr_ids.get(name) {
                Some(&id) => id,
                None => {
                    let id = self.attrs.len();
                    self.attr_ids.insert(name.to_string(), id);
                    self.attrs.push(AttrIndex::default());
                    id
                }
            };
            let attr = &mut self.attrs[attr_id];
            let pred_id = if let Some(&id) = attr.dedup.get(constraint) {
                id
            } else {
                let id = attr.add_pred(constraint);
                attr.dedup.insert(constraint.clone(), id);
                id
            };
            attr.preds[pred_id]
                .as_mut()
                .expect("live pred")
                .postings
                .push(fid);
            attr.filters.insert(fid, ());
            preds.push((attr_id, pred_id));
        }
        if preds.is_empty() {
            self.universal.insert(fid, ());
        }
        self.entries[fid] = Some(IndexEntry {
            key: key.clone(),
            constraint_count: preds.len() as u32,
            preds,
        });
        self.keys.insert(key, fid);
    }

    /// Removes the filter registered under `key`; returns `true` when one
    /// was present.
    pub fn remove(&mut self, key: &K) -> bool {
        let Some(fid) = self.keys.remove(key) else {
            return false;
        };
        let entry = self.entries[fid].take().expect("live entry");
        for (attr_id, pred_id) in entry.preds {
            let attr = &mut self.attrs[attr_id];
            let postings = &mut attr.preds[pred_id].as_mut().expect("live pred").postings;
            let pos = postings
                .iter()
                .position(|&f| f == fid)
                .expect("fid in postings");
            postings.remove(pos);
            if postings.is_empty() {
                attr.drop_pred(pred_id);
            }
            attr.filters.remove(&fid);
        }
        self.universal.remove(&fid);
        self.free.push(fid);
        true
    }

    /// Removes every filter.
    pub fn clear(&mut self) {
        *self = FilterIndex::default();
    }

    /// Keys of every filter matching the notification, via the counting
    /// algorithm.  Deterministic order (index insertion history).
    pub fn matching_keys(&self, notification: &Notification) -> Vec<&K> {
        let mut result: Vec<&K> = self
            .universal
            .keys()
            .map(|&fid| &self.entries[fid].as_ref().expect("live entry").key)
            .collect();
        let mut scratch = self.scratch.borrow_mut();
        scratch.begin(self.entries.len());
        for (name, value) in notification.iter() {
            let Some(&attr_id) = self.attr_ids.get(name) else {
                continue;
            };
            self.attrs[attr_id].for_each_satisfied(value, &mut |pred| {
                for &fid in &pred.postings {
                    let entry = self.entries[fid].as_ref().expect("live entry");
                    if scratch.bump(fid) == entry.constraint_count {
                        result.push(&entry.key);
                    }
                }
            });
        }
        result
    }

    /// `true` when at least one indexed filter matches the notification.
    pub fn any_match(&self, notification: &Notification) -> bool {
        if !self.universal.is_empty() {
            return true;
        }
        let mut scratch = self.scratch.borrow_mut();
        scratch.begin(self.entries.len());
        let mut found = false;
        for (name, value) in notification.iter() {
            let Some(&attr_id) = self.attr_ids.get(name) else {
                continue;
            };
            self.attrs[attr_id].for_each_satisfied(value, &mut |pred| {
                if found {
                    return;
                }
                for &fid in &pred.postings {
                    let entry = self.entries[fid].as_ref().expect("live entry");
                    if scratch.bump(fid) == entry.constraint_count {
                        found = true;
                        return;
                    }
                }
            });
            if found {
                return true;
            }
        }
        false
    }

    fn keys_of(&self, mut fids: Vec<usize>) -> Vec<&K> {
        fids.sort_unstable();
        fids.iter()
            .map(|&fid| &self.entries[fid].as_ref().expect("live entry").key)
            .collect()
    }

    /// Keys of **exactly** the stored filters that cover `filter` (in the
    /// sense of [`Filter::covers`]), sorted by insertion slot.
    ///
    /// Runs the counting algorithm in the covering domain: for every
    /// attribute of `filter`, the deduplicated predicates of that attribute
    /// are tested once with [`Constraint::covers`] — not once per filter —
    /// and the covering predicates' postings are counted.  A filter covers
    /// `filter` exactly when all of its constraints do, i.e. when its
    /// counter reaches its constraint count.
    pub fn covering_keys(&self, filter: &Filter) -> Vec<&K> {
        let mut fids: Vec<usize> = self.universal.keys().copied().collect();
        let mut scratch = self.scratch.borrow_mut();
        scratch.begin(self.entries.len());
        for (name, constraint) in filter.iter() {
            let Some(&attr_id) = self.attr_ids.get(name) else {
                continue;
            };
            self.attrs[attr_id].for_each_covering(constraint, &mut |pred| {
                for &fid in &pred.postings {
                    let entry = self.entries[fid].as_ref().expect("live entry");
                    if scratch.bump(fid) == entry.constraint_count {
                        fids.push(fid);
                    }
                }
            });
        }
        drop(scratch);
        self.keys_of(fids)
    }

    /// `true` when at least one stored filter covers `filter` — the
    /// early-exiting variant of [`FilterIndex::covering_keys`].
    pub fn covers_any(&self, filter: &Filter) -> bool {
        if !self.universal.is_empty() {
            return true;
        }
        let mut scratch = self.scratch.borrow_mut();
        scratch.begin(self.entries.len());
        let mut found = false;
        for (name, constraint) in filter.iter() {
            let Some(&attr_id) = self.attr_ids.get(name) else {
                continue;
            };
            self.attrs[attr_id].for_each_covering(constraint, &mut |pred| {
                if found {
                    return;
                }
                for &fid in &pred.postings {
                    let entry = self.entries[fid].as_ref().expect("live entry");
                    if scratch.bump(fid) == entry.constraint_count {
                        found = true;
                        return;
                    }
                }
            });
            if found {
                return true;
            }
        }
        false
    }

    /// Keys of **exactly** the stored filters that `filter` covers, sorted
    /// by insertion slot.  Same counting walk as
    /// [`FilterIndex::covering_keys`], with the covering test reversed.
    pub fn covered_keys(&self, filter: &Filter) -> Vec<&K> {
        if filter.is_empty() {
            // The universal filter covers everything.
            return self.keys_of(self.keys.values().copied().collect());
        }
        let needed = filter.len() as u32;
        let mut fids = Vec::new();
        let mut scratch = self.scratch.borrow_mut();
        scratch.begin(self.entries.len());
        for (name, constraint) in filter.iter() {
            let Some(&attr_id) = self.attr_ids.get(name) else {
                // Some attribute of `filter` is constrained by no stored
                // filter at all — nothing can be covered.
                return Vec::new();
            };
            self.attrs[attr_id].for_each_covered(constraint, &mut |pred| {
                for &fid in &pred.postings {
                    if scratch.bump(fid) == needed {
                        fids.push(fid);
                    }
                }
            });
        }
        drop(scratch);
        self.keys_of(fids)
    }

    /// Keys of the stored filters constraining **exactly** the same
    /// attribute set as `filter` (used to find perfect-merge partners that
    /// neither cover nor are covered), sorted by insertion slot.
    pub fn same_attr_keys(&self, filter: &Filter) -> Vec<&K> {
        if filter.is_empty() {
            return self.keys_of(self.universal.keys().copied().collect());
        }
        let needed = filter.len() as u32;
        let mut fids = Vec::new();
        let mut scratch = self.scratch.borrow_mut();
        scratch.begin(self.entries.len());
        for (name, _) in filter.iter() {
            let Some(&attr_id) = self.attr_ids.get(name) else {
                return Vec::new();
            };
            for &fid in self.attrs[attr_id].filters.keys() {
                let entry = self.entries[fid].as_ref().expect("live entry");
                // Reaching `needed` hits means the filter constrains every
                // attribute of the probe; an equal constraint count then
                // means it constrains nothing else.
                if scratch.bump(fid) == needed && entry.constraint_count == needed {
                    fids.push(fid);
                }
            }
        }
        drop(scratch);
        self.keys_of(fids)
    }

    /// Number of distinct predicates currently stored (after deduplication);
    /// exposed for diagnostics and benchmarks.
    pub fn predicate_count(&self) -> usize {
        self.attrs
            .iter()
            .map(|a| a.preds.len() - a.free.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parking(max: i64) -> Filter {
        Filter::new()
            .with("service", Constraint::Eq("parking".into()))
            .with("cost", Constraint::Lt(max.into()))
    }

    fn vacancy(cost: i64) -> Notification {
        Notification::builder()
            .attr("service", "parking")
            .attr("cost", cost)
            .build()
    }

    #[test]
    fn counting_match_requires_every_constraint() {
        let mut idx: FilterIndex<u32> = FilterIndex::new();
        idx.insert(1, &parking(3));
        idx.insert(2, &parking(10));
        assert_eq!(idx.matching_keys(&vacancy(2)), vec![&1, &2]);
        assert_eq!(idx.matching_keys(&vacancy(5)), vec![&2]);
        assert!(idx.matching_keys(&vacancy(20)).is_empty());
        let missing_attr = Notification::builder().attr("cost", 1).build();
        assert!(idx.matching_keys(&missing_attr).is_empty());
    }

    #[test]
    fn universal_filters_always_match() {
        let mut idx: FilterIndex<u32> = FilterIndex::new();
        idx.insert(7, &Filter::universal());
        assert_eq!(idx.matching_keys(&Notification::new()), vec![&7]);
        assert!(idx.any_match(&vacancy(1)));
    }

    #[test]
    fn insert_is_upsert_and_remove_unindexes() {
        let mut idx: FilterIndex<&str> = FilterIndex::new();
        idx.insert("a", &parking(3));
        idx.insert("a", &parking(10));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.matching_keys(&vacancy(5)), vec![&"a"]);
        assert!(idx.remove(&"a"));
        assert!(!idx.remove(&"a"));
        assert!(idx.is_empty());
        assert_eq!(idx.predicate_count(), 0);
        assert!(idx.matching_keys(&vacancy(1)).is_empty());
    }

    #[test]
    fn predicates_are_deduplicated_across_filters() {
        let mut idx: FilterIndex<u32> = FilterIndex::new();
        for i in 0..10 {
            idx.insert(i, &parking(3));
        }
        // Two distinct predicates (service eq, cost lt) shared by 10 filters.
        assert_eq!(idx.predicate_count(), 2);
        assert_eq!(idx.matching_keys(&vacancy(1)).len(), 10);
    }

    #[test]
    fn numeric_partitions_cover_all_comparison_kinds() {
        let mut idx: FilterIndex<&str> = FilterIndex::new();
        idx.insert("lt", &Filter::new().with("x", Constraint::Lt(5.into())));
        idx.insert("le", &Filter::new().with("x", Constraint::Le(5.into())));
        idx.insert("gt", &Filter::new().with("x", Constraint::Gt(5.into())));
        idx.insert("ge", &Filter::new().with("x", Constraint::Ge(5.into())));
        idx.insert(
            "bw",
            &Filter::new().with("x", Constraint::Between(2.into(), 8.into())),
        );
        let at = |v: i64| Notification::builder().attr("x", v).build();
        let names = |v: i64| {
            let mut ks: Vec<&str> = idx.matching_keys(&at(v)).into_iter().copied().collect();
            ks.sort_unstable();
            ks
        };
        assert_eq!(names(4), vec!["bw", "le", "lt"]);
        assert_eq!(names(5), vec!["bw", "ge", "le"]);
        assert_eq!(names(6), vec!["bw", "ge", "gt"]);
        assert_eq!(names(9), vec!["ge", "gt"]);
        assert_eq!(names(1), vec!["le", "lt"]);
    }

    #[test]
    fn int_float_equality_collapses_like_value_eq() {
        let mut idx: FilterIndex<&str> = FilterIndex::new();
        idx.insert("eq3", &Filter::new().with("x", Constraint::Eq(3.into())));
        let float3 = Notification::builder().attr("x", 3.0).build();
        assert_eq!(idx.matching_keys(&float3), vec![&"eq3"]);
    }

    #[test]
    fn covering_queries_are_exact() {
        let mut idx: FilterIndex<u32> = FilterIndex::new();
        idx.insert(1, &Filter::new().with("service", Constraint::Exists));
        idx.insert(2, &parking(3));
        idx.insert(3, &Filter::new().with("other", Constraint::Exists));
        idx.insert(4, &Filter::universal());

        // Covers of parking(1): the service-Exists filter, the wider parking
        // filter, and the universal filter (sorted by insertion slot).
        assert_eq!(idx.covering_keys(&parking(1)), vec![&1, &2, &4]);
        assert!(idx.covers_any(&parking(1)));

        // parking(1) covers nothing stored (parking(3) is wider).
        assert!(idx.covered_keys(&parking(1)).is_empty());
        // parking(10) covers parking(3).
        assert_eq!(idx.covered_keys(&parking(10)), vec![&2]);

        // The universal probe covers everything.
        assert_eq!(idx.covered_keys(&Filter::universal()).len(), 4);

        // A probe with an unknown attribute can cover nothing.
        let probe = Filter::new().with("nope", Constraint::Exists);
        assert!(idx.covered_keys(&probe).is_empty());

        // Same-attribute-set partners of a parking probe.
        assert_eq!(idx.same_attr_keys(&parking(99)), vec![&2]);
        assert_eq!(idx.same_attr_keys(&Filter::universal()), vec![&4]);
    }

    #[test]
    fn residual_predicates_stay_exact() {
        let mut idx: FilterIndex<&str> = FilterIndex::new();
        idx.insert(
            "pre",
            &Filter::new().with("s", Constraint::Prefix("Re".into())),
        );
        idx.insert("ne", &Filter::new().with("s", Constraint::Ne("x".into())));
        idx.insert(
            "strlt",
            &Filter::new().with("s", Constraint::Lt("m".into())),
        );
        let n = |s: &str| Notification::builder().attr("s", s).build();
        let names = |s: &str| {
            let mut ks: Vec<&str> = idx.matching_keys(&n(s)).into_iter().copied().collect();
            ks.sort_unstable();
            ks
        };
        // "Rebeca" < "m" lexicographically, so the string range matches too.
        assert_eq!(names("Rebeca"), vec!["ne", "pre", "strlt"]);
        assert_eq!(names("abc"), vec!["ne", "strlt"]);
        assert_eq!(names("x"), vec![] as Vec<&str>);
    }
}
