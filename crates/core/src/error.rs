//! Typed errors for the deployment facade.
//!
//! Every public entry point of [`MobilitySystem`](crate::MobilitySystem),
//! [`SystemBuilder`](crate::SystemBuilder) and [`Session`](crate::Session)
//! reports bad input through [`RebecaError`] instead of panicking, so an
//! application embedding the middleware can react to misconfiguration
//! (unknown broker indices, duplicate client identities, empty topologies)
//! without crashing the process.

use std::error::Error;
use std::fmt;

use rebeca_broker::ClientId;

/// An error raised by the public deployment API.
///
/// The enum is `#[non_exhaustive]`: future versions may add variants without
/// a breaking change, so match with a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RebecaError {
    /// A broker was addressed by a topology index that does not exist.
    UnknownBroker {
        /// The offending index.
        index: usize,
        /// Number of brokers in the deployment.
        brokers: usize,
    },
    /// A client id was used that was never connected or added.
    UnknownClient(ClientId),
    /// A client id was connected or added twice.
    DuplicateClient(ClientId),
    /// The topology handed to the builder has no brokers.
    EmptyTopology,
    /// A session operation addressed a node that is not a client (or a
    /// broker operation addressed a client node).  This indicates id reuse
    /// across node kinds and cannot arise through the public API.
    NotAClient(ClientId),
    /// A network transport failed to come up (e.g. the TCP driver of
    /// `rebeca-net` could not bind its listener).  The string carries the
    /// underlying I/O error.
    Transport(String),
}

impl fmt::Display for RebecaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RebecaError::UnknownBroker { index, brokers } => write!(
                f,
                "unknown broker index {index} (the deployment has {brokers} brokers)"
            ),
            RebecaError::UnknownClient(id) => write!(f, "unknown client {id}"),
            RebecaError::DuplicateClient(id) => write!(f, "client {id} already exists"),
            RebecaError::EmptyTopology => write!(f, "the topology has no brokers"),
            RebecaError::NotAClient(id) => write!(f, "node of client {id} is not a client node"),
            RebecaError::Transport(err) => write!(f, "transport error: {err}"),
        }
    }
}

impl Error for RebecaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(
            RebecaError::UnknownBroker {
                index: 9,
                brokers: 3
            }
            .to_string(),
            "unknown broker index 9 (the deployment has 3 brokers)"
        );
        assert!(RebecaError::UnknownClient(ClientId::new(4))
            .to_string()
            .contains("c4"));
        assert!(RebecaError::DuplicateClient(ClientId::new(1))
            .to_string()
            .contains("already exists"));
        assert_eq!(
            RebecaError::EmptyTopology.to_string(),
            "the topology has no brokers"
        );
    }

    #[test]
    fn implements_std_error() {
        fn takes_error(_: &dyn Error) {}
        takes_error(&RebecaError::EmptyTopology);
    }
}
