//! Location model for the Rebeca mobility reproduction.
//!
//! This crate implements everything Section 5 of
//! *"Supporting Mobility in Content-Based Publish/Subscribe Middleware"*
//! (Fiege et al., Middleware 2003) defines around locations:
//!
//! * [`LocationSpace`] / [`LocationId`] — the finite application-level
//!   location range `L`;
//! * [`MovementGraph`] — the movement restrictions of a consumer (Figure 7)
//!   and the `ploc(x, q)` function of possible future locations;
//! * [`Itinerary`] — the `loc : T → L` function describing a client's
//!   movement over time, including residence times (`Δ`);
//! * [`AdaptivityPlan`] — the Section 5.3 scheme that maps the residence time
//!   `Δ` and the per-hop subscription-processing delays `δ_i` onto per-hop
//!   uncertainty steps `q_i`, with the trivial *global sub/unsub* and
//!   *flooding* schemes as degenerate instances (Table 3).
//!
//! # Example
//!
//! ```
//! use rebeca_location::{AdaptivityPlan, MovementGraph};
//!
//! // The movement graph of Figure 7 and the timing example of Section 5.3.
//! let graph = MovementGraph::paper_example();
//! let a = graph.space().id("a").unwrap();
//!
//! let plan = AdaptivityPlan::adaptive(100_000, &[120_000, 50_000, 50_000]);
//! let sets = plan.location_sets(&graph, a);
//! assert_eq!(sets[0].len(), 1);  // perfect client-side filtering: {a}
//! assert_eq!(sets[3].len(), 4);  // two steps of uncertainty: {a, b, c, d}
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptivity;
mod graph;
mod itinerary;
mod space;

pub use adaptivity::AdaptivityPlan;
pub use graph::MovementGraph;
pub use itinerary::{Itinerary, Stop};
pub use space::{LocationId, LocationSpace, ParseLocationIdError};
