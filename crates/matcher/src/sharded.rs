//! The sharded, batch-parallel predicate index.
//!
//! A [`ShardedFilterIndex`] partitions the predicate space of
//! [`FilterIndex`](crate::FilterIndex) across `N` worker shards by a fixed
//! hash of the attribute name: each shard owns the per-attribute partitions
//! (and interned constraints) of its attributes, while the entry table —
//! keys, constraint counts, universal filters — stays global.  Inserting or
//! removing a filter fans its constraints out to their shards; matching
//! runs an independent counting walk per shard whose partial per-entry
//! counts merge into the final tally (counters simply accumulate across
//! shards, so the merged result is byte-identical to the unsharded walk).
//!
//! Shards exist for *write and cache locality* — each shard's partitions
//! are an independently growable unit — while **parallelism** comes from
//! [`ShardedFilterIndex::match_batch`]: notification queues are split into
//! 64-lane chunks and fanned across `std::thread::scope` workers, one
//! [`MatchScratch`] per worker, with every worker reading the shared
//! `&ShardedFilterIndex` (the index is `Send + Sync`; no runtime or
//! unsafe code involved).
//!
//! All query results are deterministic and **independent of the shard
//! count**: key-list queries return insertion-slot order (the visitor and
//! `matching_keys` walk order additionally depends on the deterministic
//! attribute→shard assignment, never on hash-map iteration).

use std::hash::Hash;

use rebeca_filter::{Filter, Notification};

use crate::core::{default_workers, IndexCore};
use crate::scratch::{with_thread_scratch, MatchScratch};

/// Default shard count for [`ShardedFilterIndex::new`].
pub const DEFAULT_SHARDS: usize = 8;

/// An attribute-hash-sharded predicate index over content-based filters.
///
/// Functionally identical to [`FilterIndex`](crate::FilterIndex) (both are
/// exact and deterministic); the sharded layout adds the per-shard
/// partition structure and is the type routing tables use.
///
///
/// # Examples
///
/// ```
/// use rebeca_filter::{Constraint, Filter, Notification};
/// use rebeca_matcher::ShardedFilterIndex;
///
/// let mut index: ShardedFilterIndex<u64> = ShardedFilterIndex::with_shards(4);
/// for i in 0..1000u64 {
///     index.insert(i, &Filter::new()
///         .with("stock", Constraint::Eq("REBECA".into()))
///         .with("price", Constraint::Lt((i as i64).into())));
/// }
/// let ticks: Vec<Notification> = (0..128)
///     .map(|i| Notification::builder().attr("stock", "REBECA").attr("price", 990 + i % 10).build())
///     .collect();
/// // One batch call matches all 128 ticks; every posting list is walked
/// // once per 64-tick chunk instead of once per tick.
/// let matches = index.match_batch(&ticks);
/// assert_eq!(matches.len(), 128);
/// assert_eq!(matches[0].len(), index.matching_keys(&ticks[0]).len());
/// ```
#[derive(Debug, Clone)]
pub struct ShardedFilterIndex<K> {
    core: IndexCore<K>,
}

impl<K> Default for ShardedFilterIndex<K> {
    fn default() -> Self {
        ShardedFilterIndex {
            core: IndexCore::with_shards(DEFAULT_SHARDS),
        }
    }
}

impl<K: Eq + Hash + Clone> ShardedFilterIndex<K> {
    /// Creates an empty index with [`DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty index with `shards` worker shards (clamped to at
    /// least 1).
    pub fn with_shards(shards: usize) -> Self {
        ShardedFilterIndex {
            core: IndexCore::with_shards(shards),
        }
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.core.shard_count()
    }

    /// Number of indexed filters.
    pub fn len(&self) -> usize {
        self.core.len()
    }

    /// `true` when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.core.len() == 0
    }

    /// `true` when a filter is registered under `key`.
    pub fn contains_key(&self, key: &K) -> bool {
        self.core.contains_key(key)
    }

    /// Indexes `filter` under `key`, fanning its constraints out to their
    /// attribute shards; replaces any previous filter with the same key.
    pub fn insert(&mut self, key: K, filter: &Filter) {
        self.core.insert(key, filter);
    }

    /// Removes the filter registered under `key`; returns `true` when one
    /// was present.
    pub fn remove(&mut self, key: &K) -> bool {
        self.core.remove(key)
    }

    /// Removes every filter.
    pub fn clear(&mut self) {
        self.core.clear();
    }

    /// Keys of every filter matching the notification: universal filters
    /// first (insertion-slot order), then each match in the deterministic
    /// order its per-shard counter completes.
    pub fn matching_keys(&self, notification: &Notification) -> Vec<&K> {
        with_thread_scratch(|s| self.core.matching_keys(notification, s))
    }

    /// [`ShardedFilterIndex::matching_keys`] with a caller-provided
    /// scratchpad (one per worker thread for parallel matching).
    pub fn matching_keys_with(
        &self,
        notification: &Notification,
        scratch: &mut MatchScratch,
    ) -> Vec<&K> {
        self.core.matching_keys(notification, scratch)
    }

    /// Visits the key of every matching filter without building a vector.
    pub fn for_each_match<'a>(&'a self, notification: &Notification, mut visit: impl FnMut(&'a K)) {
        with_thread_scratch(|s| self.core.for_each_match(notification, s, &mut visit))
    }

    /// [`ShardedFilterIndex::for_each_match`] with a caller-provided
    /// scratchpad.
    pub fn for_each_match_with<'a>(
        &'a self,
        notification: &Notification,
        scratch: &mut MatchScratch,
        mut visit: impl FnMut(&'a K),
    ) {
        self.core.for_each_match(notification, scratch, &mut visit)
    }

    /// `true` when at least one indexed filter matches the notification.
    pub fn any_match(&self, notification: &Notification) -> bool {
        with_thread_scratch(|s| self.core.any_match(notification, s))
    }

    /// Keys of **exactly** the stored filters that cover `filter`, sorted
    /// by insertion slot (shard-count independent).
    pub fn covering_keys(&self, filter: &Filter) -> Vec<&K> {
        with_thread_scratch(|s| self.core.covering_keys(filter, s))
    }

    /// `true` when at least one stored filter covers `filter`.
    pub fn covers_any(&self, filter: &Filter) -> bool {
        with_thread_scratch(|s| self.core.covers_any(filter, s))
    }

    /// Keys of **exactly** the stored filters that `filter` covers, sorted
    /// by insertion slot.
    pub fn covered_keys(&self, filter: &Filter) -> Vec<&K> {
        self.core.covered_keys(filter)
    }

    /// Keys of the stored filters constraining **exactly** the same
    /// attribute set as `filter`, sorted by insertion slot.
    pub fn same_attr_keys(&self, filter: &Filter) -> Vec<&K> {
        with_thread_scratch(|s| self.core.same_attr_keys(filter, s))
    }

    /// Matches a queue of notifications at once, returning each
    /// notification's matching keys in insertion-slot order.
    ///
    /// The queue is split into 64-notification lane chunks; each chunk runs
    /// the per-shard mask walks (every posting list touched once per chunk)
    /// and chunks fan out across `std::thread::scope` workers sized to the
    /// machine's available parallelism.
    pub fn match_batch<N>(&self, notifications: &[N]) -> Vec<Vec<&K>>
    where
        N: std::borrow::Borrow<Notification> + Sync,
        K: Sync,
    {
        self.core.match_batch(notifications, default_workers())
    }

    /// [`ShardedFilterIndex::match_batch`] with an explicit worker-thread
    /// count (`0` or `1` forces the sequential path).
    pub fn match_batch_with_workers<N>(&self, notifications: &[N], workers: usize) -> Vec<Vec<&K>>
    where
        N: std::borrow::Borrow<Notification> + Sync,
        K: Sync,
    {
        self.core.match_batch(notifications, workers)
    }

    /// Number of distinct predicates currently stored across all shards.
    pub fn predicate_count(&self) -> usize {
        self.core.predicate_count()
    }

    /// Number of distinct interned constraints across all shards.
    pub fn interned_constraint_count(&self) -> usize {
        self.core.interned_constraint_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebeca_filter::Constraint;

    fn parking(max: i64) -> Filter {
        Filter::new()
            .with("service", Constraint::Eq("parking".into()))
            .with("cost", Constraint::Lt(max.into()))
    }

    fn vacancy(cost: i64) -> Notification {
        Notification::builder()
            .attr("service", "parking")
            .attr("cost", cost)
            .build()
    }

    #[test]
    fn sharded_counting_merges_partial_counts() {
        // `service` and `cost` land in different shards with high
        // probability at 8 shards; the conjunction must still hold.
        for shards in [1, 2, 3, 8] {
            let mut idx: ShardedFilterIndex<u32> = ShardedFilterIndex::with_shards(shards);
            idx.insert(1, &parking(3));
            idx.insert(2, &parking(10));
            let mut got: Vec<u32> = idx
                .matching_keys(&vacancy(2))
                .into_iter()
                .copied()
                .collect();
            got.sort_unstable();
            assert_eq!(got, vec![1, 2], "{shards} shards");
            assert_eq!(idx.matching_keys(&vacancy(5)), vec![&2], "{shards} shards");
            assert!(
                idx.matching_keys(&vacancy(20)).is_empty(),
                "{shards} shards"
            );
        }
    }

    #[test]
    fn shard_count_is_observable_and_clamped() {
        let idx: ShardedFilterIndex<u32> = ShardedFilterIndex::with_shards(0);
        assert_eq!(idx.shard_count(), 1);
        let idx: ShardedFilterIndex<u32> = ShardedFilterIndex::new();
        assert_eq!(idx.shard_count(), DEFAULT_SHARDS);
    }

    #[test]
    fn batch_results_are_shard_count_independent() {
        let build = |shards| {
            let mut idx: ShardedFilterIndex<u32> = ShardedFilterIndex::with_shards(shards);
            for i in 0..50 {
                idx.insert(i, &parking((i % 7) as i64));
            }
            idx.insert(99, &Filter::universal());
            idx
        };
        let ns: Vec<Notification> = (0..70).map(|i| vacancy(i % 9)).collect();
        let one = build(1);
        let eight = build(8);
        let got1: Vec<Vec<u32>> = one
            .match_batch(&ns)
            .into_iter()
            .map(|ks| ks.into_iter().copied().collect())
            .collect();
        let got8: Vec<Vec<u32>> = eight
            .match_batch_with_workers(&ns, 3)
            .into_iter()
            .map(|ks| ks.into_iter().copied().collect())
            .collect();
        assert_eq!(got1, got8);
    }

    #[test]
    fn covering_queries_work_across_shards() {
        let mut idx: ShardedFilterIndex<u32> = ShardedFilterIndex::with_shards(8);
        idx.insert(1, &Filter::new().with("service", Constraint::Exists));
        idx.insert(2, &parking(3));
        idx.insert(4, &Filter::universal());
        assert_eq!(idx.covering_keys(&parking(1)), vec![&1, &2, &4]);
        assert!(idx.covers_any(&parking(1)));
        assert_eq!(idx.covered_keys(&parking(10)), vec![&2]);
        assert_eq!(idx.same_attr_keys(&parking(99)), vec![&2]);
        assert!(idx.remove(&2));
        assert!(idx.covered_keys(&parking(10)).is_empty());
    }
}
