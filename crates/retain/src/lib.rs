//! Segment-rotated retention store for time-aware subscriptions.
//!
//! The relocation protocol of the paper is a special case of history
//! replay: a moving client fetches what it missed while in transit.  This
//! crate generalises that to *retained publications with time-scoped
//! queries* ("everything since I detached"): every border broker appends
//! the publications of its local producers to a [`RetentionStore`], and a
//! reattaching client's `since`-scoped subscription is answered from the
//! stores through a `HistoryFetch`/`HistoryReplay` exchange modeled on the
//! relocation `Fetch`/`Replay`.
//!
//! # Segment format
//!
//! The store is a sequence of fixed-size *segments*.  Appends only ever
//! touch the **live** (tail) segment; once it holds `segment_max_records`
//! records it is *sealed* and archived, and a fresh live segment starts —
//! tail rotation.  Archived segments are immutable: compaction and expiry
//! drop whole archived segments and never rewrite bytes.
//!
//! Each sealed segment is one byte blob:
//!
//! ```text
//! ┌───────────────┬────────────────┬────────────────┬─────────────┬────────────┐
//! │ magic: u32 LE │ min_ts: u64 LE │ max_ts: u64 LE │ count: u32  │ records …  │
//! └───────────────┴────────────────┴────────────────┴─────────────┴────────────┘
//! ```
//!
//! The `[min_ts, max_ts]` header is the segment's *time index*: a
//! time-window fetch binary-searches the archived segments by `max_ts`
//! instead of scanning every record.  Records reuse the WAL framing of
//! `rebeca_mobility::codec`:
//!
//! ```text
//! ┌─────────────┬───────────────┬──────────────────────────────┐
//! │ len: u32 LE │ crc32: u32 LE │ ts: u64 LE ‖ encoded Envelope│   … repeated
//! └─────────────┴───────────────┴──────────────────────────────┘
//! ```
//!
//! Decoding is total: a truncated header yields an empty segment, and a
//! torn or corrupted record stops the scan at the last valid record —
//! mirroring the handoff-WAL recovery guarantees, never a panic.
//!
//! # Expiry
//!
//! [`RetentionStore::expire`] drops every archived segment whose `max_ts`
//! has fallen out of the retention window, and [`RetentionStore::rotate`]
//! enforces `max_segments` by dropping the oldest archived segment.  The
//! live segment is never dropped and never rewritten.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rebeca_broker::Envelope;
use rebeca_filter::Filter;
use rebeca_mobility::codec::{crc32, put_envelope, put_u32, put_u64, ByteReader};

/// Magic number identifying a sealed segment blob (`"RSG1"` little-endian).
pub const SEGMENT_MAGIC: u32 = u32::from_le_bytes(*b"RSG1");

/// Size of the sealed-segment header: magic + min_ts + max_ts + count.
pub const SEGMENT_HEADER_LEN: usize = 4 + 8 + 8 + 4;

/// Default number of records per segment before tail rotation.
pub const DEFAULT_SEGMENT_MAX_RECORDS: usize = 1024;

/// Default cap on the number of segments (archived + live).
pub const DEFAULT_MAX_SEGMENTS: usize = 64;

/// Sizing and expiry policy of a [`RetentionStore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetentionConfig {
    /// Records appended to the live segment before it is sealed and a
    /// fresh live segment starts (minimum 1).
    pub segment_max_records: usize,
    /// Upper bound on live + archived segments; rotation drops the oldest
    /// archived segment beyond this (minimum 2: one archived, one live).
    pub max_segments: usize,
    /// Age beyond which archived segments become droppable by
    /// [`RetentionStore::expire`] (`0` keeps everything until the segment
    /// cap evicts it).
    pub retention_window_micros: u64,
}

impl Default for RetentionConfig {
    fn default() -> Self {
        Self {
            segment_max_records: DEFAULT_SEGMENT_MAX_RECORDS,
            max_segments: DEFAULT_MAX_SEGMENTS,
            retention_window_micros: 0,
        }
    }
}

/// One retained publication: the routed envelope stamped with the broker's
/// clock at append time (notifications themselves carry no timestamps).
#[derive(Debug, Clone, PartialEq)]
pub struct RetainedPublication {
    /// Broker-local append timestamp in microseconds.
    pub ts_micros: u64,
    /// The retained publication envelope (publisher, publisher sequence
    /// number, notification).
    pub envelope: Envelope,
}

/// Encodes one record payload (`ts ‖ envelope`, without the frame header).
fn encode_record_payload(entry: &RetainedPublication) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    put_u64(&mut payload, entry.ts_micros);
    put_envelope(&mut payload, &entry.envelope);
    payload
}

/// Encodes one framed record (`len ‖ crc32 ‖ payload`).
fn encode_record_framed(entry: &RetainedPublication) -> Vec<u8> {
    let payload = encode_record_payload(entry);
    let mut frame = Vec::with_capacity(payload.len() + 8);
    put_u32(&mut frame, payload.len() as u32);
    put_u32(&mut frame, crc32(&payload));
    frame.extend_from_slice(&payload);
    frame
}

/// One segment of the store: the decoded entries plus the running time
/// index.  For the live segment `bytes` holds the framed records appended
/// so far (header-less); sealing prepends the header.
#[derive(Debug, Clone, Default, PartialEq)]
struct Segment {
    min_ts: u64,
    max_ts: u64,
    entries: Vec<RetainedPublication>,
    /// Framed record bytes (no header) — the durable form of the segment.
    bytes: Vec<u8>,
}

impl Segment {
    fn push(&mut self, entry: RetainedPublication) {
        if self.entries.is_empty() {
            self.min_ts = entry.ts_micros;
        }
        self.max_ts = self.max_ts.max(entry.ts_micros);
        self.bytes.extend_from_slice(&encode_record_framed(&entry));
        self.entries.push(entry);
    }

    /// The sealed byte blob: time-index header followed by the records.
    fn sealed_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(SEGMENT_HEADER_LEN + self.bytes.len());
        put_u32(&mut out, SEGMENT_MAGIC);
        put_u64(&mut out, self.min_ts);
        put_u64(&mut out, self.max_ts);
        put_u32(&mut out, self.entries.len() as u32);
        out.extend_from_slice(&self.bytes);
        out
    }
}

/// A segment reconstructed from its sealed byte blob by
/// [`decode_segment`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DecodedSegment {
    /// The recovered records, in append order.
    pub entries: Vec<RetainedPublication>,
    /// `min_ts` claimed by the header (recomputed bounds come from the
    /// entries themselves).
    pub header_min_ts: u64,
    /// `max_ts` claimed by the header.
    pub header_max_ts: u64,
    /// `true` when the scan stopped before the record count the header
    /// claimed (torn tail, flipped bytes, or a garbage header).
    pub truncated: bool,
}

/// Encodes a sequence of retained publications as one sealed segment blob
/// (the inverse of [`decode_segment`]).
pub fn encode_segment(entries: &[RetainedPublication]) -> Vec<u8> {
    let mut segment = Segment::default();
    for entry in entries {
        segment.push(entry.clone());
    }
    segment.sealed_bytes()
}

/// Decodes a sealed segment blob, stopping at the last valid record.
///
/// Decoding is total: a short or garbage header yields an empty, truncated
/// segment; a torn or corrupted record stops the scan — everything up to
/// the last valid record is kept, and the function never panics.
pub fn decode_segment(bytes: &[u8]) -> DecodedSegment {
    let mut out = DecodedSegment::default();
    if bytes.len() < SEGMENT_HEADER_LEN {
        out.truncated = true;
        return out;
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    if magic != SEGMENT_MAGIC {
        out.truncated = true;
        return out;
    }
    out.header_min_ts = u64::from_le_bytes(bytes[4..12].try_into().unwrap());
    out.header_max_ts = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let count = u32::from_le_bytes(bytes[20..24].try_into().unwrap()) as usize;
    let mut pos = SEGMENT_HEADER_LEN;
    while out.entries.len() < count {
        if pos + 8 > bytes.len() {
            out.truncated = true;
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        let start = pos + 8;
        let end = match start.checked_add(len) {
            Some(end) if end <= bytes.len() => end,
            _ => {
                out.truncated = true;
                break;
            }
        };
        let payload = &bytes[start..end];
        if crc32(payload) != crc {
            out.truncated = true;
            break;
        }
        let mut r = ByteReader::new(payload);
        let entry = match (|| {
            let ts_micros = r.u64()?;
            let envelope = r.envelope()?;
            Ok::<_, rebeca_mobility::codec::DecodeError>(RetainedPublication {
                ts_micros,
                envelope,
            })
        })() {
            Ok(entry) if r.done() => entry,
            _ => {
                out.truncated = true;
                break;
            }
        };
        out.entries.push(entry);
        pos = end;
    }
    out
}

/// The per-broker retained-publication store: archived (sealed, immutable)
/// segments in time order plus one live tail segment receiving appends.
///
/// Timestamps are clamped monotone on append, so segments are ordered by
/// their time index and a time-window fetch can binary-search them.
#[derive(Debug, Clone)]
pub struct RetentionStore {
    config: RetentionConfig,
    /// Sealed segments, oldest first; `max_ts` is non-decreasing.
    archived: Vec<Segment>,
    live: Segment,
    last_ts: u64,
    rotations_total: u64,
    expired_segments_total: u64,
    expired_records_total: u64,
}

impl RetentionStore {
    /// Creates an empty store with the given policy (bounds are clamped to
    /// their documented minimums).
    pub fn new(config: RetentionConfig) -> Self {
        let config = RetentionConfig {
            segment_max_records: config.segment_max_records.max(1),
            max_segments: config.max_segments.max(2),
            retention_window_micros: config.retention_window_micros,
        };
        Self {
            config,
            archived: Vec::new(),
            live: Segment::default(),
            last_ts: 0,
            rotations_total: 0,
            expired_segments_total: 0,
            expired_records_total: 0,
        }
    }

    /// The store's policy.
    pub fn config(&self) -> &RetentionConfig {
        &self.config
    }

    /// Appends one publication stamped at `ts_micros` (clamped monotone
    /// against earlier appends, keeping the segment time indexes ordered).
    /// Seals and rotates the live segment when it reaches the configured
    /// size.
    pub fn append(&mut self, ts_micros: u64, envelope: Envelope) {
        let ts_micros = ts_micros.max(self.last_ts);
        self.last_ts = ts_micros;
        self.live.push(RetainedPublication {
            ts_micros,
            envelope,
        });
        if self.live.entries.len() >= self.config.segment_max_records {
            self.rotate();
        }
    }

    /// Seals the live segment into the archive and starts a fresh live
    /// segment, dropping the oldest archived segments beyond the
    /// `max_segments` cap.  A no-op when the live segment is empty.
    pub fn rotate(&mut self) {
        if self.live.entries.is_empty() {
            return;
        }
        let sealed = std::mem::take(&mut self.live);
        self.archived.push(sealed);
        self.rotations_total += 1;
        while self.archived.len() + 1 > self.config.max_segments {
            let dropped = self.archived.remove(0);
            self.expired_segments_total += 1;
            self.expired_records_total += dropped.entries.len() as u64;
        }
    }

    /// Drops every archived segment whose newest record has aged out of
    /// the retention window (`now - retention_window`).  Whole segments
    /// only; the live segment is never touched.  Returns the number of
    /// segments dropped.
    pub fn expire(&mut self, now_micros: u64) -> usize {
        if self.config.retention_window_micros == 0 {
            return 0;
        }
        let horizon = now_micros.saturating_sub(self.config.retention_window_micros);
        let keep_from = self
            .archived
            .partition_point(|segment| segment.max_ts < horizon);
        for dropped in self.archived.drain(..keep_from) {
            self.expired_segments_total += 1;
            self.expired_records_total += dropped.entries.len() as u64;
        }
        keep_from
    }

    /// Every retained publication with `ts >= since_micros` whose
    /// notification matches `filter`, oldest first.  Binary-searches the
    /// archived segments' time-index headers, so segments entirely older
    /// than the window are skipped without scanning their records.
    pub fn fetch_since(&self, since_micros: u64, filter: &Filter) -> Vec<RetainedPublication> {
        let mut out = Vec::new();
        let first = self
            .archived
            .partition_point(|segment| segment.max_ts < since_micros);
        for segment in self.archived[first..].iter().chain(Some(&self.live)) {
            for entry in &segment.entries {
                if entry.ts_micros >= since_micros && filter.matches(&entry.envelope.notification) {
                    out.push(entry.clone());
                }
            }
        }
        out
    }

    /// Total retained records (archived + live).
    pub fn total_records(&self) -> u64 {
        self.archived
            .iter()
            .map(|s| s.entries.len() as u64)
            .sum::<u64>()
            + self.live.entries.len() as u64
    }

    /// Number of segments (archived + the live tail).
    pub fn segment_count(&self) -> u64 {
        self.archived.len() as u64 + 1
    }

    /// Timestamp of the oldest retained record, if any.
    pub fn oldest_ts(&self) -> Option<u64> {
        self.archived
            .first()
            .or((!self.live.entries.is_empty()).then_some(&self.live))
            .filter(|s| !s.entries.is_empty())
            .map(|s| s.min_ts)
    }

    /// Monotonic count of live-segment seals over the store's lifetime.
    pub fn rotations_total(&self) -> u64 {
        self.rotations_total
    }

    /// Monotonic count of archived segments dropped (expiry + segment cap).
    pub fn expired_segments_total(&self) -> u64 {
        self.expired_segments_total
    }

    /// Monotonic count of records dropped with their segments.
    pub fn expired_records_total(&self) -> u64 {
        self.expired_records_total
    }

    /// The sealed byte blobs of the archived segments, oldest first (the
    /// durable form; the live segment is excluded on purpose — it is
    /// sealed on rotation).
    pub fn archived_bytes(&self) -> Vec<Vec<u8>> {
        self.archived.iter().map(|s| s.sealed_bytes()).collect()
    }

    /// Re-inserts a sealed segment blob into the archive (restart path):
    /// the blob is decoded with [`decode_segment`] — stopping at the last
    /// valid record — and appended as one immutable archived segment.
    /// Empty or fully corrupted blobs are skipped.  Returns the number of
    /// records restored.
    pub fn restore_segment(&mut self, bytes: &[u8]) -> usize {
        let decoded = decode_segment(bytes);
        if decoded.entries.is_empty() {
            return 0;
        }
        let mut segment = Segment::default();
        for entry in &decoded.entries {
            segment.push(entry.clone());
        }
        self.last_ts = self.last_ts.max(segment.max_ts);
        let restored = segment.entries.len();
        self.archived.push(segment);
        restored
    }

    /// Linear-scan oracle for [`RetentionStore::fetch_since`]: walks every
    /// record of every segment without consulting the time indexes.  The
    /// equivalence proptest pins the binary-searched fetch to this.
    pub fn fetch_since_linear(
        &self,
        since_micros: u64,
        filter: &Filter,
    ) -> Vec<RetainedPublication> {
        let mut out = Vec::new();
        for segment in self.archived.iter().chain(Some(&self.live)) {
            for entry in &segment.entries {
                if entry.ts_micros >= since_micros && filter.matches(&entry.envelope.notification) {
                    out.push(entry.clone());
                }
            }
        }
        out
    }
}

impl Default for RetentionStore {
    fn default() -> Self {
        Self::new(RetentionConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebeca_broker::ClientId;
    use rebeca_filter::{Constraint, Notification};

    fn filter() -> Filter {
        Filter::new().with("service", Constraint::Eq("parking".into()))
    }

    fn envelope(seq: u64) -> Envelope {
        Envelope::new(
            ClientId::new(9),
            seq,
            Notification::builder()
                .attr("service", "parking")
                .attr("spot", seq as i64)
                .build(),
        )
    }

    fn other_envelope(seq: u64) -> Envelope {
        Envelope::new(
            ClientId::new(8),
            seq,
            Notification::builder()
                .attr("service", "traffic")
                .attr("spot", seq as i64)
                .build(),
        )
    }

    fn store(segment_max: usize, max_segments: usize, window: u64) -> RetentionStore {
        RetentionStore::new(RetentionConfig {
            segment_max_records: segment_max,
            max_segments,
            retention_window_micros: window,
        })
    }

    #[test]
    fn appends_rotate_at_the_segment_size() {
        let mut s = store(3, 64, 0);
        for i in 1..=7 {
            s.append(i * 10, envelope(i));
        }
        assert_eq!(s.total_records(), 7);
        assert_eq!(s.segment_count(), 3, "two sealed + live");
        assert_eq!(s.rotations_total(), 2);
        assert_eq!(s.oldest_ts(), Some(10));
    }

    #[test]
    fn fetch_matches_filter_and_window() {
        let mut s = store(2, 64, 0);
        for i in 1..=6 {
            s.append(i * 10, envelope(i));
            s.append(i * 10 + 1, other_envelope(i));
        }
        let hits = s.fetch_since(35, &filter());
        assert_eq!(
            hits.iter()
                .map(|e| e.envelope.publisher_seq)
                .collect::<Vec<_>>(),
            vec![4, 5, 6],
            "only matching entries at or after the window start"
        );
        assert!(hits.iter().all(|e| e.ts_micros >= 35));
    }

    #[test]
    fn fetch_equals_linear_scan() {
        let mut s = store(4, 64, 0);
        for i in 1..=40 {
            s.append(i * 7, envelope(i));
        }
        for since in [0, 1, 70, 71, 140, 279, 280, 281, 10_000] {
            assert_eq!(
                s.fetch_since(since, &filter()),
                s.fetch_since_linear(since, &filter()),
                "since={since}"
            );
        }
    }

    #[test]
    fn expiry_drops_whole_archived_segments_only() {
        let mut s = store(2, 64, 100);
        for i in 1..=9 {
            s.append(i * 10, envelope(i)); // archived: [10,20] [30,40] [50,60] [70,80]; live: [90]
        }
        assert_eq!(s.segment_count(), 5);
        // Horizon 45: segments with max_ts < 45 go ([10,20], [30,40]).
        assert_eq!(s.expire(145), 2);
        assert_eq!(s.expired_segments_total(), 2);
        assert_eq!(s.expired_records_total(), 4);
        assert_eq!(s.oldest_ts(), Some(50));
        // The live segment survives even when fully aged out.
        assert_eq!(s.expire(10_000), 2, "both remaining archived drop");
        assert_eq!(s.total_records(), 1, "live record kept");
        assert_eq!(s.fetch_since(0, &filter()).len(), 1);
    }

    #[test]
    fn segment_cap_drops_the_oldest_archived() {
        let mut s = store(1, 3, 0);
        for i in 1..=5 {
            s.append(i * 10, envelope(i));
        }
        // Cap 3 = 2 archived + live; oldest sealed segments were dropped.
        assert!(s.segment_count() <= 3);
        assert_eq!(s.expired_segments_total(), 3);
        let seqs: Vec<u64> = s
            .fetch_since(0, &filter())
            .iter()
            .map(|e| e.envelope.publisher_seq)
            .collect();
        assert_eq!(seqs, vec![4, 5]);
    }

    #[test]
    fn rotation_never_rewrites_sealed_bytes() {
        let mut s = store(2, 64, 0);
        for i in 1..=2 {
            s.append(i * 10, envelope(i));
        }
        let sealed = s.archived_bytes();
        assert_eq!(sealed.len(), 1);
        for i in 3..=6 {
            s.append(i * 10, envelope(i));
        }
        // The first sealed segment's bytes are byte-identical after two
        // more rotations: appends only ever touch the live tail.
        assert_eq!(s.archived_bytes()[0], sealed[0]);
    }

    #[test]
    fn timestamps_are_clamped_monotone() {
        let mut s = store(10, 64, 0);
        s.append(100, envelope(1));
        s.append(50, envelope(2)); // clock went backwards: clamped to 100
        s.append(120, envelope(3));
        let all = s.fetch_since(100, &filter());
        assert_eq!(all.len(), 3);
        assert_eq!(all[1].ts_micros, 100);
    }

    #[test]
    fn segments_roundtrip_through_the_codec() {
        let entries: Vec<RetainedPublication> = (1..=5)
            .map(|i| RetainedPublication {
                ts_micros: i * 1000,
                envelope: envelope(i),
            })
            .collect();
        let bytes = encode_segment(&entries);
        let decoded = decode_segment(&bytes);
        assert!(!decoded.truncated);
        assert_eq!(decoded.entries, entries);
        assert_eq!(decoded.header_min_ts, 1000);
        assert_eq!(decoded.header_max_ts, 5000);
    }

    #[test]
    fn restore_rebuilds_the_archive_from_sealed_blobs() {
        let mut s = store(2, 64, 0);
        for i in 1..=6 {
            s.append(i * 10, envelope(i));
        }
        let blobs = s.archived_bytes();
        let mut restored = store(2, 64, 0);
        for blob in &blobs {
            assert_eq!(restored.restore_segment(blob), 2);
        }
        assert_eq!(
            restored.fetch_since(0, &filter()),
            s.fetch_since_linear(0, &filter())
                .into_iter()
                .filter(|e| e.ts_micros <= 60)
                .collect::<Vec<_>>()
        );
    }
}
