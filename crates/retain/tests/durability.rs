//! Segment durability: corruption tolerance and fetch/oracle equivalence.
//!
//! Mirrors the WAL-corruption suite of `rebeca-mobility`: a truncated,
//! byte-flipped or garbage segment blob recovers to the last valid record
//! instead of panicking.  On top of that, a proptest drives a store
//! through random append/rotate/expire churn and asserts the
//! binary-searched time-window fetch byte-identical to the linear-scan
//! oracle at every probe point.

use proptest::prelude::*;

use rebeca_broker::{ClientId, Envelope};
use rebeca_filter::{Constraint, Filter, Notification};
use rebeca_retain::{
    decode_segment, encode_segment, RetainedPublication, RetentionConfig, RetentionStore,
    SEGMENT_HEADER_LEN,
};

fn filter() -> Filter {
    Filter::new().with("service", Constraint::Eq("telemetry".into()))
}

fn envelope(publisher: u32, seq: u64, service: &str) -> Envelope {
    Envelope::new(
        ClientId::new(publisher),
        seq,
        Notification::builder()
            .attr("service", service)
            .attr("reading", seq as i64)
            .build(),
    )
}

fn entries(n: u64) -> Vec<RetainedPublication> {
    (1..=n)
        .map(|i| RetainedPublication {
            ts_micros: i * 100,
            envelope: envelope(9, i, "telemetry"),
        })
        .collect()
}

#[test]
fn torn_tail_stops_at_the_last_valid_record() {
    let full = encode_segment(&entries(4));
    // Cut the last record in half (torn append at crash time).
    let torn = &full[..full.len() - 5];
    let decoded = decode_segment(torn);
    assert!(decoded.truncated);
    assert_eq!(decoded.entries, entries(3));
}

#[test]
fn flipped_payload_byte_stops_the_scan() {
    let mut bytes = encode_segment(&entries(4));
    // Flip one byte inside the second record's payload (skip the header
    // and the first record).
    let first_len = u32::from_le_bytes(
        bytes[SEGMENT_HEADER_LEN..SEGMENT_HEADER_LEN + 4]
            .try_into()
            .unwrap(),
    ) as usize
        + 8;
    bytes[SEGMENT_HEADER_LEN + first_len + 12] ^= 0xFF;
    let decoded = decode_segment(&bytes);
    assert!(decoded.truncated);
    assert_eq!(decoded.entries, entries(1));
}

#[test]
fn garbage_headers_and_absurd_lengths_never_panic() {
    // Too short for a header.
    assert!(decode_segment(&[1, 2, 3]).truncated);
    // Wrong magic.
    let mut bytes = encode_segment(&entries(2));
    bytes[0] ^= 0xFF;
    let decoded = decode_segment(&bytes);
    assert!(decoded.truncated);
    assert!(decoded.entries.is_empty());
    // A record frame whose length prefix overruns the blob by far.
    let mut bytes = encode_segment(&entries(1));
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes());
    // The header claims one record, so the scan stops cleanly after it;
    // re-encode with a lying count to force the absurd frame to be read.
    let mut lying = bytes.clone();
    lying[20..24].copy_from_slice(&2u32.to_le_bytes());
    let decoded = decode_segment(&lying);
    assert!(decoded.truncated);
    assert_eq!(decoded.entries.len(), 1);
}

#[test]
fn truncation_at_every_cut_point_is_total() {
    let full = encode_segment(&entries(5));
    for cut in 0..full.len() {
        let decoded = decode_segment(&full[..cut]);
        // Never panics; never invents records.
        assert!(decoded.entries.len() <= 5);
        if cut < full.len() {
            assert!(decoded.truncated || decoded.entries.len() == 5);
        }
    }
    let whole = decode_segment(&full);
    assert!(!whole.truncated);
    assert_eq!(whole.entries.len(), 5);
}

#[test]
fn corrupted_blobs_restore_to_the_valid_prefix() {
    let mut store = RetentionStore::new(RetentionConfig {
        segment_max_records: 8,
        max_segments: 16,
        retention_window_micros: 0,
    });
    let full = encode_segment(&entries(4));
    let torn = &full[..full.len() - 3];
    assert_eq!(store.restore_segment(torn), 3);
    assert_eq!(store.total_records(), 3);
    assert_eq!(store.restore_segment(&[0xDE, 0xAD]), 0, "garbage skipped");
}

/// One step of random store churn.
#[derive(Debug, Clone)]
enum Op {
    /// Append with a timestamp advance and an alternating service (so the
    /// filter matches only a subset).
    Append { dt: u64, matching: bool },
    /// Force a tail rotation.
    Rotate,
    /// Expire against `now = last_ts + slack`.
    Expire { slack: u64 },
}

fn append_op() -> impl Strategy<Value = Op> {
    (0u64..500, any::<bool>()).prop_map(|(dt, matching)| Op::Append { dt, matching })
}

fn op() -> impl Strategy<Value = Op> {
    // The shimmed `prop_oneof!` is unweighted; repeating the append arm
    // biases churn toward appends the way a `6 =>` weight would.
    prop_oneof![
        append_op(),
        append_op(),
        append_op(),
        Just(Op::Rotate).boxed(),
        (0u64..5_000).prop_map(|slack| Op::Expire { slack }).boxed(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Across random append/rotate/expire churn, the time-index
    /// binary-searched fetch returns results byte-identical to the
    /// linear-scan oracle for every probed window start.
    #[test]
    fn fetch_is_byte_identical_to_the_linear_oracle(
        ops in proptest::collection::vec(op(), 1..120),
        segment_max in 1usize..8,
        max_segments in 2usize..8,
        window in prop_oneof![Just(0u64).boxed(), (100u64..4_000).boxed()],
    ) {
        let mut store = RetentionStore::new(RetentionConfig {
            segment_max_records: segment_max,
            max_segments,
            retention_window_micros: window,
        });
        let mut ts = 0u64;
        let mut seq = 0u64;
        let mut probes = vec![0u64];
        for op in &ops {
            match *op {
                Op::Append { dt, matching } => {
                    ts += dt;
                    seq += 1;
                    let service = if matching { "telemetry" } else { "noise" };
                    store.append(ts, envelope(7, seq, service));
                    probes.push(ts);
                    probes.push(ts + 1);
                }
                Op::Rotate => store.rotate(),
                Op::Expire { slack } => {
                    store.expire(ts.saturating_add(slack));
                }
            }
        }
        let f = filter();
        for &since in &probes {
            let fast = store.fetch_since(since, &f);
            let slow = store.fetch_since_linear(since, &f);
            prop_assert_eq!(fast, slow, "since={}", since);
        }
        // The sealed blobs decode back cleanly, and together with the live
        // segment account for every retained record.
        let mut archived_total = 0u64;
        for blob in store.archived_bytes() {
            let d = decode_segment(&blob);
            prop_assert!(!d.truncated);
            archived_total += d.entries.len() as u64;
        }
        prop_assert!(archived_total <= store.total_records() as u64);
    }
}
