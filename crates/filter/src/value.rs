//! Typed attribute values carried inside [`Notification`](crate::Notification)s.
//!
//! The Rebeca data model used throughout the paper is a flat set of
//! name/value pairs (`(service = "parking"), (location = "100 Rebeca Drive"),
//! (cost < 3)`), so values only need to support a small set of scalar types
//! plus an explicit *location* type used by the logical-mobility machinery.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A single typed attribute value.
///
/// Values of different kinds never compare as equal and are unordered with
/// respect to each other; ordered comparisons are only defined within one
/// kind (see [`Value::partial_cmp_value`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Signed 64-bit integer, e.g. a price in cents or a room number.
    Int(i64),
    /// Double-precision float, e.g. a geographic coordinate.
    Float(f64),
    /// UTF-8 string, e.g. a street name or stock symbol.
    Str(String),
    /// Boolean flag.
    Bool(bool),
    /// An abstract location identifier from a
    /// [`LocationSpace`](https://docs.rs/rebeca-location) (stored as the raw
    /// numeric id so the filter crate stays independent of the location
    /// crate).
    Location(u32),
}

impl Value {
    /// Returns a short, human-readable name of the value's kind.
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::Int(_) => ValueKind::Int,
            Value::Float(_) => ValueKind::Float,
            Value::Str(_) => ValueKind::Str,
            Value::Bool(_) => ValueKind::Bool,
            Value::Location(_) => ValueKind::Location,
        }
    }

    /// Compares two values of the same kind.
    ///
    /// Returns `None` when the kinds differ or when the kind has no natural
    /// order (booleans and locations are only compared for equality — for
    /// those, `Some(Equal)` is returned on equality and `None` otherwise).
    pub fn partial_cmp_value(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => Some(a.total_cmp(b)),
            (Value::Int(a), Value::Float(b)) => Some((*a as f64).total_cmp(b)),
            (Value::Float(a), Value::Int(b)) => Some(a.total_cmp(&(*b as f64))),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) if a == b => Some(Ordering::Equal),
            (Value::Location(a), Value::Location(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Returns `true` when both values are of the same kind and equal under
    /// the value semantics used by filters (integers and floats compare
    /// numerically).
    pub fn value_eq(&self, other: &Value) -> bool {
        matches!(self.partial_cmp_value(other), Some(Ordering::Equal))
    }

    /// Returns the contained string if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Returns the contained integer if this is a [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the contained float if this is a [`Value::Float`], or the
    /// integer converted to a float if this is a [`Value::Int`].
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the contained location id if this is a [`Value::Location`].
    pub fn as_location(&self) -> Option<u32> {
        match self {
            Value::Location(l) => Some(*l),
            _ => None,
        }
    }

    /// Returns the contained boolean if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// The kind (dynamic type) of a [`Value`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueKind {
    /// [`Value::Int`].
    Int,
    /// [`Value::Float`].
    Float,
    /// [`Value::Str`].
    Str,
    /// [`Value::Bool`].
    Bool,
    /// [`Value::Location`].
    Location,
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Location(l) => write!(f, "loc#{l}"),
        }
    }
}

impl fmt::Display for ValueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ValueKind::Int => "int",
            ValueKind::Float => "float",
            ValueKind::Str => "string",
            ValueKind::Bool => "bool",
            ValueKind::Location => "location",
        };
        f.write_str(name)
    }
}

// Eq/Ord/Hash are needed so values can be members of `BTreeSet`s inside
// set-valued constraints.  Floats use their total order, which is adequate
// because filters never produce NaNs themselves.
impl Eq for Value {}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Int(_) => 0,
                Value::Float(_) => 1,
                Value::Str(_) => 2,
                Value::Bool(_) => 3,
                Value::Location(_) => 4,
            }
        }
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Location(a), Value::Location(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(i) => {
                0u8.hash(state);
                i.hash(state);
            }
            Value::Float(f) => {
                1u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Value::Bool(b) => {
                3u8.hash(state);
                b.hash(state);
            }
            Value::Location(l) => {
                4u8.hash(state);
                l.hash(state);
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_float_compare_numerically() {
        assert_eq!(
            Value::Int(3).partial_cmp_value(&Value::Float(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(2.5).partial_cmp_value(&Value::Int(3)),
            Some(Ordering::Less)
        );
        assert!(Value::Int(3).value_eq(&Value::Float(3.0)));
    }

    #[test]
    fn different_kinds_do_not_compare() {
        assert_eq!(
            Value::Int(1).partial_cmp_value(&Value::Str("1".into())),
            None
        );
        assert!(!Value::Bool(true).value_eq(&Value::Int(1)));
    }

    #[test]
    fn strings_compare_lexicographically() {
        assert_eq!(
            Value::from("abc").partial_cmp_value(&Value::from("abd")),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn locations_compare_for_equality_only_through_value_eq() {
        assert!(Value::Location(7).value_eq(&Value::Location(7)));
        assert!(!Value::Location(7).value_eq(&Value::Location(8)));
    }

    #[test]
    fn accessors_return_expected_variants() {
        assert_eq!(Value::Int(4).as_int(), Some(4));
        assert_eq!(Value::Int(4).as_float(), Some(4.0));
        assert_eq!(Value::Float(1.5).as_float(), Some(1.5));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Location(2).as_location(), Some(2));
        assert_eq!(Value::Bool(true).as_int(), None);
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::from("a").to_string(), "\"a\"");
        assert_eq!(Value::Location(9).to_string(), "loc#9");
    }

    #[test]
    fn kind_reports_the_variant() {
        assert_eq!(Value::Int(0).kind(), ValueKind::Int);
        assert_eq!(Value::Float(0.0).kind(), ValueKind::Float);
        assert_eq!(Value::from("s").kind(), ValueKind::Str);
        assert_eq!(Value::Bool(false).kind(), ValueKind::Bool);
        assert_eq!(Value::Location(1).kind(), ValueKind::Location);
        assert_eq!(ValueKind::Location.to_string(), "location");
    }

    #[test]
    fn total_order_is_consistent_for_sets() {
        use std::collections::BTreeSet;
        let set: BTreeSet<Value> = [Value::Int(2), Value::Int(1), Value::from("a")]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 3);
        assert!(set.contains(&Value::Int(1)));
    }
}
