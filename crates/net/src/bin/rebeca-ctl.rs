//! `rebeca-ctl`: the operator CLI of a TCP deployment.
//!
//! ```text
//! rebeca-ctl status    --config cluster.cfg [--json] [--watch MS] [--timeout-ms 2000]
//! rebeca-ctl tail      --config cluster.cfg [--broker N] [--interval-ms 500] [--rounds R] [--follow]
//! rebeca-ctl trace     --config cluster.cfg (TRACE_ID | --latest) [--json]
//! rebeca-ctl publish   --config cluster.cfg [--broker N] [--client ID] key=value...
//! rebeca-ctl wait      --config cluster.cfg --until wal_depth>=1 [--broker N] [--deadline-ms 30000]
//! rebeca-ctl drop-link --config cluster.cfg --broker N --peer P
//! ```
//!
//! Reads the same cluster config as `rebeca-node` and talks to the running
//! broker processes:
//!
//! * `status` fans a `StatusRequest` out across every broker of the cluster
//!   and renders the reports — routing-table size, WAL depth and checkpoint
//!   age, restart epoch, relocation counters, hand-off latency quantiles,
//!   per-link liveness.  Unreachable brokers are *reported*, not fatal.
//!   `--json` emits one JSON object per broker (JSON lines), machine-ready.
//!   `--watch MS` re-fetches and re-renders every MS milliseconds instead
//!   of exiting — the live dashboard an operator keeps open during a
//!   relocation drill.
//! * `tail` streams the cluster's observability journal live: it polls each
//!   broker with a resumable sequence cursor and prints events as they
//!   happen (relocation phases, WAL appends and checkpoints, link churn).
//!   `--follow` keeps polling forever even when `--rounds` is given.
//! * `trace` fans a `TraceRequest` across every broker, merges the
//!   retained distributed-tracing spans and reassembles the causal tree of
//!   one trace — per-hop, per-stage latencies for a single publication or
//!   relocation.  Pass the 16-hex-digit trace id a previous invocation (or
//!   a span in `--json` output) printed, or `--latest` for the most
//!   recently started trace anywhere in the cluster.  Brokers only retain
//!   spans when sampling is on (`rebeca-node --trace-sample`).
//! * `publish` injects one notification into the running cluster through a
//!   short-lived client session — the smallest possible smoke test that
//!   routing works end to end.
//! * `wait` blocks until a numeric status field satisfies a condition
//!   (`<field><op><value>`, e.g. `restart_epoch>=1`) on any targeted
//!   broker, or fails when `--deadline-ms` elapses — the scriptable
//!   building block chaos harnesses use to wait for recovery.
//! * `drop-link` injects a fault: it asks a broker to sever its outbound
//!   connections to a peer, exercising the self-healing redial path.

use std::process::ExitCode;
use std::time::Duration;

use rebeca_broker::ClientId;
use rebeca_core::SystemBuilder;
use rebeca_filter::Notification;
use rebeca_net::wire::Frame;
use rebeca_net::{admin, AdminError, ClusterConfig, Endpoint, NetConfig, SystemBuilderTcp};
use rebeca_obs::{json_escape, BrokerStatus, SpanRecord, StatusReport};
use rebeca_sim::{NodeId, SimDuration};

const USAGE: &str = "usage:
  rebeca-ctl status    --config FILE [--json] [--watch MS] [--timeout-ms MS]
  rebeca-ctl tail      --config FILE [--broker N] [--interval-ms MS] [--rounds R] [--follow] \
                       [--timeout-ms MS]
  rebeca-ctl trace     --config FILE (TRACE_ID | --latest) [--json] [--timeout-ms MS]
  rebeca-ctl publish   --config FILE [--broker N] [--client ID] key=value...
  rebeca-ctl wait      --config FILE --until FIELD{>=,<=,==,!=,>,<}VALUE [--broker N] \
                       [--interval-ms MS] [--deadline-ms MS] [--timeout-ms MS]
  rebeca-ctl drop-link --config FILE --broker N --peer P";

struct CommonArgs {
    cluster: ClusterConfig,
    timeout: Duration,
}

fn parse_u64(flag: &str, value: String) -> Result<u64, String> {
    value
        .parse::<u64>()
        .map_err(|_| format!("{flag} expects a number"))
}

/// Parses `key=value` into a notification attribute: integers as integers,
/// everything else as a string.
fn parse_attr(pair: &str) -> Result<(String, Option<i64>, String), String> {
    let (key, value) = pair
        .split_once('=')
        .ok_or_else(|| format!("expected key=value, got {pair:?}"))?;
    if key.is_empty() {
        return Err(format!("empty attribute name in {pair:?}"));
    }
    Ok((
        key.to_string(),
        value.parse::<i64>().ok(),
        value.to_string(),
    ))
}

fn run() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return Err(USAGE.to_string());
    }
    let command = args.remove(0);

    // Flags shared by every command.
    let mut config = None;
    let mut timeout_ms = 2_000;
    let mut json = false;
    let mut broker: Option<usize> = None;
    let mut client = 9_001u32;
    let mut interval_ms = 500;
    let mut rounds: Option<u64> = None;
    let mut until: Option<String> = None;
    let mut deadline_ms = 30_000;
    let mut peer: Option<usize> = None;
    let mut latest = false;
    let mut follow = false;
    let mut watch_ms: Option<u64> = None;
    let mut positional = Vec::new();

    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} expects a value"));
        match flag.as_str() {
            "--config" => config = Some(value("--config")?),
            "--timeout-ms" => timeout_ms = parse_u64("--timeout-ms", value("--timeout-ms")?)?,
            "--interval-ms" => interval_ms = parse_u64("--interval-ms", value("--interval-ms")?)?,
            "--rounds" => rounds = Some(parse_u64("--rounds", value("--rounds")?)?),
            "--json" => json = true,
            "--broker" => {
                broker = Some(
                    value("--broker")?
                        .parse::<usize>()
                        .map_err(|_| "--broker expects a broker index".to_string())?,
                )
            }
            "--client" => {
                client = value("--client")?
                    .parse::<u32>()
                    .map_err(|_| "--client expects a client id".to_string())?
            }
            "--until" => until = Some(value("--until")?),
            "--latest" => latest = true,
            "--follow" => follow = true,
            "--watch" => watch_ms = Some(parse_u64("--watch", value("--watch")?)?),
            "--deadline-ms" => deadline_ms = parse_u64("--deadline-ms", value("--deadline-ms")?)?,
            "--peer" => {
                peer = Some(
                    value("--peer")?
                        .parse::<usize>()
                        .map_err(|_| "--peer expects a broker index".to_string())?,
                )
            }
            other if other.starts_with("--") => return Err(format!("unknown flag {other:?}")),
            other => positional.push(other.to_string()),
        }
    }

    let config = config.ok_or_else(|| format!("--config is required\n{USAGE}"))?;
    let cluster = ClusterConfig::load(&config).map_err(|e| e.to_string())?;
    if let Some(b) = broker {
        if b >= cluster.endpoints.len() {
            return Err(format!(
                "broker {b} not in config (cluster has {} brokers)",
                cluster.endpoints.len()
            ));
        }
    }
    let common = CommonArgs {
        cluster,
        timeout: Duration::from_millis(timeout_ms),
    };

    match command.as_str() {
        "status" => status(&common, json, watch_ms.map(Duration::from_millis)),
        "tail" => tail(
            &common,
            broker,
            Duration::from_millis(interval_ms),
            // --follow means "never stop", whatever --rounds says.
            if follow { None } else { rounds },
        ),
        "trace" => trace(
            &common,
            positional.first().map(String::as_str),
            latest,
            json,
        ),
        "publish" => publish(
            &common,
            broker.unwrap_or(0),
            ClientId::new(client),
            &positional,
        ),
        "wait" => {
            let until = until.ok_or_else(|| format!("--until is required\n{USAGE}"))?;
            wait(
                &common,
                broker,
                &until,
                Duration::from_millis(interval_ms),
                Duration::from_millis(deadline_ms),
            )
        }
        "drop-link" => {
            let broker = broker.ok_or_else(|| format!("--broker is required\n{USAGE}"))?;
            let peer = peer.ok_or_else(|| format!("--peer is required\n{USAGE}"))?;
            drop_link(&common, broker, peer)
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

/// One fan-out round: fetch every targeted broker's report (or its error).
fn fetch_all(
    common: &CommonArgs,
    only: Option<usize>,
    events_after: Option<u64>,
) -> Vec<(usize, &Endpoint, Result<StatusReport, AdminError>)> {
    common
        .cluster
        .endpoints
        .iter()
        .enumerate()
        .filter(|(i, _)| only.is_none() || only == Some(*i))
        .map(|(i, ep)| (i, ep, admin::fetch_status(ep, events_after, common.timeout)))
        .collect()
}

fn status(common: &CommonArgs, json: bool, watch: Option<Duration>) -> Result<(), String> {
    let started = std::time::Instant::now();
    loop {
        if watch.is_some() && !json {
            println!("--- status +{}ms", started.elapsed().as_millis());
        }
        status_round(common, json);
        let Some(interval) = watch else {
            return Ok(());
        };
        std::thread::sleep(interval);
    }
}

/// One status fan-out pass: fetch and render every broker's report.
fn status_round(common: &CommonArgs, json: bool) {
    let mut unreachable = 0;
    for (i, endpoint, fetched) in fetch_all(common, None, None) {
        match fetched {
            Ok(report) => {
                if json {
                    println!(
                        "{{\"broker\":{i},\"endpoint\":\"{}\",\"reachable\":true,\"report\":{}}}",
                        json_escape(&endpoint.to_string()),
                        report.to_json()
                    );
                } else {
                    print_human(i, endpoint, &report);
                }
            }
            Err(e) => {
                unreachable += 1;
                if json {
                    println!(
                        "{{\"broker\":{i},\"endpoint\":\"{}\",\"reachable\":false,\"error\":\"{}\"}}",
                        json_escape(&endpoint.to_string()),
                        json_escape(&e.to_string())
                    );
                } else {
                    println!("broker {i} @ {endpoint}: UNREACHABLE ({e})");
                }
            }
        }
    }
    if !json && unreachable > 0 {
        println!("{unreachable} broker(s) unreachable");
    }
}

fn print_human(index: usize, endpoint: &Endpoint, report: &StatusReport) {
    for b in &report.brokers {
        println!(
            "broker {} @ {endpoint}: epoch {} gen {} routing {} ({} subgroups, {:.1}x) wal {} \
             (+{} since ckpt{})",
            b.broker,
            b.restart_epoch,
            b.generation,
            b.routing_entries,
            b.routing_subgroups,
            b.routing_entries as f64 / b.routing_subgroups.max(1) as f64,
            b.wal_depth,
            b.wal_since_checkpoint,
            match b.last_checkpoint_age_ms {
                Some(age) => format!(", {age}ms old"),
                None => String::new(),
            },
        );
        println!(
            "  relocation: counterparts {} buffered {} pending {} expired-leases {}",
            b.counterparts, b.buffered_deliveries, b.pending_relocations, b.expired_leases
        );
        println!(
            "  retention: {} publications in {} segments{}",
            b.retained_publications,
            b.retained_segments,
            match b.oldest_retained_age_ms {
                Some(age) => format!(", oldest {age}ms old"),
                None => String::new(),
            },
        );
        for (name, count) in &b.relocations {
            println!("    {name} = {count}");
        }
        let h = &b.handoff_latency_micros;
        if !h.is_empty() {
            println!(
                "  handoff latency: n={} p50={}us p95={}us p99={}us",
                h.count(),
                h.p50(),
                h.p95(),
                h.p99()
            );
        }
        for link in &b.links {
            let mut notes = Vec::new();
            if let Some(age) = link.last_heartbeat_age_ms {
                notes.push(format!("heard {age}ms ago"));
            }
            if let Some(down) = link.down_since_ms {
                notes.push(format!("down {down}ms"));
            }
            if link.redial_attempts > 0 {
                notes.push(format!("{} redials", link.redial_attempts));
            }
            println!(
                "  link -> {}: {}{}",
                link.peer,
                if link.connected { "up" } else { "DOWN" },
                if notes.is_empty() {
                    String::new()
                } else {
                    format!(" ({})", notes.join(", "))
                },
            );
        }
    }
    if report.brokers.is_empty() {
        println!("broker {index} @ {endpoint}: reachable, hosts no brokers");
    }
}

fn tail(
    common: &CommonArgs,
    only: Option<usize>,
    interval: Duration,
    rounds: Option<u64>,
) -> Result<(), String> {
    // Per-broker resumable cursor.  The journal's first event has seq 1, so
    // `events_after: Some(0)` means "everything still buffered".
    let mut cursors = vec![0u64; common.cluster.endpoints.len()];
    let mut round = 0u64;
    loop {
        let fetches: Vec<_> = (0..common.cluster.endpoints.len())
            .filter(|i| only.is_none() || only == Some(*i))
            .collect();
        for i in fetches {
            let endpoint = &common.cluster.endpoints[i];
            let report = match admin::fetch_status(endpoint, Some(cursors[i]), common.timeout) {
                Ok(report) => report,
                Err(_) => continue, // a broker being down is not the tail's business
            };
            for event in &report.events {
                if event.seq <= cursors[i] {
                    continue;
                }
                cursors[i] = event.seq;
                println!(
                    "broker={i} seq={} t={}us {} {}",
                    event.seq, event.at_micros, event.kind, event.detail
                );
            }
        }
        round += 1;
        if rounds.is_some_and(|max| round >= max) {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

/// Fans a `TraceRequest` across the cluster, merges the retained spans and
/// renders the causal tree of one trace.
///
/// `spec` is an explicit 16-hex-digit trace id (with or without a `0x`
/// prefix); `latest` resolves to the most recently started trace on any
/// reachable broker instead.  Unreachable brokers are skipped with a
/// warning — a partial tree from the reachable majority is still useful —
/// but having *no* reachable broker is an error.
fn trace(common: &CommonArgs, spec: Option<&str>, latest: bool, json: bool) -> Result<(), String> {
    let mut spans: Vec<SpanRecord> = Vec::new();
    let mut reachable = 0usize;
    for (i, endpoint) in common.cluster.endpoints.iter().enumerate() {
        match admin::fetch_trace(endpoint, None, common.timeout) {
            Ok(report) => {
                reachable += 1;
                spans.extend(report.spans);
            }
            Err(e) => eprintln!("rebeca-ctl: broker {i} @ {endpoint} unreachable ({e})"),
        }
    }
    if reachable == 0 {
        return Err("no broker reachable to fetch traces from".to_string());
    }
    let trace_id = match (spec, latest) {
        (Some(s), _) => u64::from_str_radix(s.trim_start_matches("0x"), 16)
            .map_err(|_| format!("trace id {s:?} is not a hex id (like 1f00ba5e9d8c7766)"))?,
        (None, true) => rebeca_obs::latest_trace_id(&spans).ok_or_else(|| {
            "no spans retained on any reachable broker (is --trace-sample set on the nodes?)"
                .to_string()
        })?,
        (None, false) => return Err(format!("trace needs a TRACE_ID or --latest\n{USAGE}")),
    };
    if json {
        let mut out = format!("{{\"trace_id\":\"{trace_id:016x}\",\"spans\":[");
        let mut first = true;
        for span in spans.iter().filter(|s| s.trace_id == trace_id) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&span.to_json());
        }
        out.push_str("]}");
        println!("{out}");
    } else {
        print!("{}", rebeca_obs::render_trace_tree(trace_id, &spans));
    }
    Ok(())
}

/// A parsed `--until` condition: numeric status field, comparison, value.
struct Condition {
    field: String,
    op: &'static str,
    value: u64,
}

impl Condition {
    /// Parses `<field><op><value>` — two-character operators first, so
    /// `>=`/`<=` are not misread as `>`/`<` with a leading `=` digit.
    fn parse(spec: &str) -> Result<Condition, String> {
        for op in [">=", "<=", "==", "!=", ">", "<"] {
            if let Some((field, value)) = spec.split_once(op) {
                let field = field.trim().to_string();
                if field.is_empty() {
                    return Err(format!("missing field in condition {spec:?}"));
                }
                // Reject unknown fields up front instead of waiting forever.
                Self::extract_probe(&field)?;
                let value = value
                    .trim()
                    .parse::<u64>()
                    .map_err(|_| format!("condition value must be a number in {spec:?}"))?;
                return Ok(Condition { field, op, value });
            }
        }
        Err(format!(
            "condition {spec:?} has no operator (expected one of >=, <=, ==, !=, >, <)"
        ))
    }

    fn extract_probe(field: &str) -> Result<(), String> {
        let probe = BrokerStatus {
            broker: 0,
            restart_epoch: 0,
            generation: 0,
            routing_entries: 0,
            routing_subgroups: 0,
            wal_depth: 0,
            wal_since_checkpoint: 0,
            last_checkpoint_age_ms: None,
            counterparts: 0,
            buffered_deliveries: 0,
            pending_relocations: 0,
            retained_publications: 0,
            retained_segments: 0,
            oldest_retained_age_ms: None,
            expired_leases: 0,
            relocations: Vec::new(),
            handoff_latency_micros: Default::default(),
            links: Vec::new(),
        };
        Self::extract(&probe, field).map(|_| ())
    }

    /// Reads the named numeric field from a broker status.
    fn extract(status: &BrokerStatus, field: &str) -> Result<u64, String> {
        Ok(match field {
            "restart_epoch" => status.restart_epoch,
            "generation" => status.generation,
            "routing_entries" => status.routing_entries,
            "routing_subgroups" => status.routing_subgroups,
            "wal_depth" => status.wal_depth,
            "wal_since_checkpoint" => status.wal_since_checkpoint,
            "counterparts" => status.counterparts,
            "buffered_deliveries" => status.buffered_deliveries,
            "pending_relocations" => status.pending_relocations,
            "retained_publications" => status.retained_publications,
            "retained_segments" => status.retained_segments,
            "expired_leases" => status.expired_leases,
            other => {
                return Err(format!(
                    "unknown status field {other:?} (numeric fields: restart_epoch, generation, \
                     routing_entries, routing_subgroups, wal_depth, wal_since_checkpoint, \
                     counterparts, buffered_deliveries, pending_relocations, \
                     retained_publications, retained_segments, expired_leases)"
                ))
            }
        })
    }

    fn holds(&self, observed: u64) -> bool {
        match self.op {
            ">=" => observed >= self.value,
            "<=" => observed <= self.value,
            "==" => observed == self.value,
            "!=" => observed != self.value,
            ">" => observed > self.value,
            "<" => observed < self.value,
            _ => unreachable!("parse only yields the operators above"),
        }
    }
}

fn wait(
    common: &CommonArgs,
    only: Option<usize>,
    spec: &str,
    interval: Duration,
    deadline: Duration,
) -> Result<(), String> {
    let condition = Condition::parse(spec)?;
    let started = std::time::Instant::now();
    let mut last_observed: Option<u64> = None;
    loop {
        for (i, _, fetched) in fetch_all(common, only, None) {
            let Ok(report) = fetched else { continue };
            for b in &report.brokers {
                let observed = Condition::extract(b, &condition.field)?;
                last_observed = Some(observed);
                if condition.holds(observed) {
                    println!(
                        "broker {i}: {}={observed} satisfies {spec} after {}ms",
                        condition.field,
                        started.elapsed().as_millis()
                    );
                    return Ok(());
                }
            }
        }
        if started.elapsed() >= deadline {
            return Err(format!(
                "deadline of {}ms elapsed waiting for {spec} (last observed {})",
                deadline.as_millis(),
                match last_observed {
                    Some(v) => v.to_string(),
                    None => "no reachable broker".to_string(),
                }
            ));
        }
        std::thread::sleep(interval);
    }
}

/// Asks broker `broker` to sever its outbound connections to `peer` by
/// sending the hello-less `LinkDrop` admin frame.  One-shot, best effort:
/// the writer threads redial immediately, which is the point.
fn drop_link(common: &CommonArgs, broker: usize, peer: usize) -> Result<(), String> {
    use std::io::Write;
    if peer >= common.cluster.endpoints.len() {
        return Err(format!(
            "peer {peer} not in config (cluster has {} brokers)",
            common.cluster.endpoints.len()
        ));
    }
    let endpoint = &common.cluster.endpoints[broker];
    let mut stream = std::net::TcpStream::connect(endpoint.to_string())
        .map_err(|e| format!("cannot reach broker {broker} @ {endpoint}: {e}"))?;
    stream
        .write_all(
            &Frame::LinkDrop {
                peer: NodeId::new(peer),
            }
            .encode_framed(),
        )
        .map_err(|e| format!("sending drop to broker {broker} failed: {e}"))?;
    println!("asked broker {broker} to drop its links to peer {peer}");
    Ok(())
}

fn publish(
    common: &CommonArgs,
    broker: usize,
    client: ClientId,
    attrs: &[String],
) -> Result<(), String> {
    if attrs.is_empty() {
        return Err(format!(
            "publish needs at least one key=value attribute\n{USAGE}"
        ));
    }
    let mut builder = Notification::builder();
    for pair in attrs {
        let (key, int, text) = parse_attr(pair)?;
        builder = match int {
            Some(v) => builder.attr(key.as_str(), v),
            None => builder.attr(key.as_str(), text.as_str()),
        };
    }
    let notification = builder.build();

    let net = NetConfig::new(common.cluster.endpoints.clone()).seed(common.cluster.seed ^ 0xC71);
    let mut system = SystemBuilder::new(&common.cluster.topology)
        .link_delay(common.cluster.delay)
        .seed(common.cluster.seed)
        .build_tcp(net)
        .map_err(|e| e.to_string())?;
    let session = system.connect(client, broker).map_err(|e| e.to_string())?;
    // Let the attach reach the broker before publishing through it.
    let now = system.now();
    system.run_until(now + SimDuration::from_millis(300));
    session
        .publish(&mut system, notification)
        .map_err(|e| e.to_string())?;
    // Flush the frame out before tearing the driver down.
    let now = system.now();
    system.run_until(now + SimDuration::from_millis(300));
    println!("published to broker {broker} as client {}", client.raw());
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rebeca-ctl: {e}");
            ExitCode::FAILURE
        }
    }
}
