//! Offline API stand-in for the `proptest` crate.
//!
//! Implements the slice of the proptest API used by this workspace's
//! property tests: the [`Strategy`] trait with [`Strategy::prop_map`] and
//! [`Strategy::boxed`], range/tuple/collection/`Just`/[`any`] strategies, the
//! [`prop_oneof!`] union macro, and the [`proptest!`] test macro together
//! with [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
//!
//! Differences from real proptest, deliberately accepted for an offline
//! build environment:
//!
//! * cases are generated from a **deterministic per-test seed** (derived
//!   from the test name), so runs are reproducible but not configurable via
//!   `PROPTEST_*` environment variables (except `PROPTEST_CASES`);
//! * failing cases are **not shrunk** — the failing input is printed as-is.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving test-case generation (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Builds a generator from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Builds a generator whose seed is derived from an arbitrary string
    /// (used by [`proptest!`] with the test function name, so every test has
    /// its own reproducible stream).
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a, good enough for seeding.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Result of one generated test case: `Reject` skips the case
/// ([`prop_assume!`]), `Fail` aborts the test.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case did not satisfy an assumption; generate another one.
    Reject,
    /// A property assertion failed.
    Fail(String),
}

/// Runner configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
    /// Maximum rejected cases before the test errors out.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig {
            cases,
            max_global_rejects: 4096,
        }
    }
}

impl ProptestConfig {
    /// Convenience constructor mirroring proptest's.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// A generator of values of one type (mirrors `proptest::strategy::Strategy`,
/// minus shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value (mirrors
/// `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (mirrors
/// `proptest::arbitrary::Arbitrary` for the primitives the workspace uses).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for any value of `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Uniform choice among boxed alternatives (the engine behind
/// [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union from its alternatives; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>`; like proptest, the resulting set may be
    /// smaller than requested when duplicate elements are drawn.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// Strategy returned by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K, V>`; may be smaller than requested when
    /// duplicate keys are drawn.
    pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { key, value, size }
    }

    /// Strategy returned by [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.size.clone().generate(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// Mirrors the `prop::` path alias from `proptest::prelude`.
pub mod prop {
    pub use crate::collection;
}

/// Everything a property test file needs (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume,
        prop_oneof, proptest, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
        TestCaseError, TestRng, Union,
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a property inside [`proptest!`]; failing returns a
/// [`TestCaseError::Fail`] carrying the message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: left = {:?}, right = {:?}: {}",
                l, r, format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests (mirrors `proptest::proptest!`).
///
/// Supports the forms used in this workspace: an optional
/// `#![proptest_config(..)]` header followed by any number of
/// `#[test] fn name(arg in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`] (recursive item muncher).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let case = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match case {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "proptest '{}' rejected too many cases ({} rejects, {} passes)",
                                stringify!($name), rejected, passed
                            );
                        }
                    }
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest '{}' failed after {} passing cases: {}",
                               stringify!($name), passed, msg);
                    }
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        let s = (0i64..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((0..20).contains(&v) && v % 2 == 0);
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = TestRng::from_seed(2);
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn collections_respect_size_ranges() {
        let mut rng = TestRng::from_seed(3);
        let s = collection::vec(0u32..5, 1..4);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
        let m = collection::btree_map(0u32..100, 0u8..2, 0..6);
        for _ in 0..50 {
            assert!(m.generate(&mut rng).len() < 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself works end to end, including assume and both
        /// assertion forms.
        #[test]
        fn macro_machinery_works(x in 0u32..100, v in prop::collection::vec(0u32..10, 0..5)) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
            prop_assert!(x != 13, "assume should have filtered {}", x);
        }
    }
}
