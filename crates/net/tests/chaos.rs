//! Process-kill chaos: the real-socket counterpart of
//! `crates/core/tests/chaos_status.rs`.
//!
//! 1. spawn three `rebeca-node` OS processes (broker 0 with a durable WAL
//!    directory), drive the quickstart scenario up to and past the
//!    relocation,
//! 2. `SIGKILL` the old border broker (broker 0 — off the delivery path
//!    once the consumer settled at broker 1) while publications keep
//!    flowing,
//! 3. publish through the dead broker's cluster, then relaunch broker 0
//!    with `--recover` and a bumped `--epoch`,
//! 4. assert the consumer's delivery log is exactly-once and byte-identical
//!    to the same interleaving on the deterministic `SimDriver` (crash and
//!    all), that the survivors journaled the link drop / redial / re-up,
//!    and that a zombie connection claiming the dead incarnation's epoch is
//!    fenced off.
//!
//! Broker processes self-terminate after `--run-secs` as a safety net; the
//! test kills them as soon as the scenario completes.

mod common;

use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use rebeca_broker::ConsumerLog;
use rebeca_net::wire::Frame;
use rebeca_net::{ClusterConfig, Endpoint, NetConfig, SystemBuilderTcp};
use rebeca_sim::{DelayModel, NodeId, SimDuration, Topology};

use common::{
    assert_exactly_once, run_until_deliveries, vacancy, CONSUMER, MOVE_AFTER, PRODUCER,
    PUBLICATIONS,
};

/// Publications sent before the kill (the relocation settles inside them).
const KILL_AFTER: u64 = 8;
/// The epoch every broker starts with, so a zombie claiming less than it
/// is provably stale.
const BASE_EPOCH: u64 = 1;
/// The epoch the relaunched broker 0 fences its own past with.
const RESTART_EPOCH: u64 = 2;

/// Kills the spawned broker processes on scope exit, panic included.
struct Cluster {
    children: Vec<Child>,
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Probes three free loopback ports by binding ephemeral listeners.
fn probe_ports() -> Vec<u16> {
    let probes: Vec<std::net::TcpListener> = (0..3)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind"))
        .collect();
    probes
        .iter()
        .map(|l| l.local_addr().unwrap().port())
        .collect()
}

/// Spawns one broker process and waits for its `listening` readiness line
/// (plus the `recovered` line when relaunching).  Returns `None` when the
/// child dies before reporting, so the caller can retry with fresh ports.
fn spawn_broker(
    config_path: &std::path::Path,
    broker: usize,
    epoch: u64,
    persist_dir: &std::path::Path,
    recover: bool,
) -> Option<Child> {
    let binary = env!("CARGO_BIN_EXE_rebeca-node");
    let mut command = Command::new(binary);
    command
        .arg("--config")
        .arg(config_path)
        .arg("--broker")
        .arg(broker.to_string())
        .arg("--run-secs")
        .arg("180")
        .arg("--epoch")
        .arg(epoch.to_string())
        .arg("--persist-dir")
        .arg(persist_dir);
    if recover {
        command.arg("--recover");
    }
    let mut child = command
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn rebeca-node");
    let stdout = child.stdout.take().expect("piped stdout");
    let (ready_tx, ready_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut lines = BufReader::new(stdout).lines();
        while let Some(Ok(line)) = lines.next() {
            if line.contains("listening") {
                let _ = ready_tx.send(());
                break;
            }
        }
        // Keep draining so the child never blocks on a full pipe.
        for _ in lines {}
    });
    match ready_rx.recv_timeout(Duration::from_secs(30)) {
        Ok(()) => Some(child),
        Err(_) => {
            let _ = child.kill();
            let _ = child.wait();
            None
        }
    }
}

/// The oracle: the identical interleaving — publications, relocation,
/// mid-stream broker crash+recovery — on the deterministic simulator.
fn chaos_sim_oracle() -> ConsumerLog {
    let mut sys = common::builder(1).build().expect("sim build");
    let consumer = sys.connect(CONSUMER, 0).expect("consumer connects");
    consumer
        .subscribe(&mut sys, common::parking_filter())
        .expect("subscribe");
    let producer = sys.connect(PRODUCER, 2).expect("producer connects");
    let now = sys.now();
    sys.run_until(now + SimDuration::from_millis(200));

    for i in 1..=MOVE_AFTER {
        producer.publish(&mut sys, vacancy(i)).expect("publish");
    }
    assert!(run_until_deliveries(&mut sys, MOVE_AFTER as usize, 60_000));
    consumer.move_to(&mut sys, 1).expect("relocate");
    for i in MOVE_AFTER + 1..=KILL_AFTER {
        producer.publish(&mut sys, vacancy(i)).expect("publish");
    }
    assert!(run_until_deliveries(&mut sys, KILL_AFTER as usize, 60_000));

    sys.crash_and_restart_broker(0).expect("sim crash+recover");

    for i in KILL_AFTER + 1..=PUBLICATIONS {
        producer.publish(&mut sys, vacancy(i)).expect("publish");
    }
    assert!(run_until_deliveries(
        &mut sys,
        PUBLICATIONS as usize,
        60_000
    ));
    let log = sys.client_log(CONSUMER).unwrap().clone();
    assert!(log.is_clean(), "oracle run must be clean");
    log
}

/// Runs `rebeca-ctl` with the given arguments, returning (success, stdout).
fn ctl(config_path: &std::path::Path, args: &[&str]) -> (bool, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_rebeca-ctl"))
        .args(args)
        .arg("--config")
        .arg(config_path)
        .output()
        .expect("run rebeca-ctl");
    (
        output.status.success(),
        format!(
            "{}{}",
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr)
        ),
    )
}

/// Sends a stale-epoch `Hello` claiming to be node `from` and returns the
/// `Fenced { expected }` reply, if the target rejects it.
fn probe_zombie(endpoint: &Endpoint, from: usize, epoch: u64) -> Option<u64> {
    let mut socket = std::net::TcpStream::connect(endpoint.to_string()).ok()?;
    socket
        .set_read_timeout(Some(Duration::from_millis(200)))
        .ok()?;
    let hello = Frame::Hello {
        from: NodeId::new(from),
        to: NodeId::new(1),
        epoch,
        listen: Endpoint::new("127.0.0.1", 1),
        delay: DelayModel::Constant(0),
    };
    socket.write_all(&hello.encode_framed()).ok()?;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    for _ in 0..50 {
        match socket.read(&mut chunk) {
            Ok(0) => return None, // closed without a reply
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => continue,
        }
        if let Ok((Frame::Fenced { expected }, _)) = Frame::decode_framed(&buf) {
            return Some(expected);
        }
    }
    None
}

#[test]
fn sigkilled_broker_recovers_without_losing_or_duplicating_a_frame() {
    let tmp = std::env::temp_dir().join(format!("rebeca-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).expect("create temp dir");
    let config_path = tmp.join("cluster.cfg");
    let wal_dir = |broker: usize| tmp.join(format!("wal{broker}"));

    let mut attempt = 0;
    let (mut cluster, endpoints) = 'retry: loop {
        attempt += 1;
        let ports = probe_ports();
        let endpoints: Vec<Endpoint> = ports
            .iter()
            .map(|&p| Endpoint::new("127.0.0.1", p))
            .collect();
        let cluster_cfg = ClusterConfig {
            endpoints: endpoints.clone(),
            topology: Topology::line(3),
            delay: DelayModel::constant_millis(1),
            seed: 7,
        };
        std::fs::write(&config_path, cluster_cfg.render()).expect("write config");
        let mut cluster = Cluster {
            children: Vec::new(),
        };
        for broker in 0..3 {
            std::fs::create_dir_all(wal_dir(broker)).expect("create wal dir");
            match spawn_broker(&config_path, broker, BASE_EPOCH, &wal_dir(broker), false) {
                Some(child) => cluster.children.push(child),
                None if attempt < 3 => continue 'retry,
                None => panic!("broker processes failed to start after {attempt} attempts"),
            }
        }
        break (cluster, endpoints);
    };

    // This process is the client process.  A short heartbeat makes the
    // survivors notice the kill quickly.
    let mut sys = common::builder(1)
        .build_tcp(
            NetConfig::new(endpoints.clone())
                .seed(5)
                .heartbeat(Duration::from_millis(100)),
        )
        .expect("client system builds");
    let consumer = sys.connect(CONSUMER, 0).expect("consumer connects");
    consumer
        .subscribe(&mut sys, common::parking_filter())
        .expect("subscribe");
    let producer = sys.connect(PRODUCER, 2).expect("producer connects");
    let now = sys.now();
    sys.run_until(now + SimDuration::from_millis(500));

    for i in 1..=MOVE_AFTER {
        producer.publish(&mut sys, vacancy(i)).expect("publish");
    }
    assert!(
        run_until_deliveries(&mut sys, MOVE_AFTER as usize, 60_000),
        "first half not delivered"
    );
    consumer.move_to(&mut sys, 1).expect("relocate");
    for i in MOVE_AFTER + 1..=KILL_AFTER {
        producer.publish(&mut sys, vacancy(i)).expect("publish");
    }
    assert!(
        run_until_deliveries(&mut sys, KILL_AFTER as usize, 60_000),
        "pre-kill publications not delivered"
    );

    // SIGKILL the old border broker.  The consumer has settled at broker 1,
    // so broker 0 is off the delivery path — but its links to the whole
    // cluster die mid-traffic, and only its write-ahead log survives.
    cluster.children[0].kill().expect("SIGKILL broker 0");
    let _ = cluster.children[0].wait();

    // Keep publishing while the broker is dead: the cluster must deliver
    // through the surviving route without a hiccup.
    for i in KILL_AFTER + 1..=PUBLICATIONS {
        producer.publish(&mut sys, vacancy(i)).expect("publish");
    }
    assert!(
        run_until_deliveries(&mut sys, PUBLICATIONS as usize, 60_000),
        "publications during the outage not delivered"
    );

    // Relaunch broker 0 from its surviving WAL, epoch bumped so its zombie
    // incarnation can never interleave with it.
    let relaunched = spawn_broker(&config_path, 0, RESTART_EPOCH, &wal_dir(0), true)
        .expect("broker 0 relaunches");
    cluster.children[0] = relaunched;

    // The scriptable recovery barrier: rebeca-ctl blocks until the
    // relaunched broker reports its bumped restart epoch and its recovered
    // WAL depth.
    let (ok, out) = ctl(
        &config_path,
        &[
            "wait",
            "--until",
            &format!("restart_epoch>={RESTART_EPOCH}"),
            "--broker",
            "0",
            "--deadline-ms",
            "30000",
        ],
    );
    assert!(ok, "ctl wait for restart epoch failed: {out}");
    assert!(out.contains("satisfies"), "wait reports the match: {out}");
    let (ok, out) = ctl(
        &config_path,
        &[
            "wait",
            "--until",
            "wal_depth>=1",
            "--broker",
            "0",
            "--deadline-ms",
            "30000",
        ],
    );
    assert!(ok, "ctl wait for recovered WAL failed: {out}");

    // The survivors noticed the death and healed their links: broker 1's
    // writer to broker 0 dropped, redialled with backoff, and came back up.
    let deadline = Instant::now() + Duration::from_secs(30);
    let link_back = loop {
        let report = rebeca_net::fetch_status(&endpoints[1], None, Duration::from_secs(5))
            .expect("broker 1 serves status");
        let link = report.brokers[0]
            .links
            .iter()
            .find(|l| l.peer == 0)
            .cloned();
        if link.as_ref().is_some_and(|l| l.connected) {
            break link.unwrap();
        }
        assert!(
            Instant::now() < deadline,
            "broker 1 never re-established its link to broker 0: {link:?}"
        );
        std::thread::sleep(Duration::from_millis(200));
    };
    assert!(
        link_back.redial_attempts >= 1,
        "the re-established link was redialled: {link_back:?}"
    );
    let journal = rebeca_net::fetch_status(&endpoints[1], Some(0), Duration::from_secs(5))
        .expect("broker 1 serves its journal");
    let kinds: Vec<&str> = journal.events.iter().map(|e| e.kind.as_str()).collect();
    assert!(kinds.contains(&"link.drop"), "drop journaled: {kinds:?}");
    assert!(
        kinds.contains(&"link.redial"),
        "redial journaled: {kinds:?}"
    );
    assert!(kinds.contains(&"link.up"), "re-up journaled: {kinds:?}");

    // Epoch fencing: a zombie connection claiming the pre-kill incarnation
    // of broker 0 (epoch 0 < BASE_EPOCH) is rejected by a survivor with the
    // epoch it expects instead.
    let expected = probe_zombie(&endpoints[1], 0, 0).expect("zombie hello is answered");
    assert!(
        expected >= BASE_EPOCH,
        "fence reports the superseding epoch, got {expected}"
    );
    let journal = rebeca_net::fetch_status(&endpoints[1], Some(0), Duration::from_secs(5))
        .expect("broker 1 serves its journal");
    assert!(
        journal.events.iter().any(|e| e.kind == "link.fenced"),
        "the rejection is journaled"
    );

    // The one acceptance criterion everything above serves: across a
    // process kill, an outage, and a recovery, the consumer saw every
    // publication exactly once, byte-identical to the simulator oracle.
    let log = sys.client_log(CONSUMER).unwrap().clone();
    assert_exactly_once(&log);
    assert_eq!(
        log,
        chaos_sim_oracle(),
        "chaos delivery log must be byte-identical to the SimDriver oracle"
    );

    drop(cluster);
    let _ = std::fs::remove_dir_all(&tmp);
}
