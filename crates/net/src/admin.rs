//! The admin client side of the status plane: dial a broker process, send
//! one [`Frame::StatusRequest`], read back its [`StatusReport`].
//!
//! This is what `rebeca-ctl` (and the integration tests) use; it needs no
//! `Hello` handshake and no node id — any process that can reach a broker's
//! listen endpoint can ask for status.  The serving side answers from its
//! event loop with live state (see `TcpDriver::status_report`), so a report
//! is a consistent snapshot of one scheduling instant.

use std::io::Read;
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use rebeca_obs::{StatusReport, TraceReport};

use crate::endpoint::Endpoint;
use crate::wire::{Frame, WireError};

/// Why a status fetch failed.
#[derive(Debug)]
pub enum AdminError {
    /// Dialling, writing or reading the socket failed (covers connection
    /// refusal and timeouts).
    Io(std::io::Error),
    /// The reply stream was corrupt.
    Wire(WireError),
    /// The connection closed before a report arrived.
    ConnectionClosed,
    /// The deadline elapsed before a complete report arrived.
    TimedOut,
}

impl std::fmt::Display for AdminError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdminError::Io(e) => write!(f, "status fetch i/o error: {e}"),
            AdminError::Wire(e) => write!(f, "status reply corrupt: {e}"),
            AdminError::ConnectionClosed => {
                write!(f, "connection closed before a status report arrived")
            }
            AdminError::TimedOut => write!(f, "timed out waiting for a status report"),
        }
    }
}

impl std::error::Error for AdminError {}

impl From<std::io::Error> for AdminError {
    fn from(e: std::io::Error) -> Self {
        AdminError::Io(e)
    }
}

/// Fetches a live [`StatusReport`] from the process listening on
/// `endpoint`, within `timeout` end to end (dial + request + reply).
///
/// `events_after` is the journal cursor: `Some(seq)` asks for the buffered
/// [`ObsEvent`](rebeca_obs::ObsEvent)s with sequence numbers strictly
/// greater than `seq` (pass `Some(0)` for "everything still buffered"),
/// `None` for a snapshot without events.
///
/// # Errors
///
/// Any dial/transport failure, a corrupt reply, or the deadline elapsing —
/// callers fanning out over a cluster treat an error as "that broker is
/// unreachable" and keep going.
pub fn fetch_status(
    endpoint: &Endpoint,
    events_after: Option<u64>,
    timeout: Duration,
) -> Result<StatusReport, AdminError> {
    let deadline = Instant::now() + timeout;
    let addr = endpoint.socket_addr()?;
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    let _ = stream.set_nodelay(true);
    stream.write_all(&Frame::StatusRequest { events_after }.encode_framed())?;
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut chunk = [0u8; 16 * 1024];
    loop {
        // Frames already buffered take priority over the deadline.
        loop {
            match Frame::decode_framed(&buf) {
                Ok((Frame::StatusReport(report), _)) => return Ok(report),
                Ok((_, used)) => {
                    // Not ours (a stray heartbeat, say) — skip it.
                    buf.drain(..used);
                }
                Err(WireError::Truncated) => break,
                Err(e) => return Err(AdminError::Wire(e)),
            }
        }
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(AdminError::TimedOut);
        }
        stream.set_read_timeout(Some(remaining))?;
        match stream.read(&mut chunk) {
            Ok(0) => return Err(AdminError::ConnectionClosed),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Err(AdminError::TimedOut);
            }
            Err(e) => return Err(AdminError::Io(e)),
        }
    }
}

/// Fetches the retained trace spans from the process listening on
/// `endpoint`, within `timeout` end to end (dial + request + reply).
///
/// `spans_after` is the span-buffer cursor: `Some(seq)` asks only for
/// spans with buffer sequence numbers strictly greater than `seq` (making
/// repeated polls resumable), `None` for everything still retained.
///
/// # Errors
///
/// Same surface as [`fetch_status`]: callers fanning out over a cluster
/// treat an error as "that broker is unreachable" and keep going.
pub fn fetch_trace(
    endpoint: &Endpoint,
    spans_after: Option<u64>,
    timeout: Duration,
) -> Result<TraceReport, AdminError> {
    let deadline = Instant::now() + timeout;
    let addr = endpoint.socket_addr()?;
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    let _ = stream.set_nodelay(true);
    stream.write_all(&Frame::TraceRequest { spans_after }.encode_framed())?;
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut chunk = [0u8; 16 * 1024];
    loop {
        loop {
            match Frame::decode_framed(&buf) {
                Ok((Frame::TraceReport(report), _)) => return Ok(report),
                Ok((_, used)) => {
                    buf.drain(..used);
                }
                Err(WireError::Truncated) => break,
                Err(e) => return Err(AdminError::Wire(e)),
            }
        }
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(AdminError::TimedOut);
        }
        stream.set_read_timeout(Some(remaining))?;
        match stream.read(&mut chunk) {
            Ok(0) => return Err(AdminError::ConnectionClosed),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Err(AdminError::TimedOut);
            }
            Err(e) => return Err(AdminError::Io(e)),
        }
    }
}
