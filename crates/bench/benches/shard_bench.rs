//! Benchmarks for the sharded, batch-parallel matching engine
//! (`rebeca-matcher`'s `ShardedFilterIndex` and the `match_batch` kernel)
//! against the single-thread, per-notification baseline of PR 1.
//!
//! The workload is the same city-scale subscription mix as
//! `matcher_bench.rs`, so numbers are comparable with
//! `BENCH_matcher.json`.  Three questions are measured:
//!
//! 1. **Single-notification latency** must not regress: the sharded walk at
//!    8 shards versus the sequential index (`shards/single/*`).
//! 2. **Batch throughput** is the headline: matching a 256-notification
//!    queue through `match_batch` (per-predicate lane masks, every posting
//!    list walked once per 64-lane chunk) versus calling `matching_keys`
//!    once per notification (`shards/batch/*`; per iteration = one whole
//!    queue).
//! 3. **Maintenance** stays cheap: building the 8-shard index at 100k
//!    subscriptions (`shards/maintenance/*`).
//!
//! `BENCH_shards.json` at the repository root is generated from this bench
//! (see the file header there for the command); `scripts/bench_gate.py`
//! regression-gates both files in CI.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rebeca_filter::{Constraint, Filter, Notification, Value};
use rebeca_matcher::{FilterIndex, ShardedFilterIndex};

/// Deterministic subscription mix: equality on service, numeric price
/// bounds, location sets — the constraint kinds brokers actually store
/// (identical to `matcher_bench.rs`).
fn subscription(i: u32) -> Filter {
    let service = ["parking", "weather", "traffic", "stock"][(i % 4) as usize];
    let mut f = Filter::new().with("service", Constraint::Eq(service.into()));
    match i % 3 {
        0 => {
            f = f.with("cost", Constraint::Lt(Value::Int((i % 40) as i64)));
        }
        1 => {
            f = f.with(
                "cost",
                Constraint::Between(
                    Value::Int((i % 20) as i64),
                    Value::Int((i % 20 + 10) as i64),
                ),
            );
        }
        _ => {}
    }
    if i.is_multiple_of(2) {
        f = f.with(
            "location",
            Constraint::any_location_of([i % 100, (i + 7) % 100]),
        );
    }
    f
}

fn notification(i: u32) -> Notification {
    let service = ["parking", "weather", "traffic", "stock"][(i % 4) as usize];
    Notification::builder()
        .attr("service", service)
        .attr("cost", (i % 45) as i64)
        .attr("location", Value::Location(i % 100))
        .attr("spot", i as i64)
        .build()
}

fn build_sequential(n: u32) -> FilterIndex<u32> {
    let mut index = FilterIndex::new();
    for i in 0..n {
        index.insert(i, &subscription(i));
    }
    index
}

fn build_sharded(n: u32, shards: usize) -> ShardedFilterIndex<u32> {
    let mut index = ShardedFilterIndex::with_shards(shards);
    for i in 0..n {
        index.insert(i, &subscription(i));
    }
    index
}

/// Size of the notification queue matched per batch iteration.
const BATCH: u32 = 256;

/// Single-notification matching latency: the sharded index must stay at the
/// sequential index's level (the counting walk is the same; only the
/// attribute→shard dispatch differs).
fn bench_single(c: &mut Criterion) {
    let mut group = c.benchmark_group("shards/single");
    for &n in &[10_000u32, 100_000] {
        let sequential = build_sequential(n);
        let sharded = build_sharded(n, 8);
        let notifications: Vec<Notification> = (0..64).map(notification).collect();
        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let n = &notifications[i % notifications.len()];
                i += 1;
                black_box(sequential.matching_keys(n).len())
            })
        });
        group.bench_with_input(BenchmarkId::new("sharded8", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let n = &notifications[i % notifications.len()];
                i += 1;
                black_box(sharded.matching_keys(n).len())
            })
        });
    }
    group.finish();
}

/// Batch throughput: one iteration matches the whole 256-notification
/// queue.  `per_notification_loop` is the PR 1 baseline (sequential index,
/// one `matching_keys` call per notification); `match_batch/*` run the
/// lane-mask kernel at 1 and 8 shards with auto worker fan-out.
fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("shards/batch");
    for &n in &[10_000u32, 100_000] {
        let sequential = build_sequential(n);
        let sharded1 = build_sharded(n, 1);
        let sharded8 = build_sharded(n, 8);
        let queue: Vec<Notification> = (0..BATCH).map(notification).collect();

        group.bench_with_input(BenchmarkId::new("per_notification_loop", n), &n, |b, _| {
            b.iter(|| {
                let mut matches = 0usize;
                for q in &queue {
                    matches += sequential.matching_keys(q).len();
                }
                black_box(matches)
            })
        });
        group.bench_with_input(BenchmarkId::new("match_batch_seq1", n), &n, |b, _| {
            b.iter(|| {
                let results = sequential.match_batch(&queue);
                black_box(results.iter().map(Vec::len).sum::<usize>())
            })
        });
        group.bench_with_input(BenchmarkId::new("match_batch_shards1", n), &n, |b, _| {
            b.iter(|| {
                let results = sharded1.match_batch(&queue);
                black_box(results.iter().map(Vec::len).sum::<usize>())
            })
        });
        group.bench_with_input(BenchmarkId::new("match_batch_shards8", n), &n, |b, _| {
            b.iter(|| {
                let results = sharded8.match_batch(&queue);
                black_box(results.iter().map(Vec::len).sum::<usize>())
            })
        });
    }
    group.finish();
}

/// Maintenance: building the sharded index from scratch at 100k
/// subscriptions (insert fan-out across shards).
fn bench_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("shards/maintenance");
    group.sample_size(10);
    group.bench_function("build_shards8/100000", |b| {
        b.iter(|| black_box(build_sharded(100_000, 8)).len())
    });
    let mut index = build_sharded(100_000, 8);
    let churn = subscription(123_457);
    group.bench_function("churn_shards8/100000", |b| {
        b.iter(|| {
            index.insert(u32::MAX, &churn);
            index.remove(&u32::MAX)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_single, bench_batch, bench_maintenance);
criterion_main!(benches);
