//! Simulated clients: scripted producers and consumers, including roaming
//! (physically mobile) and location-aware (logically mobile) ones.
//!
//! A [`ClientNode`] executes a script of [`ClientAction`]s at pre-arranged
//! virtual times (the experiment driver schedules one timer per action).  It
//! records every delivery in a [`ConsumerLog`], which the tests and the
//! experiment harness use to check the paper's quality-of-service
//! requirements (completeness, no duplicates, sender-FIFO order) and to
//! measure blackout periods.

use rebeca_broker::{ClientId, ConsumerLog, Delivery, Message, SubscriptionId};
use rebeca_filter::{Filter, LocationDependentFilter, Notification};
use rebeca_location::{AdaptivityPlan, LocationId, MovementGraph};
use rebeca_sim::{Context, Incoming, Node, NodeId, SimTime};

/// How a consumer reacts to its own movement through the location space.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalMobilityMode {
    /// Use the paper's location-dependent subscriptions: the middleware keeps
    /// the per-hop filters aligned (Section 5); the client only announces its
    /// new location.
    LocationDependent,
    /// The trivial baseline: the *application* reacts to each move by
    /// unsubscribing from the old location filter and subscribing to the new
    /// one with ordinary administration messages (Figure 3a — exhibits a
    /// blackout of about `2·t_d`).
    ManualSubUnsub {
        /// How many movement-graph hops around the current location the
        /// manually managed subscription covers.
        vicinity: usize,
    },
}

/// One scripted step of a client.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientAction {
    /// Attach to a border broker.
    Attach {
        /// The broker node to attach to.
        broker: NodeId,
    },
    /// Detach from the current border broker (explicit sign-off).  The
    /// broker keeps a virtual counterpart buffering for the client, so a
    /// later [`ClientAction::MoveTo`] resumes the stream without loss.
    Detach,
    /// Issue a plain (location-independent) subscription.
    Subscribe(Filter),
    /// Issue a time-aware subscription: like [`ClientAction::Subscribe`],
    /// but the border broker additionally replays retained publications
    /// with a timestamp at or after the given instant (micros), merged
    /// exactly once and in order with live traffic.  The client echoes the
    /// last delivery sequence number it received for this filter, exactly
    /// like a relocation re-subscription.
    SubscribeSince(Filter, u64),
    /// Retract a plain subscription.
    Unsubscribe(Filter),
    /// Advertise future publications.
    Advertise(Filter),
    /// Publish one notification.
    Publish(Notification),
    /// Publish a whole queue of notifications in one message; the border
    /// broker assigns consecutive sequence numbers and routes the queue
    /// through its batch matching path.
    PublishBatch(Vec<Notification>),
    /// Physically move to a different border broker using the paper's
    /// relocation protocol: the old broker observes the connection drop, the
    /// client re-subscribes at the new broker with the last received
    /// sequence number per subscription.
    MoveTo {
        /// The new border broker.
        broker: NodeId,
    },
    /// Physically move using the naive hand-off of Section 3.2 (no replay,
    /// no buffering): optionally sign off at the old broker, then subscribe
    /// from scratch at the new one.  Exhibits the lost/duplicated
    /// notifications of Figure 2.
    NaiveMoveTo {
        /// The new border broker.
        broker: NodeId,
        /// Whether the client manages to unsubscribe/detach at the old broker
        /// before leaving (often impossible in practice, as the paper notes).
        sign_off: bool,
    },
    /// Issue a location-dependent subscription (Section 5) with the given
    /// template, adaptivity plan and initial location.
    LocSubscribe {
        /// The subscription template (contains `myloc` markers).
        template: LocationDependentFilter,
        /// The adaptivity plan assigning uncertainty steps to hops.
        plan: AdaptivityPlan,
        /// The client's location at subscription time.
        location: LocationId,
    },
    /// Retract a previously issued location-dependent subscription, addressed
    /// by the order in which the client issued them (the first
    /// [`ClientAction::LocSubscribe`] has index 0).
    LocUnsubscribe {
        /// Index of the location-dependent subscription to retract.
        index: u32,
    },
    /// Announce a new location (logical mobility).  Behaviour depends on the
    /// client's [`LogicalMobilityMode`].
    SetLocation(LocationId),
}

/// A scripted client (producer, consumer, or both).
#[derive(Debug, Clone)]
pub struct ClientNode {
    id: ClientId,
    script: Vec<ClientAction>,
    mode: LogicalMobilityMode,
    movement_graph: MovementGraph,
    broker: Option<NodeId>,
    subscriptions: Vec<Filter>,
    loc_subs: Vec<(SubscriptionId, LocationDependentFilter, AdaptivityPlan)>,
    manual_loc_filter: Option<(LocationDependentFilter, Filter)>,
    location: Option<LocationId>,
    log: ConsumerLog,
    delivery_times: Vec<(SimTime, u64)>,
    /// Deliveries received since the last [`ClientNode::drain_deliveries`]
    /// call — the application-facing mailbox behind
    /// [`Session::poll_deliveries`](crate::Session::poll_deliveries).
    /// Only filled while `mailbox` is on (interactive clients): scripted
    /// clients never poll, and buffering for them would grow without bound.
    pending: Vec<Delivery>,
    mailbox: bool,
    published: u64,
    next_sub_index: u32,
}

impl ClientNode {
    /// Creates a client with the given identity, script and logical-mobility
    /// mode.  The movement graph is needed to instantiate `myloc` filters in
    /// the manual baseline mode (and mirrors the graph configured on the
    /// brokers).
    pub fn new(
        id: ClientId,
        script: Vec<ClientAction>,
        mode: LogicalMobilityMode,
        movement_graph: MovementGraph,
    ) -> Self {
        Self {
            id,
            script,
            mode,
            movement_graph,
            broker: None,
            subscriptions: Vec::new(),
            loc_subs: Vec::new(),
            manual_loc_filter: None,
            location: None,
            log: ConsumerLog::new(),
            delivery_times: Vec::new(),
            pending: Vec::new(),
            mailbox: false,
            published: 0,
            next_sub_index: 0,
        }
    }

    /// Turns the poll mailbox on: deliveries are additionally buffered until
    /// [`ClientNode::drain_deliveries`] collects them.  Enabled by the
    /// interactive [`Session`](crate::Session) path; scripted clients leave
    /// it off (they are read through [`ClientNode::log`]).
    pub fn enable_mailbox(&mut self) {
        self.mailbox = true;
    }

    /// Appends an action to the client's action queue and returns the timer
    /// tag that executes it.  The deployment facade schedules a timer with
    /// this tag — immediately for interactive [`Session`](crate::Session)
    /// operations, at the scripted virtual time for the scripted adapter
    /// (both paths replay through the same queue).
    pub fn enqueue(&mut self, action: ClientAction) -> u64 {
        self.script.push(action);
        (self.script.len() - 1) as u64
    }

    /// Drains every delivery received since the previous drain, in arrival
    /// order.
    pub fn drain_deliveries(&mut self) -> Vec<Delivery> {
        std::mem::take(&mut self.pending)
    }

    /// The client's identity.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Number of scripted actions.
    pub fn script_len(&self) -> usize {
        self.script.len()
    }

    /// The delivery log recorded so far.
    pub fn log(&self) -> &ConsumerLog {
        &self.log
    }

    /// Virtual arrival time and publisher sequence number of every delivery,
    /// in arrival order (used to measure blackout periods for Figure 3).
    pub fn delivery_times(&self) -> &[(SimTime, u64)] {
        &self.delivery_times
    }

    /// Number of notifications this client has published.
    pub fn published(&self) -> u64 {
        self.published
    }

    /// The broker the client is currently attached to.
    pub fn current_broker(&self) -> Option<NodeId> {
        self.broker
    }

    /// The client's current location (if it ever announced one).
    pub fn current_location(&self) -> Option<LocationId> {
        self.location
    }

    fn send_to_broker(&self, ctx: &mut Context<'_, Message>, message: Message) {
        if let Some(broker) = self.broker {
            ctx.send(broker, message);
        }
    }

    fn instantiate_manual(
        &self,
        template: &LocationDependentFilter,
        vicinity: usize,
        location: LocationId,
    ) -> Filter {
        let locations = self
            .movement_graph
            .ploc(location, vicinity)
            .into_iter()
            .map(|l| l.raw());
        template.instantiate(locations)
    }

    fn execute(&mut self, action: ClientAction, ctx: &mut Context<'_, Message>) {
        match action {
            ClientAction::Attach { broker } => {
                self.broker = Some(broker);
                ctx.send(broker, Message::Attach { client: self.id });
            }
            ClientAction::Detach => {
                if let Some(old) = self.broker.take() {
                    ctx.send(old, Message::Detach { client: self.id });
                }
            }
            ClientAction::Subscribe(filter) => {
                if !self.subscriptions.contains(&filter) {
                    self.subscriptions.push(filter.clone());
                }
                self.send_to_broker(
                    ctx,
                    Message::Subscribe {
                        subscriber: self.id,
                        filter,
                    },
                );
            }
            ClientAction::SubscribeSince(filter, since_micros) => {
                if !self.subscriptions.contains(&filter) {
                    self.subscriptions.push(filter.clone());
                }
                let last_seq = self.log.last_seq(&filter);
                self.send_to_broker(
                    ctx,
                    Message::SubscribeSince {
                        subscriber: self.id,
                        filter,
                        since_micros,
                        last_seq,
                    },
                );
            }
            ClientAction::Unsubscribe(filter) => {
                self.subscriptions.retain(|f| f != &filter);
                self.send_to_broker(
                    ctx,
                    Message::Unsubscribe {
                        subscriber: self.id,
                        filter,
                    },
                );
            }
            ClientAction::Advertise(filter) => {
                self.send_to_broker(
                    ctx,
                    Message::Advertise {
                        publisher: self.id,
                        filter,
                    },
                );
            }
            ClientAction::Publish(notification) => {
                self.published += 1;
                self.send_to_broker(
                    ctx,
                    Message::Publish {
                        publisher: self.id,
                        notification,
                    },
                );
            }
            ClientAction::PublishBatch(notifications) => {
                self.published += notifications.len() as u64;
                self.send_to_broker(
                    ctx,
                    Message::PublishBatch {
                        publisher: self.id,
                        notifications,
                    },
                );
            }
            ClientAction::MoveTo { broker } => {
                // The old border broker observes the connection drop (it is
                // not an application-level sign-off) and starts buffering.
                if let Some(old) = self.broker {
                    ctx.send(old, Message::Detach { client: self.id });
                }
                self.broker = Some(broker);
                // Reactive re-subscription at the new broker with the last
                // received sequence number per subscription.
                for filter in self.subscriptions.clone() {
                    let last_seq = self.log.last_seq(&filter);
                    ctx.metrics().incr("client.resubscribe");
                    ctx.send(
                        broker,
                        Message::ReSubscribe {
                            client: self.id,
                            filter,
                            last_seq,
                        },
                    );
                }
                // Integration of logical and physical mobility (sketched as
                // future work in the paper's conclusion): location-dependent
                // subscriptions are re-issued at the new border broker so the
                // client keeps receiving location-relevant notifications
                // after roaming.  Buffering/replay does not apply to them.
                if let Some(location) = self.location {
                    for (sub_id, template, plan) in self.loc_subs.clone() {
                        ctx.metrics().incr("client.loc_resubscribe");
                        ctx.send(
                            broker,
                            Message::LocSubscribe {
                                sub_id,
                                template,
                                plan,
                                location,
                                hop: 0,
                            },
                        );
                    }
                }
            }
            ClientAction::NaiveMoveTo { broker, sign_off } => {
                if sign_off {
                    if let Some(old) = self.broker {
                        for filter in self.subscriptions.clone() {
                            ctx.send(
                                old,
                                Message::Unsubscribe {
                                    subscriber: self.id,
                                    filter,
                                },
                            );
                        }
                        ctx.send(old, Message::Detach { client: self.id });
                    }
                }
                self.broker = Some(broker);
                ctx.send(broker, Message::Attach { client: self.id });
                for filter in self.subscriptions.clone() {
                    ctx.send(
                        broker,
                        Message::Subscribe {
                            subscriber: self.id,
                            filter,
                        },
                    );
                }
            }
            ClientAction::LocSubscribe {
                template,
                plan,
                location,
            } => {
                self.location = Some(location);
                match self.mode.clone() {
                    LogicalMobilityMode::LocationDependent => {
                        let sub_id = SubscriptionId::new(self.id, self.next_sub_index);
                        self.next_sub_index += 1;
                        self.loc_subs.push((sub_id, template.clone(), plan.clone()));
                        self.send_to_broker(
                            ctx,
                            Message::LocSubscribe {
                                sub_id,
                                template,
                                plan,
                                location,
                                hop: 0,
                            },
                        );
                    }
                    LogicalMobilityMode::ManualSubUnsub { vicinity } => {
                        let filter = self.instantiate_manual(&template, vicinity, location);
                        self.manual_loc_filter = Some((template, filter.clone()));
                        if !self.subscriptions.contains(&filter) {
                            self.subscriptions.push(filter.clone());
                        }
                        self.send_to_broker(
                            ctx,
                            Message::Subscribe {
                                subscriber: self.id,
                                filter,
                            },
                        );
                    }
                }
            }
            ClientAction::LocUnsubscribe { index } => {
                let sub_id = SubscriptionId::new(self.id, index);
                if let Some(pos) = self.loc_subs.iter().position(|(id, _, _)| *id == sub_id) {
                    self.loc_subs.remove(pos);
                    self.send_to_broker(ctx, Message::LocUnsubscribe { sub_id });
                } else if let LogicalMobilityMode::ManualSubUnsub { .. } = self.mode {
                    // In the manual baseline the "location-dependent"
                    // subscription is an ordinary filter; retract that.
                    if let Some((_, filter)) = self.manual_loc_filter.take() {
                        self.subscriptions.retain(|f| f != &filter);
                        self.send_to_broker(
                            ctx,
                            Message::Unsubscribe {
                                subscriber: self.id,
                                filter,
                            },
                        );
                    }
                }
            }
            ClientAction::SetLocation(location) => {
                self.location = Some(location);
                match self.mode.clone() {
                    LogicalMobilityMode::LocationDependent => {
                        for (sub_id, _, _) in self.loc_subs.clone() {
                            ctx.metrics().incr("client.location_update");
                            self.send_to_broker(
                                ctx,
                                Message::LocationUpdate {
                                    sub_id,
                                    location,
                                    hop: 0,
                                },
                            );
                        }
                    }
                    LogicalMobilityMode::ManualSubUnsub { vicinity } => {
                        if let Some((template, old_filter)) = self.manual_loc_filter.clone() {
                            let new_filter = self.instantiate_manual(&template, vicinity, location);
                            if new_filter != old_filter {
                                self.subscriptions.retain(|f| f != &old_filter);
                                if !self.subscriptions.contains(&new_filter) {
                                    self.subscriptions.push(new_filter.clone());
                                }
                                ctx.metrics().incr("client.manual_resubscribe");
                                self.send_to_broker(
                                    ctx,
                                    Message::Unsubscribe {
                                        subscriber: self.id,
                                        filter: old_filter,
                                    },
                                );
                                self.send_to_broker(
                                    ctx,
                                    Message::Subscribe {
                                        subscriber: self.id,
                                        filter: new_filter.clone(),
                                    },
                                );
                                self.manual_loc_filter = Some((template, new_filter));
                            }
                        }
                    }
                }
            }
        }
    }
}

impl Node for ClientNode {
    type Message = Message;

    fn handle(&mut self, ctx: &mut Context<'_, Message>, event: Incoming<Message>) {
        match event {
            Incoming::Timer { tag } => {
                if let Some(action) = self.script.get(tag as usize).cloned() {
                    self.execute(action, ctx);
                }
            }
            Incoming::Message { message, .. } => match message {
                Message::Deliver(delivery) => {
                    ctx.metrics().incr("client.delivered");
                    self.delivery_times
                        .push((ctx.now(), delivery.envelope.publisher_seq));
                    if self.mailbox {
                        self.pending.push(delivery.clone());
                    }
                    self.log.record(delivery);
                }
                Message::DeliverBatch(deliveries) => {
                    // A counterpart replay (or merged holding flush) arriving
                    // as one batch message: record each delivery in order.
                    for delivery in deliveries {
                        ctx.metrics().incr("client.delivered");
                        self.delivery_times
                            .push((ctx.now(), delivery.envelope.publisher_seq));
                        if self.mailbox {
                            self.pending.push(delivery.clone());
                        }
                        self.log.record(delivery);
                    }
                }
                _ => {}
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebeca_broker::{Delivery, Envelope};
    use rebeca_filter::Constraint;
    use rebeca_sim::{DelayModel, Network};

    fn parking() -> Filter {
        Filter::new().with("service", Constraint::Eq("parking".into()))
    }

    /// A trivial sink node standing in for a broker in client-only tests.
    #[derive(Default)]
    struct Sink {
        received: Vec<Message>,
    }
    impl Node for Sink {
        type Message = Message;
        fn handle(&mut self, _ctx: &mut Context<'_, Message>, event: Incoming<Message>) {
            if let Incoming::Message { message, .. } = event {
                self.received.push(message);
            }
        }
    }

    /// Wrapper so a network can host both clients and sinks.
    #[allow(clippy::large_enum_variant)]
    enum TestNode {
        Client(ClientNode),
        Sink(Sink),
    }
    impl Node for TestNode {
        type Message = Message;
        fn handle(&mut self, ctx: &mut Context<'_, Message>, event: Incoming<Message>) {
            match self {
                TestNode::Client(c) => c.handle(ctx, event),
                TestNode::Sink(s) => s.handle(ctx, event),
            }
        }
    }

    fn run_script(script: Vec<ClientAction>) -> (Vec<Message>, ClientNode) {
        let mut net: Network<TestNode> = Network::new(1);
        let broker = net.add_node(TestNode::Sink(Sink::default()));
        let client_node = ClientNode::new(
            ClientId::new(1),
            script.clone(),
            LogicalMobilityMode::LocationDependent,
            MovementGraph::paper_example(),
        );
        let client = net.add_node(TestNode::Client(client_node));
        net.connect(broker, client, DelayModel::constant_millis(1));
        for (i, _) in script.iter().enumerate() {
            net.schedule_timer(
                client,
                rebeca_sim::SimDuration::from_millis(i as u64 + 1),
                i as u64,
            );
        }
        net.run(10_000);
        let received = match net.node(broker) {
            TestNode::Sink(s) => s.received.clone(),
            _ => unreachable!(),
        };
        let client_state = match net.node(client) {
            TestNode::Client(c) => c.clone(),
            _ => unreachable!(),
        };
        (received, client_state)
    }

    #[test]
    fn attach_subscribe_publish_reach_the_broker_in_order() {
        let script = vec![
            ClientAction::Attach { broker: NodeId(0) },
            ClientAction::Subscribe(parking()),
            ClientAction::Publish(Notification::builder().attr("service", "parking").build()),
        ];
        let (received, client) = run_script(script);
        assert_eq!(received.len(), 3);
        assert!(matches!(received[0], Message::Attach { .. }));
        assert!(matches!(received[1], Message::Subscribe { .. }));
        assert!(matches!(received[2], Message::Publish { .. }));
        assert_eq!(client.published(), 1);
        assert_eq!(client.current_broker(), Some(NodeId(0)));
    }

    #[test]
    fn loc_subscribe_sends_the_template_with_hop_zero() {
        let template = LocationDependentFilter::new("location", 0);
        let plan = AdaptivityPlan::one_step_per_hop(3);
        let script = vec![
            ClientAction::Attach { broker: NodeId(0) },
            ClientAction::LocSubscribe {
                template,
                plan,
                location: LocationId(0),
            },
            ClientAction::SetLocation(LocationId(1)),
        ];
        let (received, client) = run_script(script);
        assert!(matches!(received[1], Message::LocSubscribe { hop: 0, .. }));
        assert!(matches!(
            received[2],
            Message::LocationUpdate {
                hop: 0,
                location: LocationId(1),
                ..
            }
        ));
        assert_eq!(client.current_location(), Some(LocationId(1)));
    }

    #[test]
    fn manual_mode_reacts_to_moves_with_unsub_and_sub() {
        let template = LocationDependentFilter::new("location", 0)
            .with_concrete("service", Constraint::Eq("parking".into()));
        let script = vec![
            ClientAction::Attach { broker: NodeId(0) },
            ClientAction::LocSubscribe {
                template,
                plan: AdaptivityPlan::global_sub_unsub(3),
                location: LocationId(0),
            },
            ClientAction::SetLocation(LocationId(1)),
        ];
        let mut net: Network<TestNode> = Network::new(1);
        let broker = net.add_node(TestNode::Sink(Sink::default()));
        let client_node = ClientNode::new(
            ClientId::new(1),
            script.clone(),
            LogicalMobilityMode::ManualSubUnsub { vicinity: 0 },
            MovementGraph::paper_example(),
        );
        let client = net.add_node(TestNode::Client(client_node));
        net.connect(broker, client, DelayModel::constant_millis(1));
        for (i, _) in script.iter().enumerate() {
            net.schedule_timer(
                client,
                rebeca_sim::SimDuration::from_millis(i as u64 + 1),
                i as u64,
            );
        }
        net.run(10_000);
        let received = match net.node(broker) {
            TestNode::Sink(s) => s.received.clone(),
            _ => unreachable!(),
        };
        // Attach, Subscribe (initial), Unsubscribe(old), Subscribe(new).
        assert_eq!(received.len(), 4);
        assert!(matches!(received[1], Message::Subscribe { .. }));
        assert!(matches!(received[2], Message::Unsubscribe { .. }));
        assert!(matches!(received[3], Message::Subscribe { .. }));
    }

    #[test]
    fn move_to_re_subscribes_with_the_last_sequence_number() {
        let script = vec![
            ClientAction::Attach { broker: NodeId(0) },
            ClientAction::Subscribe(parking()),
            ClientAction::MoveTo { broker: NodeId(0) },
        ];
        let (received, _) = run_script(script);
        // Attach, Subscribe, Detach (old broker), ReSubscribe (new broker —
        // same sink here).
        assert_eq!(received.len(), 4);
        assert!(matches!(received[2], Message::Detach { .. }));
        assert!(
            matches!(received[3], Message::ReSubscribe { last_seq: 0, .. }),
            "no deliveries were received, so the echoed sequence number is 0"
        );
    }

    #[test]
    fn naive_move_without_sign_off_does_not_detach() {
        let script = vec![
            ClientAction::Attach { broker: NodeId(0) },
            ClientAction::Subscribe(parking()),
            ClientAction::NaiveMoveTo {
                broker: NodeId(0),
                sign_off: false,
            },
        ];
        let (received, _) = run_script(script);
        // Attach, Subscribe, Attach (new), Subscribe (new) — no Detach, no
        // Unsubscribe.
        assert_eq!(received.len(), 4);
        assert!(received
            .iter()
            .all(|m| !matches!(m, Message::Detach { .. })));
        assert!(received
            .iter()
            .all(|m| !matches!(m, Message::Unsubscribe { .. })));
    }

    #[test]
    fn deliveries_are_logged_with_arrival_times() {
        let mut client = ClientNode::new(
            ClientId::new(1),
            Vec::new(),
            LogicalMobilityMode::LocationDependent,
            MovementGraph::paper_example(),
        );
        // Feed a delivery directly through the Node interface using a tiny
        // network so a Context exists.
        let mut net: Network<TestNode> = Network::new(1);
        let sink = net.add_node(TestNode::Sink(Sink::default()));
        client.broker = Some(sink);
        let c = net.add_node(TestNode::Client(client));
        net.connect(sink, c, DelayModel::constant_millis(1));
        net.inject(
            c,
            Message::Deliver(Delivery {
                subscriber: ClientId::new(1),
                filter: parking(),
                seq: 1,
                envelope: Envelope::new(
                    ClientId::new(9),
                    1,
                    Notification::builder().attr("service", "parking").build(),
                ),
            }),
        );
        net.run(10);
        let client_state = match net.node(c) {
            TestNode::Client(cl) => cl.clone(),
            _ => unreachable!(),
        };
        assert_eq!(client_state.log().len(), 1);
        assert_eq!(client_state.delivery_times().len(), 1);
        assert!(client_state.log().is_clean());
    }
}
