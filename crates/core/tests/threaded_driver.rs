//! Wall-clock smoke tests for the `ThreadedDriver`: the identical protocol
//! code that runs on the discrete-event simulator runs on real threads,
//! channels and `Instant` timers — and keeps the paper's delivery
//! guarantees across a relocation.
//!
//! These tests sleep real milliseconds by construction; they are sized to
//! finish in well under a second each.

use rebeca_broker::ClientId;
use rebeca_core::SystemBuilder;
use rebeca_filter::{Constraint, Filter, Notification};
use rebeca_sim::{DelayModel, SimTime, Topology};

fn telemetry() -> Filter {
    Filter::new().with("service", Constraint::Eq("telemetry".into()))
}

fn reading(i: i64) -> Notification {
    Notification::builder()
        .attr("service", "telemetry")
        .attr("reading", i)
        .build()
}

/// Clean, complete, exactly-once delivery across a mid-run relocation in
/// wall-clock mode.
#[test]
fn relocation_is_lossless_on_the_wall_clock() {
    let mut sys = SystemBuilder::new(&Topology::line(3))
        .link_delay(DelayModel::constant_millis(1))
        .seed(3)
        .build_threaded()
        .expect("non-empty topology");

    let consumer = sys.connect(ClientId::new(1), 0).unwrap();
    consumer.subscribe(&mut sys, telemetry()).unwrap();
    let producer = sys.connect(ClientId::new(2), 2).unwrap();
    sys.run_until(SimTime::from_millis(30));

    // First half of the stream at the original broker.
    for i in 1..=10i64 {
        producer.publish(&mut sys, reading(i)).unwrap();
        sys.run_until(SimTime::from_millis(30 + i as u64 * 5));
    }
    // Quiet point, then relocate to the middle broker.
    sys.run_until(SimTime::from_millis(120));
    consumer.move_to(&mut sys, 1).unwrap();
    sys.run_until(SimTime::from_millis(170));

    // Second half after the relocation.
    for i in 11..=20i64 {
        producer.publish(&mut sys, reading(i)).unwrap();
        sys.run_until(SimTime::from_millis(170 + (i as u64 - 10) * 5));
    }
    // Generous drain window for scheduling jitter.
    sys.run_until(SimTime::from_millis(500));

    let log = sys.client_log(consumer.client()).unwrap();
    assert!(log.is_clean(), "violations: {:?}", log.violations());
    assert_eq!(
        log.distinct_publisher_seqs(producer.client()),
        (1..=20).collect::<Vec<u64>>(),
        "every reading must arrive exactly once across the wall-clock relocation"
    );
    assert!(sys.total_messages() > 0);
    assert!(sys.now() >= SimTime::from_millis(500));
}

/// The mailbox polls incrementally between wall-clock phases, and the
/// metrics merged from the worker threads count the deliveries.
#[test]
fn mailbox_and_metrics_work_between_phases() {
    let mut sys = SystemBuilder::new(&Topology::line(2))
        .link_delay(DelayModel::constant_millis(1))
        .seed(5)
        .build_threaded()
        .unwrap();

    let consumer = sys.connect(ClientId::new(1), 0).unwrap();
    consumer.subscribe(&mut sys, telemetry()).unwrap();
    let producer = sys.connect(ClientId::new(2), 1).unwrap();
    sys.run_until(SimTime::from_millis(20));

    producer.publish(&mut sys, reading(1)).unwrap();
    sys.run_until(SimTime::from_millis(60));
    let first = consumer.poll_deliveries(&mut sys).unwrap();
    assert_eq!(first.len(), 1);

    producer.publish(&mut sys, reading(2)).unwrap();
    sys.run_until(SimTime::from_millis(100));
    let second = consumer.poll_deliveries(&mut sys).unwrap();
    assert_eq!(second.len(), 1);
    assert_eq!(second[0].envelope.publisher_seq, 2);

    assert_eq!(sys.metrics().counter("client.delivered"), 2);
    assert!(consumer.poll_deliveries(&mut sys).unwrap().is_empty());
}
