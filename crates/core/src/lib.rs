//! Mobility support for content-based publish/subscribe — the primary
//! contribution of *"Supporting Mobility in Content-Based Publish/Subscribe
//! Middleware"* (Fiege, Gärtner, Kasten, Zeidler — Middleware 2003),
//! reimplemented on top of the Rebeca-style substrate crates of this
//! workspace.
//!
//! # What this crate provides
//!
//! * [`MobileBroker`] — a Rebeca broker extended with
//!   * the **physical-mobility relocation protocol** of Section 4 (virtual
//!     counterparts buffering deliveries for disconnected clients, reactive
//!     re-subscription with the last received sequence number, junction
//!     detection, fetch/replay along the re-pointed old path, in-order merge
//!     at the new border broker, garbage collection at the old one), and
//!   * **location-dependent subscriptions** of Section 5 (`myloc` templates
//!     instantiated per hop from `ploc(location, q)` according to an
//!     [`AdaptivityPlan`](rebeca_location::AdaptivityPlan), plus the
//!     location-update protocol that swaps those filters when the client
//!     moves).
//! * [`MobilitySystem`] + [`SystemBuilder`] — the deployment facade: builds
//!   a broker network from a [`Topology`](rebeca_sim::Topology) on a sans-IO
//!   [`Driver`] and runs it.  Clients are driven **interactively** through
//!   [`Session`] handles (subscribe/publish/move/poll, interleaved with
//!   [`MobilitySystem::run_until`]) or through pre-arranged scripts
//!   ([`ClientNode`], a thin adapter over the session machinery).
//! * Two [`Driver`] implementations: [`SimDriver`] (the deterministic
//!   discrete-event testbed) and [`ThreadedDriver`] (wall clock, one thread
//!   per node, std channels — the first deployment mode without the
//!   simulator, and the template for real network transports).
//!
//! # Quick start
//!
//! ```
//! use rebeca_broker::ClientId;
//! use rebeca_core::SystemBuilder;
//! use rebeca_filter::{Constraint, Filter, Notification};
//! use rebeca_sim::{DelayModel, SimTime, Topology};
//!
//! # fn main() -> Result<(), rebeca_core::RebecaError> {
//! // Three brokers in a line; a consumer at broker 0, a producer at broker 2.
//! let mut system = SystemBuilder::new(&Topology::line(3))
//!     .link_delay(DelayModel::constant_millis(5))
//!     .seed(42)
//!     .build()?;
//!
//! let consumer = system.connect(ClientId::new(1), 0)?;
//! consumer.subscribe(
//!     &mut system,
//!     Filter::new().with("service", Constraint::Eq("parking".into())),
//! )?;
//! let producer = system.connect(ClientId::new(2), 2)?;
//! system.run_until(SimTime::from_millis(50));
//!
//! producer.publish(
//!     &mut system,
//!     Notification::builder().attr("service", "parking").build(),
//! )?;
//! system.run_until(SimTime::from_secs(1));
//!
//! assert_eq!(consumer.poll_deliveries(&mut system)?.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod driver;
pub mod driver_util;
mod error;
mod mobile_broker;
mod session;
mod system;
mod threaded;

pub use client::{ClientAction, ClientNode, LogicalMobilityMode};
pub use driver::{Driver, SimDriver};
pub use error::RebecaError;
pub use mobile_broker::{BrokerConfig, MobileBroker, HANDOFF_LATENCY_HISTOGRAM};
pub use rebeca_obs::{BrokerStatus, LinkStatus, ObsEvent, StatusReport};
pub use session::Session;
pub use system::{MobilitySystem, SystemBuilder, SystemNode};
pub use threaded::ThreadedDriver;

// Re-exported so deployments can configure durability and inspect relocation
// phases without depending on `rebeca-mobility` directly.
pub use rebeca_mobility::{
    HandoffLog, LogBackend, MemoryBackend, PersistenceConfig, RelocationMachine, RelocationPhase,
};

// Re-exported so deployments can configure retention (and inspect the
// store's policy) without depending on `rebeca-retain` directly.
pub use rebeca_retain::{RetentionConfig, RetentionStore};
