//! Criterion benchmarks for the routing engine: subscription handling and the
//! routing decision under the different strategies of Section 2.2.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rebeca_filter::{Constraint, Filter, Notification, Value};
use rebeca_routing::{RoutingEngine, RoutingStrategyKind};

fn sub(i: u32) -> Filter {
    Filter::new()
        .with("service", Constraint::Eq("parking".into()))
        .with("location", Constraint::any_location_of([i % 64]))
}

fn notification(i: u32) -> Notification {
    Notification::builder()
        .attr("service", "parking")
        .attr("location", Value::Location(i % 64))
        .build()
}

fn bench_subscription_handling(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing/subscribe_1000");
    for strategy in [
        RoutingStrategyKind::Simple,
        RoutingStrategyKind::Identity,
        RoutingStrategyKind::Covering,
        RoutingStrategyKind::Merging,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &strategy,
            |b, &strategy| {
                let links: Vec<u32> = (0..8).collect();
                b.iter(|| {
                    let mut engine: RoutingEngine<u32> = RoutingEngine::new(strategy);
                    for i in 0..1000u32 {
                        engine.handle_subscribe(sub(i), i % 8, &links);
                    }
                    black_box(engine.table_size())
                })
            },
        );
    }
    group.finish();
}

fn bench_routing_decision(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing/route");
    let links: Vec<u32> = (0..8).collect();
    for strategy in [
        RoutingStrategyKind::Flooding,
        RoutingStrategyKind::Simple,
        RoutingStrategyKind::Covering,
    ] {
        let mut engine: RoutingEngine<u32> = RoutingEngine::new(strategy);
        for i in 0..1000u32 {
            engine.handle_subscribe(sub(i), i % 8, &links);
        }
        let n = notification(17);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &strategy,
            |b, _| b.iter(|| black_box(engine.route(black_box(&n), None, &links))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_subscription_handling, bench_routing_decision);
criterion_main!(benches);
