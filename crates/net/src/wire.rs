//! The TCP wire format: length-prefixed, checksummed frames carrying the
//! full [`Message`] vocabulary plus a connection handshake and heartbeats.
//!
//! # Frame layout
//!
//! Every frame uses the same framing discipline as the mobility WAL
//! (`rebeca_mobility::codec`):
//!
//! ```text
//! ┌─────────────┬───────────────┬────────────────────┐
//! │ len: u32 LE │ crc32: u32 LE │ payload (len bytes)│
//! └─────────────┴───────────────┴────────────────────┘
//! ```
//!
//! `crc32` is the IEEE CRC-32 of the payload.  The payload starts with a
//! one-byte frame kind:
//!
//! | kind | frame           | contents                                          |
//! |------|-----------------|---------------------------------------------------|
//! | 1    | `Hello`         | from, to, epoch, listen endpoint, link delay model |
//! | 2    | `Heartbeat`     | epoch                                             |
//! | 3    | `Message`       | from, to, sampled delay, seq, encoded [`Message`] |
//! | 4    | `StatusRequest` | optional journal cursor (`events_after`)          |
//! | 5    | `StatusReport`  | encoded [`StatusReport`] snapshot                 |
//! | 6    | `Ack`           | cumulative receive high-water mark (`seq`)        |
//! | 7    | `Fenced`        | the rejected dialer's expected minimum epoch      |
//! | 8    | `LinkDrop`      | admin fault injection: peer whose links to drop   |
//! | 9    | `TraceRequest`  | optional span cursor (`spans_after`)              |
//! | 10   | `TraceReport`   | encoded [`TraceReport`] span-buffer snapshot      |
//!
//! A connection's first frame is always the [`Frame::Hello`] handshake: it
//! names the sending node, the node the connection feeds, the sender's
//! restart epoch, the listen endpoint a reverse connection can dial back,
//! and the link's delay model.  [`Frame::Heartbeat`]s flow whenever a
//! writer has been idle for the configured interval, keeping NATs and
//! liveness checks happy.
//!
//! # Self-healing links
//!
//! [`Frame::Message`] carries a per-direction monotonic sequence number
//! (`seq`, starting at 1; 0 means "unsequenced" and is skipped by the
//! resend machinery).  The reader acknowledges progress with cumulative
//! [`Frame::Ack`] frames written back onto the same connection; the writer
//! keeps the unacknowledged suffix and replays it after a reconnect, while
//! the reader drops any sequence number at or below its high-water mark —
//! preserving the error-free FIFO link contract of the paper's Section 2.1
//! across connection generations.  [`Frame::Fenced`] is the reader's
//! rejection of a `Hello` carrying a stale restart epoch: a crashed
//! broker's zombie incarnation can never interleave with its successor.
//!
//! # Robustness
//!
//! Decoding is *total*: truncated frames, flipped bits, absurd length
//! prefixes and unknown tags all surface as a typed [`WireError`], never as
//! a panic — mirroring the WAL-corruption guarantees of `rebeca-mobility`
//! (and covered by the same style of corruption tests).

use std::fmt;

use rebeca_broker::{ClientId, Message, SubscriptionId};
use rebeca_filter::{Filter, LocationDependentFilter, TemplateConstraint};
use rebeca_location::{AdaptivityPlan, LocationId};
use rebeca_mobility::codec::{
    crc32, put_delivery, put_envelope, put_filter, put_node, put_notification, put_str, put_u16,
    put_u32, put_u64, put_u8, ByteReader, DecodeError,
};
use rebeca_obs::{
    BrokerStatus, Histogram, LinkStatus, ObsEvent, SpanRecord, StatusReport, TraceReport,
};
use rebeca_sim::{DelayModel, NodeId};

use crate::endpoint::Endpoint;

/// Upper bound on the payload length of a single frame (32 MiB): a header
/// claiming more is treated as corruption instead of an allocation request.
pub const MAX_FRAME_LEN: u32 = 32 * 1024 * 1024;

/// Size of the frame header (`len` + `crc32`).
pub const FRAME_HEADER_LEN: usize = 8;

const KIND_HELLO: u8 = 1;
const KIND_HEARTBEAT: u8 = 2;
const KIND_MESSAGE: u8 = 3;
const KIND_STATUS_REQUEST: u8 = 4;
const KIND_STATUS_REPORT: u8 = 5;
const KIND_ACK: u8 = 6;
const KIND_FENCED: u8 = 7;
const KIND_LINK_DROP: u8 = 8;
const KIND_TRACE_REQUEST: u8 = 9;
const KIND_TRACE_REPORT: u8 = 10;

const MSG_ATTACH: u8 = 1;
const MSG_DETACH: u8 = 2;
const MSG_PUBLISH: u8 = 3;
const MSG_PUBLISH_BATCH: u8 = 4;
const MSG_NOTIFICATION: u8 = 5;
const MSG_NOTIFICATION_BATCH: u8 = 6;
const MSG_SUBSCRIBE: u8 = 7;
const MSG_UNSUBSCRIBE: u8 = 8;
const MSG_ADVERTISE: u8 = 9;
const MSG_UNADVERTISE: u8 = 10;
const MSG_DELIVER: u8 = 11;
const MSG_DELIVER_BATCH: u8 = 12;
const MSG_RESUBSCRIBE: u8 = 13;
const MSG_RELOCATE: u8 = 14;
const MSG_FETCH: u8 = 15;
const MSG_REPLAY: u8 = 16;
const MSG_LOC_SUBSCRIBE: u8 = 17;
const MSG_LOC_UNSUBSCRIBE: u8 = 18;
const MSG_LOCATION_UPDATE: u8 = 19;
const MSG_SUBSCRIBE_SINCE: u8 = 20;
const MSG_HISTORY_FETCH: u8 = 21;
const MSG_HISTORY_REPLAY: u8 = 22;

/// A decoding failure of the wire format.  Every malformed input maps to
/// one of these variants; decoding never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ends before the frame (header or payload) is complete.
    Truncated,
    /// The header's length prefix exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// The claimed payload length.
        len: u32,
    },
    /// The payload's CRC-32 does not match the header.
    Checksum {
        /// Checksum claimed by the header.
        expected: u32,
        /// Checksum computed over the received payload.
        found: u32,
    },
    /// The payload's frame kind byte is unknown.
    UnknownFrameKind(u8),
    /// A structural problem inside the payload (unknown tag, bad UTF-8,
    /// inner truncation).
    Malformed,
    /// The payload decoded cleanly but left unconsumed bytes.
    TrailingBytes {
        /// Number of bytes left over.
        extra: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::FrameTooLarge { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN} limit")
            }
            WireError::Checksum { expected, found } => {
                write!(
                    f,
                    "frame checksum mismatch (header {expected:#010x}, payload {found:#010x})"
                )
            }
            WireError::UnknownFrameKind(kind) => write!(f, "unknown frame kind {kind}"),
            WireError::Malformed => write!(f, "malformed frame payload"),
            WireError::TrailingBytes { extra } => {
                write!(f, "frame payload has {extra} trailing bytes")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<DecodeError> for WireError {
    fn from(_: DecodeError) -> Self {
        WireError::Malformed
    }
}

/// One unit of the TCP wire protocol.  See the module docs for the layout.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Connection handshake, always the first frame on a connection: the
    /// sending node, the local node the connection feeds, the sender's
    /// restart epoch, the endpoint a reverse connection can dial back, and
    /// the delay model of the link.
    Hello {
        /// The dialing node.
        from: NodeId,
        /// The node on the accepting side this connection feeds.
        to: NodeId,
        /// The dialer's restart epoch (for future epoch fencing).
        epoch: u64,
        /// Where the dialer's process listens (for reverse connections).
        listen: Endpoint,
        /// The link's delay model, so the accepting side samples the same
        /// distribution for its own sends back over this link.
        delay: DelayModel,
    },
    /// Liveness beacon sent by an idle writer.
    Heartbeat {
        /// The sender's restart epoch.
        epoch: u64,
    },
    /// One routed protocol message.
    Message {
        /// The sending node.
        from: NodeId,
        /// The destination node.
        to: NodeId,
        /// The link delay sampled by the sender, applied by the receiver on
        /// top of the real network latency (clamped per direction to keep
        /// the link FIFO).
        delay_micros: u64,
        /// Per-direction monotonic sequence number assigned by the writer
        /// thread (starting at 1).  `0` marks an unsequenced frame: it
        /// bypasses the resend window and duplicate suppression.
        seq: u64,
        /// The protocol message.
        message: Message,
    },
    /// Cumulative acknowledgement written by a reader back onto the
    /// connection it serves: every sequenced [`Frame::Message`] with
    /// `seq <= ack` has been received, so the writer may drop it from its
    /// resend window.
    Ack {
        /// The reader's receive high-water mark for this direction.
        seq: u64,
    },
    /// Epoch fencing rejection: the reader refused a [`Frame::Hello`] (or
    /// tore down an established connection) because the peer's restart
    /// epoch regressed below the newest epoch it has seen from that node.
    Fenced {
        /// The minimum epoch the reader will accept from this node.
        expected: u64,
    },
    /// Admin fault injection, sent on a hello-less connection like
    /// [`Frame::StatusRequest`]: the serving driver force-drops its
    /// established connections towards `peer`, exercising the reconnect
    /// path on demand.
    LinkDrop {
        /// The peer node whose links should be dropped.
        peer: NodeId,
    },
    /// Admin request for a live [`StatusReport`].  Sent by `rebeca-ctl` (or
    /// any monitoring client) as the *only* frame on a fresh connection —
    /// no `Hello` handshake required; the server answers with one
    /// [`Frame::StatusReport`] and the requester closes the connection.
    StatusRequest {
        /// When set, the report carries the journal events with sequence
        /// numbers strictly greater than this cursor (bounded by the
        /// journal's ring capacity), making `rebeca-ctl tail` resumable.
        /// `None` asks for a snapshot without events.
        events_after: Option<u64>,
    },
    /// Admin reply carrying the serving process's live [`StatusReport`].
    StatusReport(StatusReport),
    /// Admin request for the serving driver's retained trace spans.  Like
    /// [`Frame::StatusRequest`] it is the only frame on a hello-less
    /// connection; the server answers with one [`Frame::TraceReport`].
    TraceRequest {
        /// When set, only spans with buffer sequence numbers strictly
        /// greater than this cursor are returned (bounded by the span
        /// buffer's ring capacity), making repeated polls resumable.
        /// `None` asks for everything currently retained.
        spans_after: Option<u64>,
    },
    /// Admin reply carrying the serving process's retained trace spans.
    TraceReport(TraceReport),
}

fn put_endpoint(buf: &mut Vec<u8>, ep: &Endpoint) {
    put_str(buf, ep.host());
    put_u16(buf, ep.port());
}

fn read_endpoint(r: &mut ByteReader<'_>) -> Result<Endpoint, DecodeError> {
    let host = r.string()?;
    let port = r.u16()?;
    Ok(Endpoint::new(host, port))
}

fn put_delay_model(buf: &mut Vec<u8>, delay: &DelayModel) {
    match delay {
        DelayModel::Constant(micros) => {
            put_u8(buf, 0);
            put_u64(buf, *micros);
        }
        DelayModel::Uniform {
            min_micros,
            max_micros,
        } => {
            put_u8(buf, 1);
            put_u64(buf, *min_micros);
            put_u64(buf, *max_micros);
        }
        DelayModel::Jittered {
            base_micros,
            jitter_micros,
        } => {
            put_u8(buf, 2);
            put_u64(buf, *base_micros);
            put_u64(buf, *jitter_micros);
        }
    }
}

fn read_delay_model(r: &mut ByteReader<'_>) -> Result<DelayModel, DecodeError> {
    Ok(match r.u8()? {
        0 => DelayModel::Constant(r.u64()?),
        1 => DelayModel::Uniform {
            min_micros: r.u64()?,
            max_micros: r.u64()?,
        },
        2 => DelayModel::Jittered {
            base_micros: r.u64()?,
            jitter_micros: r.u64()?,
        },
        _ => return Err(DecodeError),
    })
}

fn put_sub_id(buf: &mut Vec<u8>, id: &SubscriptionId) {
    put_u32(buf, id.client.raw());
    put_u32(buf, id.index);
}

fn read_sub_id(r: &mut ByteReader<'_>) -> Result<SubscriptionId, DecodeError> {
    Ok(SubscriptionId::new(ClientId::new(r.u32()?), r.u32()?))
}

fn put_template(buf: &mut Vec<u8>, t: &LocationDependentFilter) {
    let constraints: Vec<_> = t.iter().collect();
    put_u32(buf, constraints.len() as u32);
    for (name, c) in constraints {
        put_str(buf, name);
        match c {
            TemplateConstraint::Concrete(c) => {
                put_u8(buf, 0);
                rebeca_mobility::codec::put_constraint(buf, c);
            }
            TemplateConstraint::MyLoc { vicinity } => {
                put_u8(buf, 1);
                put_u64(buf, *vicinity as u64);
            }
        }
    }
}

fn read_template(r: &mut ByteReader<'_>) -> Result<LocationDependentFilter, DecodeError> {
    let n = r.u32()? as usize;
    let mut t = LocationDependentFilter::from_filter(&Filter::new());
    for _ in 0..n {
        let name = r.string()?;
        match r.u8()? {
            0 => t = t.with_concrete(name, r.constraint()?),
            1 => t = t.with_myloc(name, r.u64()? as usize),
            _ => return Err(DecodeError),
        }
    }
    Ok(t)
}

fn put_plan(buf: &mut Vec<u8>, plan: &AdaptivityPlan) {
    let steps = plan.steps();
    put_u32(buf, steps.len() as u32);
    for &s in steps {
        put_u64(buf, s as u64);
    }
}

fn read_plan(r: &mut ByteReader<'_>) -> Result<AdaptivityPlan, DecodeError> {
    let n = r.u32()? as usize;
    let mut steps = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        steps.push(r.u64()? as usize);
    }
    Ok(AdaptivityPlan::from_steps(steps))
}

fn put_opt_u64(buf: &mut Vec<u8>, value: Option<u64>) {
    match value {
        Some(v) => {
            put_u8(buf, 1);
            put_u64(buf, v);
        }
        None => put_u8(buf, 0),
    }
}

fn read_opt_u64(r: &mut ByteReader<'_>) -> Result<Option<u64>, DecodeError> {
    Ok(match r.u8()? {
        0 => None,
        1 => Some(r.u64()?),
        _ => return Err(DecodeError),
    })
}

// Histograms go over the wire sparsely: the sum plus (bucket index, count)
// pairs for the non-empty buckets only.  The total count is derived on
// decode, so a tampered frame cannot desynchronise count and buckets.
fn put_histogram(buf: &mut Vec<u8>, h: &Histogram) {
    put_u64(buf, h.sum());
    let nonzero: Vec<_> = h
        .bucket_counts()
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .collect();
    put_u32(buf, nonzero.len() as u32);
    for (i, &n) in nonzero {
        put_u8(buf, i as u8);
        put_u64(buf, n);
    }
}

fn read_histogram(r: &mut ByteReader<'_>) -> Result<Histogram, DecodeError> {
    let sum = r.u64()?;
    let n = r.u32()? as usize;
    if n > rebeca_obs::HISTOGRAM_BUCKETS {
        return Err(DecodeError);
    }
    let mut buckets = [0u64; rebeca_obs::HISTOGRAM_BUCKETS];
    for _ in 0..n {
        let idx = r.u8()? as usize;
        if idx >= rebeca_obs::HISTOGRAM_BUCKETS {
            return Err(DecodeError);
        }
        buckets[idx] = r.u64()?;
    }
    Ok(Histogram::from_parts(buckets, sum))
}

fn put_link_status(buf: &mut Vec<u8>, link: &LinkStatus) {
    put_u64(buf, link.peer);
    put_u8(buf, u8::from(link.connected));
    put_opt_u64(buf, link.last_heartbeat_age_ms);
    put_opt_u64(buf, link.down_since_ms);
    put_u64(buf, link.redial_attempts);
}

fn read_link_status(r: &mut ByteReader<'_>) -> Result<LinkStatus, DecodeError> {
    Ok(LinkStatus {
        peer: r.u64()?,
        connected: match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(DecodeError),
        },
        last_heartbeat_age_ms: read_opt_u64(r)?,
        down_since_ms: read_opt_u64(r)?,
        redial_attempts: r.u64()?,
    })
}

fn put_obs_event(buf: &mut Vec<u8>, event: &ObsEvent) {
    put_u64(buf, event.seq);
    put_u64(buf, event.at_micros);
    put_str(buf, &event.kind);
    put_str(buf, &event.detail);
}

fn read_obs_event(r: &mut ByteReader<'_>) -> Result<ObsEvent, DecodeError> {
    Ok(ObsEvent {
        seq: r.u64()?,
        at_micros: r.u64()?,
        kind: r.string()?,
        detail: r.string()?,
    })
}

fn put_broker_status(buf: &mut Vec<u8>, b: &BrokerStatus) {
    put_u64(buf, b.broker);
    put_u64(buf, b.restart_epoch);
    put_u64(buf, b.generation);
    put_u64(buf, b.routing_entries);
    put_u64(buf, b.routing_subgroups);
    put_u64(buf, b.wal_depth);
    put_u64(buf, b.wal_since_checkpoint);
    put_opt_u64(buf, b.last_checkpoint_age_ms);
    put_u64(buf, b.counterparts);
    put_u64(buf, b.buffered_deliveries);
    put_u64(buf, b.pending_relocations);
    put_u64(buf, b.retained_publications);
    put_u64(buf, b.retained_segments);
    put_opt_u64(buf, b.oldest_retained_age_ms);
    put_u64(buf, b.expired_leases);
    put_u32(buf, b.relocations.len() as u32);
    for (name, count) in &b.relocations {
        put_str(buf, name);
        put_u64(buf, *count);
    }
    put_histogram(buf, &b.handoff_latency_micros);
    put_u32(buf, b.links.len() as u32);
    for link in &b.links {
        put_link_status(buf, link);
    }
}

fn read_broker_status(r: &mut ByteReader<'_>) -> Result<BrokerStatus, DecodeError> {
    let broker = r.u64()?;
    let restart_epoch = r.u64()?;
    let generation = r.u64()?;
    let routing_entries = r.u64()?;
    let routing_subgroups = r.u64()?;
    let wal_depth = r.u64()?;
    let wal_since_checkpoint = r.u64()?;
    let last_checkpoint_age_ms = read_opt_u64(r)?;
    let counterparts = r.u64()?;
    let buffered_deliveries = r.u64()?;
    let pending_relocations = r.u64()?;
    let retained_publications = r.u64()?;
    let retained_segments = r.u64()?;
    let oldest_retained_age_ms = read_opt_u64(r)?;
    let expired_leases = r.u64()?;
    let n = r.u32()? as usize;
    let mut relocations = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let name = r.string()?;
        relocations.push((name, r.u64()?));
    }
    let handoff_latency_micros = read_histogram(r)?;
    let n = r.u32()? as usize;
    let mut links = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        links.push(read_link_status(r)?);
    }
    Ok(BrokerStatus {
        broker,
        restart_epoch,
        generation,
        routing_entries,
        routing_subgroups,
        wal_depth,
        wal_since_checkpoint,
        last_checkpoint_age_ms,
        counterparts,
        buffered_deliveries,
        pending_relocations,
        retained_publications,
        retained_segments,
        oldest_retained_age_ms,
        expired_leases,
        relocations,
        handoff_latency_micros,
        links,
    })
}

/// Encodes a [`StatusReport`] (without any frame header) into `buf`.
pub fn put_status_report(buf: &mut Vec<u8>, report: &StatusReport) {
    put_u64(buf, report.now_micros);
    put_u64(buf, report.node_count);
    put_u32(buf, report.brokers.len() as u32);
    for b in &report.brokers {
        put_broker_status(buf, b);
    }
    put_u32(buf, report.events.len() as u32);
    for e in &report.events {
        put_obs_event(buf, e);
    }
}

/// Decodes a [`StatusReport`] from the reader (the inverse of
/// [`put_status_report`]).
pub fn read_status_report(r: &mut ByteReader<'_>) -> Result<StatusReport, DecodeError> {
    let now_micros = r.u64()?;
    let node_count = r.u64()?;
    let n = r.u32()? as usize;
    let mut brokers = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        brokers.push(read_broker_status(r)?);
    }
    let n = r.u32()? as usize;
    let mut events = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        events.push(read_obs_event(r)?);
    }
    Ok(StatusReport {
        now_micros,
        node_count,
        brokers,
        events,
    })
}

fn put_span_record(buf: &mut Vec<u8>, span: &SpanRecord) {
    put_u64(buf, span.seq);
    put_u64(buf, span.trace_id);
    put_u64(buf, span.span_id);
    put_u64(buf, span.parent_span);
    put_u64(buf, span.broker);
    put_str(buf, &span.kind);
    put_u64(buf, span.start_micros);
    put_u64(buf, span.end_micros);
    put_str(buf, &span.detail);
}

fn read_span_record(r: &mut ByteReader<'_>) -> Result<SpanRecord, DecodeError> {
    Ok(SpanRecord {
        seq: r.u64()?,
        trace_id: r.u64()?,
        span_id: r.u64()?,
        parent_span: r.u64()?,
        broker: r.u64()?,
        kind: r.string()?,
        start_micros: r.u64()?,
        end_micros: r.u64()?,
        detail: r.string()?,
    })
}

/// Encodes a [`TraceReport`] (without any frame header) into `buf`.
pub fn put_trace_report(buf: &mut Vec<u8>, report: &TraceReport) {
    put_u64(buf, report.now_micros);
    put_u32(buf, report.spans.len() as u32);
    for span in &report.spans {
        put_span_record(buf, span);
    }
}

/// Decodes a [`TraceReport`] from the reader (the inverse of
/// [`put_trace_report`]).
pub fn read_trace_report(r: &mut ByteReader<'_>) -> Result<TraceReport, DecodeError> {
    let now_micros = r.u64()?;
    let n = r.u32()? as usize;
    let mut spans = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        spans.push(read_span_record(r)?);
    }
    Ok(TraceReport { now_micros, spans })
}

/// Encodes a [`Message`] (without any frame header) into `buf`.
pub fn put_message(buf: &mut Vec<u8>, message: &Message) {
    match message {
        Message::Attach { client } => {
            put_u8(buf, MSG_ATTACH);
            put_u32(buf, client.raw());
        }
        Message::Detach { client } => {
            put_u8(buf, MSG_DETACH);
            put_u32(buf, client.raw());
        }
        Message::Publish {
            publisher,
            notification,
        } => {
            put_u8(buf, MSG_PUBLISH);
            put_u32(buf, publisher.raw());
            put_notification(buf, notification);
        }
        Message::PublishBatch {
            publisher,
            notifications,
        } => {
            put_u8(buf, MSG_PUBLISH_BATCH);
            put_u32(buf, publisher.raw());
            put_u32(buf, notifications.len() as u32);
            for n in notifications {
                put_notification(buf, n);
            }
        }
        Message::Notification(envelope) => {
            put_u8(buf, MSG_NOTIFICATION);
            put_envelope(buf, envelope);
        }
        Message::NotificationBatch(envelopes) => {
            put_u8(buf, MSG_NOTIFICATION_BATCH);
            put_u32(buf, envelopes.len() as u32);
            for e in envelopes {
                put_envelope(buf, e);
            }
        }
        Message::Subscribe { subscriber, filter } => {
            put_u8(buf, MSG_SUBSCRIBE);
            put_u32(buf, subscriber.raw());
            put_filter(buf, filter);
        }
        Message::Unsubscribe { subscriber, filter } => {
            put_u8(buf, MSG_UNSUBSCRIBE);
            put_u32(buf, subscriber.raw());
            put_filter(buf, filter);
        }
        Message::Advertise { publisher, filter } => {
            put_u8(buf, MSG_ADVERTISE);
            put_u32(buf, publisher.raw());
            put_filter(buf, filter);
        }
        Message::Unadvertise { publisher, filter } => {
            put_u8(buf, MSG_UNADVERTISE);
            put_u32(buf, publisher.raw());
            put_filter(buf, filter);
        }
        Message::Deliver(delivery) => {
            put_u8(buf, MSG_DELIVER);
            put_delivery(buf, delivery);
        }
        Message::DeliverBatch(deliveries) => {
            put_u8(buf, MSG_DELIVER_BATCH);
            put_u32(buf, deliveries.len() as u32);
            for d in deliveries {
                put_delivery(buf, d);
            }
        }
        Message::ReSubscribe {
            client,
            filter,
            last_seq,
        } => {
            put_u8(buf, MSG_RESUBSCRIBE);
            put_u32(buf, client.raw());
            put_filter(buf, filter);
            put_u64(buf, *last_seq);
        }
        Message::Relocate {
            client,
            filter,
            last_seq,
            new_broker,
        } => {
            put_u8(buf, MSG_RELOCATE);
            put_u32(buf, client.raw());
            put_filter(buf, filter);
            put_u64(buf, *last_seq);
            put_node(buf, *new_broker);
        }
        Message::Fetch {
            client,
            filter,
            last_seq,
            junction,
        } => {
            put_u8(buf, MSG_FETCH);
            put_u32(buf, client.raw());
            put_filter(buf, filter);
            put_u64(buf, *last_seq);
            put_node(buf, *junction);
        }
        Message::Replay {
            client,
            filter,
            deliveries,
        } => {
            put_u8(buf, MSG_REPLAY);
            put_u32(buf, client.raw());
            put_filter(buf, filter);
            put_u32(buf, deliveries.len() as u32);
            for d in deliveries {
                put_delivery(buf, d);
            }
        }
        Message::LocSubscribe {
            sub_id,
            template,
            plan,
            location,
            hop,
        } => {
            put_u8(buf, MSG_LOC_SUBSCRIBE);
            put_sub_id(buf, sub_id);
            put_template(buf, template);
            put_plan(buf, plan);
            put_u32(buf, location.raw());
            put_u64(buf, *hop as u64);
        }
        Message::LocUnsubscribe { sub_id } => {
            put_u8(buf, MSG_LOC_UNSUBSCRIBE);
            put_sub_id(buf, sub_id);
        }
        Message::LocationUpdate {
            sub_id,
            location,
            hop,
        } => {
            put_u8(buf, MSG_LOCATION_UPDATE);
            put_sub_id(buf, sub_id);
            put_u32(buf, location.raw());
            put_u64(buf, *hop as u64);
        }
        Message::SubscribeSince {
            subscriber,
            filter,
            since_micros,
            last_seq,
        } => {
            put_u8(buf, MSG_SUBSCRIBE_SINCE);
            put_u32(buf, subscriber.raw());
            put_filter(buf, filter);
            put_u64(buf, *since_micros);
            put_u64(buf, *last_seq);
        }
        Message::HistoryFetch {
            client,
            filter,
            since_micros,
            origin,
        } => {
            put_u8(buf, MSG_HISTORY_FETCH);
            put_u32(buf, client.raw());
            put_filter(buf, filter);
            put_u64(buf, *since_micros);
            put_node(buf, *origin);
        }
        Message::HistoryReplay {
            client,
            filter,
            entries,
        } => {
            put_u8(buf, MSG_HISTORY_REPLAY);
            put_u32(buf, client.raw());
            put_filter(buf, filter);
            put_u32(buf, entries.len() as u32);
            for (ts, envelope) in entries {
                put_u64(buf, *ts);
                put_envelope(buf, envelope);
            }
        }
    }
}

/// Decodes a [`Message`] from the reader (the inverse of [`put_message`]).
pub fn read_message(r: &mut ByteReader<'_>) -> Result<Message, DecodeError> {
    Ok(match r.u8()? {
        MSG_ATTACH => Message::Attach {
            client: ClientId::new(r.u32()?),
        },
        MSG_DETACH => Message::Detach {
            client: ClientId::new(r.u32()?),
        },
        MSG_PUBLISH => Message::Publish {
            publisher: ClientId::new(r.u32()?),
            notification: r.notification()?,
        },
        MSG_PUBLISH_BATCH => {
            let publisher = ClientId::new(r.u32()?);
            let n = r.u32()? as usize;
            let mut notifications = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                notifications.push(r.notification()?);
            }
            Message::PublishBatch {
                publisher,
                notifications,
            }
        }
        MSG_NOTIFICATION => Message::Notification(r.envelope()?),
        MSG_NOTIFICATION_BATCH => {
            let n = r.u32()? as usize;
            let mut envelopes = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                envelopes.push(r.envelope()?);
            }
            Message::NotificationBatch(envelopes)
        }
        MSG_SUBSCRIBE => Message::Subscribe {
            subscriber: ClientId::new(r.u32()?),
            filter: r.filter()?,
        },
        MSG_UNSUBSCRIBE => Message::Unsubscribe {
            subscriber: ClientId::new(r.u32()?),
            filter: r.filter()?,
        },
        MSG_ADVERTISE => Message::Advertise {
            publisher: ClientId::new(r.u32()?),
            filter: r.filter()?,
        },
        MSG_UNADVERTISE => Message::Unadvertise {
            publisher: ClientId::new(r.u32()?),
            filter: r.filter()?,
        },
        MSG_DELIVER => Message::Deliver(r.delivery()?),
        MSG_DELIVER_BATCH => {
            let n = r.u32()? as usize;
            let mut deliveries = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                deliveries.push(r.delivery()?);
            }
            Message::DeliverBatch(deliveries)
        }
        MSG_RESUBSCRIBE => Message::ReSubscribe {
            client: ClientId::new(r.u32()?),
            filter: r.filter()?,
            last_seq: r.u64()?,
        },
        MSG_RELOCATE => Message::Relocate {
            client: ClientId::new(r.u32()?),
            filter: r.filter()?,
            last_seq: r.u64()?,
            new_broker: r.node()?,
        },
        MSG_FETCH => Message::Fetch {
            client: ClientId::new(r.u32()?),
            filter: r.filter()?,
            last_seq: r.u64()?,
            junction: r.node()?,
        },
        MSG_REPLAY => {
            let client = ClientId::new(r.u32()?);
            let filter = r.filter()?;
            let n = r.u32()? as usize;
            let mut deliveries = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                deliveries.push(r.delivery()?);
            }
            Message::Replay {
                client,
                filter,
                deliveries,
            }
        }
        MSG_LOC_SUBSCRIBE => Message::LocSubscribe {
            sub_id: read_sub_id(r)?,
            template: read_template(r)?,
            plan: read_plan(r)?,
            location: LocationId::new(r.u32()?),
            hop: r.u64()? as usize,
        },
        MSG_LOC_UNSUBSCRIBE => Message::LocUnsubscribe {
            sub_id: read_sub_id(r)?,
        },
        MSG_LOCATION_UPDATE => Message::LocationUpdate {
            sub_id: read_sub_id(r)?,
            location: LocationId::new(r.u32()?),
            hop: r.u64()? as usize,
        },
        MSG_SUBSCRIBE_SINCE => Message::SubscribeSince {
            subscriber: ClientId::new(r.u32()?),
            filter: r.filter()?,
            since_micros: r.u64()?,
            last_seq: r.u64()?,
        },
        MSG_HISTORY_FETCH => Message::HistoryFetch {
            client: ClientId::new(r.u32()?),
            filter: r.filter()?,
            since_micros: r.u64()?,
            origin: r.node()?,
        },
        MSG_HISTORY_REPLAY => {
            let client = ClientId::new(r.u32()?);
            let filter = r.filter()?;
            let n = r.u32()? as usize;
            let mut entries = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let ts = r.u64()?;
                entries.push((ts, r.envelope()?));
            }
            Message::HistoryReplay {
                client,
                filter,
                entries,
            }
        }
        _ => return Err(DecodeError),
    })
}

impl Frame {
    fn encode_payload(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        match self {
            Frame::Hello {
                from,
                to,
                epoch,
                listen,
                delay,
            } => {
                put_u8(&mut buf, KIND_HELLO);
                put_node(&mut buf, *from);
                put_node(&mut buf, *to);
                put_u64(&mut buf, *epoch);
                put_endpoint(&mut buf, listen);
                put_delay_model(&mut buf, delay);
            }
            Frame::Heartbeat { epoch } => {
                put_u8(&mut buf, KIND_HEARTBEAT);
                put_u64(&mut buf, *epoch);
            }
            Frame::Message {
                from,
                to,
                delay_micros,
                seq,
                message,
            } => {
                put_u8(&mut buf, KIND_MESSAGE);
                put_node(&mut buf, *from);
                put_node(&mut buf, *to);
                put_u64(&mut buf, *delay_micros);
                put_u64(&mut buf, *seq);
                put_message(&mut buf, message);
            }
            Frame::StatusRequest { events_after } => {
                put_u8(&mut buf, KIND_STATUS_REQUEST);
                put_opt_u64(&mut buf, *events_after);
            }
            Frame::StatusReport(report) => {
                put_u8(&mut buf, KIND_STATUS_REPORT);
                put_status_report(&mut buf, report);
            }
            Frame::TraceRequest { spans_after } => {
                put_u8(&mut buf, KIND_TRACE_REQUEST);
                put_opt_u64(&mut buf, *spans_after);
            }
            Frame::TraceReport(report) => {
                put_u8(&mut buf, KIND_TRACE_REPORT);
                put_trace_report(&mut buf, report);
            }
            Frame::Ack { seq } => {
                put_u8(&mut buf, KIND_ACK);
                put_u64(&mut buf, *seq);
            }
            Frame::Fenced { expected } => {
                put_u8(&mut buf, KIND_FENCED);
                put_u64(&mut buf, *expected);
            }
            Frame::LinkDrop { peer } => {
                put_u8(&mut buf, KIND_LINK_DROP);
                put_node(&mut buf, *peer);
            }
        }
        buf
    }

    /// Encodes the frame as `len ‖ crc32 ‖ payload`, ready to write to a
    /// socket.
    pub fn encode_framed(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut frame = Vec::with_capacity(payload.len() + FRAME_HEADER_LEN);
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        frame
    }

    fn decode_payload(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = ByteReader::new(payload);
        let frame = match r.u8()? {
            KIND_HELLO => Frame::Hello {
                from: r.node()?,
                to: r.node()?,
                epoch: r.u64()?,
                listen: read_endpoint(&mut r)?,
                delay: read_delay_model(&mut r)?,
            },
            KIND_HEARTBEAT => Frame::Heartbeat { epoch: r.u64()? },
            KIND_MESSAGE => Frame::Message {
                from: r.node()?,
                to: r.node()?,
                delay_micros: r.u64()?,
                seq: r.u64()?,
                message: read_message(&mut r)?,
            },
            KIND_STATUS_REQUEST => Frame::StatusRequest {
                events_after: read_opt_u64(&mut r)?,
            },
            KIND_STATUS_REPORT => Frame::StatusReport(read_status_report(&mut r)?),
            KIND_TRACE_REQUEST => Frame::TraceRequest {
                spans_after: read_opt_u64(&mut r)?,
            },
            KIND_TRACE_REPORT => Frame::TraceReport(read_trace_report(&mut r)?),
            KIND_ACK => Frame::Ack { seq: r.u64()? },
            KIND_FENCED => Frame::Fenced { expected: r.u64()? },
            KIND_LINK_DROP => Frame::LinkDrop { peer: r.node()? },
            kind => return Err(WireError::UnknownFrameKind(kind)),
        };
        if !r.done() {
            return Err(WireError::TrailingBytes {
                extra: r.remaining(),
            });
        }
        Ok(frame)
    }

    /// Decodes one frame from the front of `buf`, returning the frame and
    /// the number of bytes consumed.  [`WireError::Truncated`] means more
    /// bytes are needed; every other error means the stream is corrupt.
    pub fn decode_framed(buf: &[u8]) -> Result<(Frame, usize), WireError> {
        if buf.len() < FRAME_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let len = u32::from_le_bytes(buf[0..4].try_into().unwrap());
        if len > MAX_FRAME_LEN {
            return Err(WireError::FrameTooLarge { len });
        }
        let expected = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        let total = FRAME_HEADER_LEN + len as usize;
        if buf.len() < total {
            return Err(WireError::Truncated);
        }
        let payload = &buf[FRAME_HEADER_LEN..total];
        let found = crc32(payload);
        if found != expected {
            return Err(WireError::Checksum { expected, found });
        }
        Ok((Self::decode_payload(payload)?, total))
    }
}

// NOTE: there is deliberately no `read socket → Frame` convenience here.
// Reading frames off a socket needs partial-read buffering (a read timeout
// can strike mid-frame without losing the consumed prefix); the transport's
// reader thread in `link.rs` owns that loop, built on
// [`Frame::decode_framed`]'s `Truncated`-means-more-bytes contract.

#[cfg(test)]
mod tests {
    use super::*;
    use rebeca_broker::{Delivery, Envelope};
    use rebeca_filter::{Constraint, Notification};

    fn filter() -> Filter {
        Filter::new()
            .with("service", Constraint::Eq("parking".into()))
            .with("cost", Constraint::Lt(3.into()))
    }

    fn delivery(seq: u64) -> Delivery {
        Delivery {
            subscriber: ClientId::new(1),
            filter: filter(),
            seq,
            envelope: Envelope::new(
                ClientId::new(9),
                seq,
                Notification::builder()
                    .attr("service", "parking")
                    .attr("spot", seq as i64)
                    .build(),
            ),
        }
    }

    #[test]
    fn frames_roundtrip() {
        let frames = [
            Frame::Hello {
                from: NodeId::new(3),
                to: NodeId::new(0),
                epoch: 7,
                listen: Endpoint::new("127.0.0.1", 7200),
                delay: DelayModel::Jittered {
                    base_micros: 1000,
                    jitter_micros: 50,
                },
            },
            Frame::Heartbeat { epoch: 7 },
            Frame::Message {
                from: NodeId::new(0),
                to: NodeId::new(3),
                delay_micros: 5000,
                seq: 42,
                message: Message::Deliver(delivery(4)),
            },
            Frame::Ack { seq: 42 },
            Frame::Fenced { expected: 8 },
            Frame::LinkDrop {
                peer: NodeId::new(3),
            },
        ];
        for frame in frames {
            let bytes = frame.encode_framed();
            let (decoded, consumed) = Frame::decode_framed(&bytes).expect("roundtrip");
            assert_eq!(consumed, bytes.len());
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn status_frames_roundtrip() {
        let mut histogram = Histogram::default();
        for micros in [90, 1_500, 1_800, 250_000] {
            histogram.record(micros);
        }
        let report = StatusReport {
            now_micros: 12_345_678,
            node_count: 5,
            brokers: vec![BrokerStatus {
                broker: 1,
                restart_epoch: 2,
                generation: 3,
                routing_entries: 14,
                routing_subgroups: 5,
                wal_depth: 9,
                wal_since_checkpoint: 4,
                last_checkpoint_age_ms: Some(125),
                counterparts: 1,
                buffered_deliveries: 3,
                pending_relocations: 1,
                retained_publications: 250,
                retained_segments: 3,
                oldest_retained_age_ms: Some(42_000),
                expired_leases: 2,
                relocations: vec![
                    ("mobility.relocations_started".into(), 2),
                    ("mobility.replays".into(), 1),
                ],
                handoff_latency_micros: histogram,
                links: vec![
                    LinkStatus {
                        peer: 0,
                        connected: true,
                        last_heartbeat_age_ms: Some(48),
                        down_since_ms: None,
                        redial_attempts: 0,
                    },
                    LinkStatus {
                        peer: 2,
                        connected: false,
                        last_heartbeat_age_ms: None,
                        down_since_ms: Some(1_250),
                        redial_attempts: 17,
                    },
                ],
            }],
            events: vec![ObsEvent {
                seq: 7,
                at_micros: 11_000_000,
                kind: "relocation.settled".into(),
                detail: "broker=1 client=1 latency_micros=1500".into(),
            }],
        };
        let frames = [
            Frame::StatusRequest { events_after: None },
            Frame::StatusRequest {
                events_after: Some(41),
            },
            Frame::StatusReport(report),
        ];
        for frame in frames {
            let bytes = frame.encode_framed();
            let (decoded, consumed) = Frame::decode_framed(&bytes).expect("roundtrip");
            assert_eq!(consumed, bytes.len());
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn trace_frames_roundtrip() {
        let report = TraceReport {
            now_micros: 12_345_678,
            spans: vec![
                SpanRecord {
                    seq: 3,
                    trace_id: 0xDEAD_BEEF_0BAD_CAFE,
                    span_id: 0x1234_5678_9ABC_DEF1,
                    parent_span: 0,
                    broker: 7,
                    kind: "publish".into(),
                    start_micros: 50_000,
                    end_micros: 50_000,
                    detail: "publisher=2 seq=1".into(),
                },
                SpanRecord {
                    seq: 4,
                    trace_id: 0xDEAD_BEEF_0BAD_CAFE,
                    span_id: 0xFEDC_BA98_7654_3211,
                    parent_span: 0x1234_5678_9ABC_DEF1,
                    broker: 7,
                    kind: "match".into(),
                    start_micros: 50_000,
                    end_micros: 50_010,
                    detail: String::new(),
                },
            ],
        };
        let frames = [
            Frame::TraceRequest { spans_after: None },
            Frame::TraceRequest {
                spans_after: Some(17),
            },
            Frame::TraceReport(TraceReport::default()),
            Frame::TraceReport(report),
        ];
        for frame in frames {
            let bytes = frame.encode_framed();
            let (decoded, consumed) = Frame::decode_framed(&bytes).expect("roundtrip");
            assert_eq!(consumed, bytes.len());
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn status_report_histogram_survives_the_wire_with_quantiles() {
        let mut histogram = Histogram::default();
        for _ in 0..98 {
            histogram.record(100);
        }
        histogram.record(5_000);
        histogram.record(100_000);
        let report = StatusReport {
            now_micros: 1,
            node_count: 1,
            brokers: vec![BrokerStatus {
                broker: 0,
                handoff_latency_micros: histogram,
                ..BrokerStatus::default()
            }],
            events: Vec::new(),
        };
        let bytes = Frame::StatusReport(report).encode_framed();
        let (decoded, _) = Frame::decode_framed(&bytes).unwrap();
        let Frame::StatusReport(report) = decoded else {
            panic!("expected status report");
        };
        let h = &report.brokers[0].handoff_latency_micros;
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), 127);
        assert_eq!(h.p99(), 8_191);
    }

    #[test]
    fn back_to_back_frames_decode_sequentially() {
        let a = Frame::Heartbeat { epoch: 1 };
        let b = Frame::Message {
            from: NodeId::new(1),
            to: NodeId::new(2),
            delay_micros: 0,
            seq: 1,
            message: Message::Attach {
                client: ClientId::new(5),
            },
        };
        let mut bytes = a.encode_framed();
        bytes.extend_from_slice(&b.encode_framed());
        let (first, used) = Frame::decode_framed(&bytes).unwrap();
        assert_eq!(first, a);
        let (second, used2) = Frame::decode_framed(&bytes[used..]).unwrap();
        assert_eq!(second, b);
        assert_eq!(used + used2, bytes.len());
    }

    #[test]
    fn truncation_is_reported_not_panicked() {
        let frame = Frame::Message {
            from: NodeId::new(1),
            to: NodeId::new(2),
            delay_micros: 10,
            seq: 3,
            message: Message::Subscribe {
                subscriber: ClientId::new(1),
                filter: filter(),
            },
        };
        let bytes = frame.encode_framed();
        for cut in [0, 3, FRAME_HEADER_LEN, bytes.len() - 1] {
            assert_eq!(
                Frame::decode_framed(&bytes[..cut]).unwrap_err(),
                WireError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn flipped_bits_fail_the_checksum() {
        let frame = Frame::Heartbeat { epoch: 3 };
        let mut bytes = frame.encode_framed();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        assert!(matches!(
            Frame::decode_framed(&bytes),
            Err(WireError::Checksum { .. })
        ));
    }

    #[test]
    fn absurd_length_prefixes_are_rejected_before_allocation() {
        let mut bytes = Vec::new();
        put_u32(&mut bytes, u32::MAX);
        put_u32(&mut bytes, 0);
        assert_eq!(
            Frame::decode_framed(&bytes).unwrap_err(),
            WireError::FrameTooLarge { len: u32::MAX }
        );
    }

    #[test]
    fn garbage_with_a_valid_checksum_is_malformed_not_a_panic() {
        // A well-framed payload whose first byte is an unknown frame kind.
        let payload = vec![0xEEu8, 1, 2, 3];
        let mut bytes = Vec::new();
        put_u32(&mut bytes, payload.len() as u32);
        put_u32(&mut bytes, crc32(&payload));
        bytes.extend_from_slice(&payload);
        assert_eq!(
            Frame::decode_framed(&bytes).unwrap_err(),
            WireError::UnknownFrameKind(0xEE)
        );
    }

    #[test]
    fn resend_control_frames_are_corruption_checked_like_any_other() {
        // A flipped bit in an Ack must fail the checksum, not ack the
        // wrong sequence number.
        let mut bytes = Frame::Ack { seq: 0x0102_0304 }.encode_framed();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            Frame::decode_framed(&bytes),
            Err(WireError::Checksum { .. })
        ));
        // A truncated Fenced payload is malformed, never a panic.
        let payload = vec![KIND_FENCED, 1, 2];
        let mut bytes = Vec::new();
        put_u32(&mut bytes, payload.len() as u32);
        put_u32(&mut bytes, crc32(&payload));
        bytes.extend_from_slice(&payload);
        assert_eq!(
            Frame::decode_framed(&bytes).unwrap_err(),
            WireError::Malformed
        );
    }

    #[test]
    fn retention_messages_roundtrip() {
        let messages = [
            Message::SubscribeSince {
                subscriber: ClientId::new(4),
                filter: filter(),
                since_micros: 1_500_000,
                last_seq: 12,
            },
            Message::HistoryFetch {
                client: ClientId::new(4),
                filter: filter(),
                since_micros: 1_500_000,
                origin: NodeId::new(2),
            },
            Message::HistoryReplay {
                client: ClientId::new(4),
                filter: filter(),
                entries: vec![
                    (1_600_000, delivery(1).envelope),
                    (1_700_000, delivery(2).envelope),
                ],
            },
            Message::HistoryReplay {
                client: ClientId::new(4),
                filter: filter(),
                entries: Vec::new(),
            },
        ];
        for message in messages {
            let frame = Frame::Message {
                from: NodeId::new(0),
                to: NodeId::new(2),
                delay_micros: 1_000,
                seq: 9,
                message,
            };
            let bytes = frame.encode_framed();
            let (decoded, consumed) = Frame::decode_framed(&bytes).expect("roundtrip");
            assert_eq!(consumed, bytes.len());
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = Frame::Heartbeat { epoch: 1 }.encode_payload();
        payload.push(0);
        let mut bytes = Vec::new();
        put_u32(&mut bytes, payload.len() as u32);
        put_u32(&mut bytes, crc32(&payload));
        bytes.extend_from_slice(&payload);
        assert_eq!(
            Frame::decode_framed(&bytes).unwrap_err(),
            WireError::TrailingBytes { extra: 1 }
        );
    }
}
