//! The in-process chaos acceptance of the status plane: run the scripted
//! relocation scenario on the deterministic simulator, crash-restart the
//! old border broker under traffic, and assert from [`MobilitySystem::status`]
//! alone that
//!
//! * the restarted broker's epoch/generation bumped,
//! * its WAL state recovered (non-zero depth),
//! * the hand-off latency histogram has non-zero quantiles after the
//!   relocation, and
//! * delivery stayed exactly-once end to end.
//!
//! This is deliberately the same report shape `rebeca-ctl status` reads off
//! a live TCP cluster — what the operator sees in production is what this
//! test pins down deterministically.

use rebeca_broker::ClientId;
use rebeca_core::{BrokerConfig, MobilitySystem, SystemBuilder};
use rebeca_filter::{Constraint, Filter, Notification};
use rebeca_location::MovementGraph;
use rebeca_routing::RoutingStrategyKind;
use rebeca_sim::{DelayModel, SimDuration, Topology};

const CONSUMER: ClientId = ClientId::new(1);
const PRODUCER: ClientId = ClientId::new(2);

fn parking() -> Filter {
    Filter::new().with("service", Constraint::Eq("parking".into()))
}

fn vacancy(i: u64) -> Notification {
    Notification::builder()
        .attr("service", "parking")
        .attr("spot", i as i64)
        .build()
}

fn build() -> MobilitySystem {
    SystemBuilder::new(&Topology::line(3))
        .config(
            BrokerConfig::default()
                .with_strategy(RoutingStrategyKind::Covering)
                .with_movement_graph(MovementGraph::paper_example())
                .with_relocation_timeout(SimDuration::from_secs(5)),
        )
        .link_delay(DelayModel::constant_millis(5))
        .seed(7)
        .build()
        .expect("sim system builds")
}

fn run_until_deliveries(sys: &mut MobilitySystem, want: usize) {
    let deadline = sys.now() + SimDuration::from_secs(30);
    while sys.client_log(CONSUMER).unwrap().len() < want {
        let now = sys.now();
        assert!(now < deadline, "deliveries stalled at {want}");
        sys.run_until(now + SimDuration::from_millis(25));
    }
}

#[test]
fn crash_restart_under_traffic_is_visible_in_status_and_stays_exactly_once() {
    let mut sys = build();
    let consumer = sys.connect(CONSUMER, 0).expect("consumer connects");
    consumer.subscribe(&mut sys, parking()).expect("subscribe");
    let producer = sys.connect(PRODUCER, 2).expect("producer connects");
    let now = sys.now();
    sys.run_until(now + SimDuration::from_millis(200));

    // Baseline status: every broker reports, routing state is installed,
    // nothing relocation-shaped happened yet.
    let before = sys.status();
    assert_eq!(before.brokers.len(), 3, "one entry per broker");
    assert_eq!(before.node_count, 5, "3 brokers + 2 clients");
    for b in &before.brokers {
        assert_eq!(b.generation, 0, "no broker has restarted yet");
        assert!(
            b.handoff_latency_micros.is_empty(),
            "no hand-off happened yet"
        );
    }
    assert!(
        before.brokers.iter().any(|b| b.routing_entries > 0),
        "the subscription must be installed somewhere"
    );
    for b in &before.brokers {
        assert!(
            b.routing_subgroups <= b.routing_entries,
            "subgroups compact entries, never exceed them"
        );
        assert_eq!(
            b.routing_subgroups == 0,
            b.routing_entries == 0,
            "a non-empty table has at least one subgroup"
        );
    }

    // First half of the stream, then the scripted relocation.
    for i in 1..=5 {
        producer.publish(&mut sys, vacancy(i)).expect("publish");
    }
    run_until_deliveries(&mut sys, 5);
    consumer.move_to(&mut sys, 1).expect("relocate");
    for i in 6..=8 {
        producer.publish(&mut sys, vacancy(i)).expect("publish");
    }
    run_until_deliveries(&mut sys, 8);

    // The hand-off settled: its latency histogram has real quantiles.
    let settled = sys.status();
    let histogram = &settled.brokers[0].handoff_latency_micros;
    assert!(histogram.count() > 0, "hand-off latency was recorded");
    assert!(histogram.p50() > 0, "p50 is non-zero");
    assert!(histogram.p99() >= histogram.p50(), "quantiles are ordered");
    let relocations: u64 = settled.brokers[0]
        .relocations
        .iter()
        .map(|(_, count)| count)
        .sum();
    assert!(relocations > 0, "relocation counters are in the report");

    // Chaos: kill and restart the OLD border broker under traffic.
    sys.crash_and_restart_broker(0).expect("crash/restart");
    for i in 9..=10 {
        producer.publish(&mut sys, vacancy(i)).expect("publish");
    }
    run_until_deliveries(&mut sys, 10);

    let after = sys.status();
    let restarted = &after.brokers[0];
    assert_eq!(restarted.broker, 0);
    assert_eq!(
        restarted.generation, 1,
        "recovery bumps the WAL generation exactly once"
    );
    assert_eq!(
        restarted.restart_epoch, 1,
        "in-process restart epoch is the generation"
    );
    assert!(restarted.wal_depth > 0, "the WAL recovered, not wiped");
    for b in &after.brokers[1..] {
        assert_eq!(b.generation, 0, "only broker 0 restarted");
    }
    // Per-link liveness: the line topology gives broker 1 two neighbours,
    // always-connected under the in-process driver.
    let middle = &after.brokers[1];
    assert_eq!(middle.links.len(), 2);
    assert!(middle.links.iter().all(|l| l.connected));

    // The journal saw the whole story, with monotonically increasing seqs.
    let journal = sys.metrics().journal();
    let kinds: Vec<&str> = journal.events().map(|e| e.kind.as_str()).collect();
    assert!(
        kinds.iter().any(|k| k.starts_with("relocation.")),
        "relocation phase transitions journaled: {kinds:?}"
    );
    assert!(
        kinds.contains(&"wal.append"),
        "WAL appends journaled: {kinds:?}"
    );
    assert!(
        kinds.contains(&"wal.recovered"),
        "the recovery itself is journaled: {kinds:?}"
    );
    let seqs: Vec<u64> = journal.events().map(|e| e.seq).collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "seqs increase");

    // And through all of it: exactly-once delivery.
    let log = sys.client_log(CONSUMER).unwrap();
    assert!(log.is_clean(), "violations: {:?}", log.violations());
    assert_eq!(
        log.distinct_publisher_seqs(PRODUCER),
        (1..=10).collect::<Vec<u64>>(),
        "complete, no duplicates"
    );

    // The report renders as JSON with the documented field names — the
    // exact shape `rebeca-ctl status --json` emits.
    let json = after.to_json();
    for field in [
        "\"now_micros\"",
        "\"brokers\"",
        "\"routing_entries\"",
        "\"routing_subgroups\"",
        "\"wal_depth\"",
        "\"restart_epoch\"",
        "\"handoff_latency_micros\"",
        "\"p99\"",
        "\"links\"",
        "\"last_heartbeat_age_ms\"",
    ] {
        assert!(json.contains(field), "JSON misses {field}: {json}");
    }
}
