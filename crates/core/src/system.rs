//! The deployment facade: a broker network plus clients behind one handle.
//!
//! [`MobilitySystem`] is the public entry point used by applications, the
//! examples, the integration tests and the experiment harness.  It hosts one
//! [`MobileBroker`] per node of a [`Topology`] on a sans-IO
//! [`Driver`](crate::Driver) — the deterministic discrete-event simulator by
//! default, the wall-clock [`ThreadedDriver`](crate::ThreadedDriver) on
//! request — and exposes two ways to run clients:
//!
//! * **interactive sessions** ([`MobilitySystem::connect`] →
//!   [`Session`](crate::Session)): imperative subscribe/publish/move calls
//!   interleaved with [`MobilitySystem::run_until`], with received
//!   notifications polled from a mailbox, so application code can *react*
//!   to deliveries mid-run;
//! * **scripted clients** ([`MobilitySystem::add_client`]): pre-arranged
//!   `(time, action)` scripts, replayed through the same per-client action
//!   queue the sessions use — the scripted path is a thin adapter over the
//!   session machinery.
//!
//! Systems are constructed with [`SystemBuilder`]; every entry point reports
//! bad input as a typed [`RebecaError`] instead of panicking.

use std::collections::BTreeMap;

use rebeca_broker::{BrokerRole, Message};
use rebeca_broker::{ClientId, ConsumerLog};
use rebeca_location::MovementGraph;
use rebeca_mobility::{HandoffLog, LogBackend, PersistenceConfig};
use rebeca_routing::RoutingStrategyKind;
use rebeca_sim::{
    Context, DelayModel, Incoming, Metrics, Node, NodeId, SimDuration, SimTime, Topology,
};

use crate::client::{ClientAction, ClientNode, LogicalMobilityMode};
use crate::driver::{Driver, SimDriver};
use crate::error::RebecaError;
use crate::mobile_broker::{BrokerConfig, MobileBroker};
use crate::session::Session;
use crate::threaded::ThreadedDriver;

/// A node of the deployment: either a broker or a client.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // one node per simulated process; size is irrelevant
pub enum SystemNode {
    /// A mobility-aware broker.
    Broker(MobileBroker),
    /// A client (scripted or session-driven).
    Client(ClientNode),
}

impl Node for SystemNode {
    type Message = Message;

    fn handle(&mut self, ctx: &mut Context<'_, Message>, event: Incoming<Message>) {
        match self {
            SystemNode::Broker(b) => b.handle(ctx, event),
            SystemNode::Client(c) => c.handle(ctx, event),
        }
    }
}

/// Fluent constructor for a [`MobilitySystem`].
///
/// ```
/// use rebeca_core::SystemBuilder;
/// use rebeca_sim::{DelayModel, Topology};
///
/// let system = SystemBuilder::new(&Topology::line(3))
///     .link_delay(DelayModel::constant_millis(5))
///     .seed(42)
///     .build()
///     .expect("non-empty topology");
/// assert_eq!(system.broker_count(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    topology: Topology,
    config: BrokerConfig,
    link_delay: DelayModel,
    client_link_delay: Option<DelayModel>,
    seed: u64,
}

impl SystemBuilder {
    /// Starts a builder over the given broker topology.
    pub fn new(topology: &Topology) -> Self {
        Self {
            topology: topology.clone(),
            config: BrokerConfig::default(),
            link_delay: DelayModel::default(),
            client_link_delay: None,
            seed: 0,
        }
    }

    /// Replaces the whole broker configuration at once.
    pub fn config(mut self, config: BrokerConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the routing strategy of every broker.
    pub fn strategy(mut self, strategy: RoutingStrategyKind) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// Sets the movement graph over which `ploc` is evaluated.
    pub fn movement_graph(mut self, graph: MovementGraph) -> Self {
        self.config.movement_graph = graph;
        self
    }

    /// Sets the relocation holding-buffer timeout.
    pub fn relocation_timeout(mut self, timeout: SimDuration) -> Self {
        self.config.relocation_timeout = timeout;
        self
    }

    /// Enables broker-side transit-notification draining at the given
    /// interval.
    pub fn drain_interval(mut self, interval: SimDuration) -> Self {
        self.config.drain_interval = Some(interval);
        self
    }

    /// Sets where the per-broker write-ahead handoff logs live.
    pub fn persistence(mut self, persistence: PersistenceConfig) -> Self {
        self.config.persistence = persistence;
        self
    }

    /// Persists the per-broker write-ahead logs as files under the given
    /// root directory (shorthand for [`PersistenceConfig::Directory`]).
    pub fn persist_to(mut self, root: impl Into<std::path::PathBuf>) -> Self {
        self.config.persistence = PersistenceConfig::Directory(root.into());
        self
    }

    /// Sets the delay model of broker ↔ broker links.
    pub fn link_delay(mut self, delay: DelayModel) -> Self {
        self.link_delay = delay;
        self
    }

    /// Sets the delay model of client ↔ broker links (defaults to the
    /// broker link delay).
    pub fn client_link_delay(mut self, delay: DelayModel) -> Self {
        self.client_link_delay = Some(delay);
        self
    }

    /// Seeds the random link delays (and, in wall-clock mode, the per-link
    /// delay sampling).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables distributed-trace sampling at the given fraction of
    /// publications (and relocations); 1.0 traces everything.  Sampling is
    /// a deterministic hash, so every broker — on any driver — makes the
    /// same decision for the same publication.
    pub fn trace_sample(mut self, rate: f64) -> Self {
        self.config.trace_sample_per_64k = rebeca_obs::rate_per_64k(rate);
        self
    }

    /// Builds the system on the deterministic discrete-event simulator.
    pub fn build(self) -> Result<MobilitySystem, RebecaError> {
        let driver = Box::new(SimDriver::new(self.seed));
        self.build_with(driver)
    }

    /// Builds the system on the wall-clock
    /// [`ThreadedDriver`](crate::ThreadedDriver): one thread per node, std
    /// channels as links, real `Instant` timers.
    pub fn build_threaded(self) -> Result<MobilitySystem, RebecaError> {
        let driver = Box::new(ThreadedDriver::new(self.seed));
        self.build_with(driver)
    }

    /// Builds the system on any [`Driver`] implementation.
    pub fn build_with(self, mut driver: Box<dyn Driver>) -> Result<MobilitySystem, RebecaError> {
        if self.topology.is_empty() {
            return Err(RebecaError::EmptyTopology);
        }
        let Self {
            topology,
            config,
            link_delay,
            client_link_delay,
            ..
        } = self;

        // First pass: allocate node ids so that broker index i gets NodeId(i).
        let mut wal_backends: Vec<Box<dyn LogBackend>> = Vec::with_capacity(topology.len());
        let broker_nodes: Vec<NodeId> = (0..topology.len())
            .map(|i| {
                let links: Vec<NodeId> = topology
                    .neighbours(i)
                    .into_iter()
                    .map(NodeId::new)
                    .collect();
                let backend = config.persistence.backend_for(i);
                let log = HandoffLog::with_backend(backend.boxed_clone())
                    .checkpoint_every(config.wal_checkpoint_every);
                wal_backends.push(backend);
                driver.add_node(SystemNode::Broker(MobileBroker::with_log(
                    NodeId::new(i),
                    BrokerRole::Border,
                    links,
                    config.clone(),
                    log,
                )))
            })
            .collect();
        for &(a, b) in topology.edges() {
            driver.ensure_link(broker_nodes[a], broker_nodes[b], link_delay);
        }

        Ok(MobilitySystem {
            driver,
            broker_nodes,
            clients: BTreeMap::new(),
            client_link_delay: client_link_delay.unwrap_or(link_delay),
            wal_backends,
        })
    }
}

/// A complete deployment: broker network plus clients, hosted on a sans-IO
/// [`Driver`].
pub struct MobilitySystem {
    driver: Box<dyn Driver>,
    broker_nodes: Vec<NodeId>,
    clients: BTreeMap<ClientId, NodeId>,
    client_link_delay: DelayModel,
    /// Per-broker handles to the write-ahead handoff log backends.  The
    /// handles share storage with the brokers' own backends (the "disk"),
    /// so a crashed broker's log survives and a restarted broker recovers
    /// from it.
    wal_backends: Vec<Box<dyn LogBackend>>,
}

impl MobilitySystem {
    /// Starts a [`SystemBuilder`] over the given topology — the entry point
    /// for constructing a system.
    pub fn builder(topology: &Topology) -> SystemBuilder {
        SystemBuilder::new(topology)
    }

    /// Sets the delay model used for client ↔ broker links created by
    /// subsequent [`MobilitySystem::connect`] /
    /// [`MobilitySystem::add_client`] calls (defaults to the broker link
    /// delay).
    pub fn set_client_link_delay(&mut self, delay: DelayModel) {
        self.client_link_delay = delay;
    }

    /// The driver node of broker `index` (the topology numbering).
    pub fn broker_node(&self, index: usize) -> Result<NodeId, RebecaError> {
        self.broker_nodes
            .get(index)
            .copied()
            .ok_or(RebecaError::UnknownBroker {
                index,
                brokers: self.broker_nodes.len(),
            })
    }

    /// Number of brokers.
    pub fn broker_count(&self) -> usize {
        self.broker_nodes.len()
    }

    /// Opens an interactive session: registers client `id`, links it to
    /// broker `broker` (topology index) and attaches it there.  The returned
    /// [`Session`] handle drives the client imperatively, interleaved with
    /// [`MobilitySystem::run_until`] / [`MobilitySystem::step`].
    pub fn connect(&mut self, id: ClientId, broker: usize) -> Result<Session, RebecaError> {
        self.connect_with_mode(id, broker, LogicalMobilityMode::LocationDependent)
    }

    /// Like [`MobilitySystem::connect`], with an explicit logical-mobility
    /// mode for the client.
    pub fn connect_with_mode(
        &mut self,
        id: ClientId,
        broker: usize,
        mode: LogicalMobilityMode,
    ) -> Result<Session, RebecaError> {
        let broker_node = self.broker_node(broker)?;
        let node = self.register_client(id, mode, &[broker])?;
        if let SystemNode::Client(c) = self.driver.node_mut(node) {
            c.enable_mailbox();
        }
        self.enqueue_now(
            id,
            ClientAction::Attach {
                broker: broker_node,
            },
        )?;
        Ok(Session::new(id))
    }

    /// Adds a scripted client — a thin adapter that replays the script
    /// through the same per-client action queue interactive [`Session`]s
    /// use.
    ///
    /// * `reachable_brokers` — topology indices of every broker the client
    ///   will ever attach to (links are created up front; attachment itself
    ///   is a scripted [`ClientAction::Attach`] / [`ClientAction::MoveTo`]).
    /// * `script` — `(time, action)` pairs executed at the given times.
    pub fn add_client(
        &mut self,
        id: ClientId,
        mode: LogicalMobilityMode,
        reachable_brokers: &[usize],
        script: Vec<(SimTime, ClientAction)>,
    ) -> Result<NodeId, RebecaError> {
        // Validate the whole script before mutating anything, so an error
        // never leaves a half-configured client behind.
        for (_, action) in &script {
            if let ClientAction::Attach { broker }
            | ClientAction::MoveTo { broker }
            | ClientAction::NaiveMoveTo { broker, .. } = action
            {
                if broker.index() >= self.broker_nodes.len() {
                    return Err(RebecaError::UnknownBroker {
                        index: broker.index(),
                        brokers: self.broker_nodes.len(),
                    });
                }
            }
        }
        let node = self.register_client(id, mode, reachable_brokers)?;
        for (at, action) in script {
            self.schedule_action_at(id, at, action)?;
        }
        Ok(node)
    }

    /// Creates the client node and its up-front links; shared by the
    /// scripted and interactive paths.
    fn register_client(
        &mut self,
        id: ClientId,
        mode: LogicalMobilityMode,
        reachable_brokers: &[usize],
    ) -> Result<NodeId, RebecaError> {
        if self.clients.contains_key(&id) {
            return Err(RebecaError::DuplicateClient(id));
        }
        let mut links = Vec::with_capacity(reachable_brokers.len());
        for &broker in reachable_brokers {
            links.push(self.broker_node(broker)?);
        }
        let movement_graph = match self.driver.node(self.broker_nodes[0]) {
            SystemNode::Broker(b) => b.config().movement_graph.clone(),
            SystemNode::Client(_) => unreachable!("broker nodes are created first"),
        };
        let node = self.driver.add_node(SystemNode::Client(ClientNode::new(
            id,
            Vec::new(),
            mode,
            movement_graph,
        )));
        for broker_node in links {
            self.driver
                .ensure_link(node, broker_node, self.client_link_delay);
        }
        self.clients.insert(id, node);
        Ok(node)
    }

    /// Appends `action` to the client's queue and schedules its execution at
    /// absolute time `at` (times in the past execute as soon as the driver
    /// runs).  Actions that attach to a broker get their client ↔ broker
    /// link created on demand.
    pub(crate) fn schedule_action_at(
        &mut self,
        id: ClientId,
        at: SimTime,
        action: ClientAction,
    ) -> Result<(), RebecaError> {
        let node = self.client_node_id(id)?;
        if let ClientAction::Attach { broker }
        | ClientAction::MoveTo { broker }
        | ClientAction::NaiveMoveTo { broker, .. } = &action
        {
            if broker.index() >= self.broker_nodes.len() {
                return Err(RebecaError::UnknownBroker {
                    index: broker.index(),
                    brokers: self.broker_nodes.len(),
                });
            }
            self.driver
                .ensure_link(node, *broker, self.client_link_delay);
        }
        let tag = match self.driver.node_mut(node) {
            SystemNode::Client(c) => c.enqueue(action),
            SystemNode::Broker(_) => return Err(RebecaError::NotAClient(id)),
        };
        self.driver.schedule_timer(node, at, tag);
        Ok(())
    }

    /// Appends `action` to the client's queue for execution at the current
    /// time (the interactive path behind every [`Session`] method).
    pub(crate) fn enqueue_now(
        &mut self,
        id: ClientId,
        action: ClientAction,
    ) -> Result<(), RebecaError> {
        let now = self.driver.now();
        self.schedule_action_at(id, now, action)
    }

    /// Drains the client's mailbox of deliveries received since the last
    /// drain (the implementation behind
    /// [`Session::poll_deliveries`](crate::Session::poll_deliveries)).
    pub(crate) fn drain_client_deliveries(
        &mut self,
        id: ClientId,
    ) -> Result<Vec<rebeca_broker::Delivery>, RebecaError> {
        let node = self.client_node_id(id)?;
        match self.driver.node_mut(node) {
            SystemNode::Client(c) => Ok(c.drain_deliveries()),
            SystemNode::Broker(_) => Err(RebecaError::NotAClient(id)),
        }
    }

    fn client_node_id(&self, id: ClientId) -> Result<NodeId, RebecaError> {
        self.clients
            .get(&id)
            .copied()
            .ok_or(RebecaError::UnknownClient(id))
    }

    /// Runs the deployment until the given time (virtual under the
    /// simulator, elapsed wall time under a wall-clock driver).  Returns the
    /// number of events processed.
    pub fn run_until(&mut self, until: SimTime) -> u64 {
        self.driver.run_until(until)
    }

    /// Processes a single due event (a minimal forward step on wall-clock
    /// drivers).  Returns `false` when nothing was pending.
    pub fn step(&mut self) -> bool {
        self.driver.step()
    }

    /// Runs until no further events are pending (clients stop publishing and
    /// all in-flight messages are drained), with an event budget as a safety
    /// net.  On wall-clock drivers this sleeps through real timer gaps;
    /// prefer [`MobilitySystem::run_until`] there.
    pub fn run_to_idle(&mut self, max_events: u64) -> u64 {
        self.driver.run_to_idle(max_events)
    }

    /// The driver's current time.
    pub fn now(&self) -> SimTime {
        self.driver.now()
    }

    /// The global metrics store.
    pub fn metrics(&self) -> &Metrics {
        self.driver.metrics()
    }

    /// Mutable access to the global metrics (for time-series sampling from
    /// experiment drivers).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        self.driver.metrics_mut()
    }

    /// A live status report over every hosted broker (routing table size,
    /// WAL depth, restart epoch, relocation activity, link liveness) — the
    /// same shape `rebeca-ctl status` reads from a TCP cluster, answered
    /// here from the driver's in-process state.
    pub fn status(&self) -> rebeca_obs::StatusReport {
        self.driver.status()
    }

    /// Total number of messages transmitted over links so far (notifications
    /// plus administrative messages), the quantity plotted in Figure 9.
    pub fn total_messages(&self) -> u64 {
        self.driver.metrics().counter("network.messages")
    }

    /// Crashes broker `index` and immediately restarts it from its
    /// write-ahead handoff log, as a quickly rebooting process would: every
    /// in-memory state of the broker is discarded, then the mobility-relevant
    /// state (virtual counterparts, disconnected client records, sequence
    /// watermarks, routing re-points, unresolved relocation holdings) is
    /// reconstructed from the surviving log.  Links and in-flight messages
    /// addressed to the broker are untouched; recovered relocation holdings
    /// get their timeout re-armed from the current time.  Returns the
    /// crashed broker state (e.g. for post-mortem assertions).
    pub fn crash_and_restart_broker(&mut self, index: usize) -> Result<MobileBroker, RebecaError> {
        let node_id = self.broker_node(index)?;
        let (role, links, config) = match self.driver.node(node_id) {
            SystemNode::Broker(b) => (
                b.core().role(),
                b.core().broker_links().to_vec(),
                b.config().clone(),
            ),
            SystemNode::Client(_) => unreachable!("broker index maps to a broker node"),
        };
        let log = HandoffLog::with_backend(self.wal_backends[index].boxed_clone())
            .checkpoint_every(config.wal_checkpoint_every);
        let relocation_timeout = config.relocation_timeout;
        let (restarted, recovered_tags) = MobileBroker::recover(node_id, role, links, config, log);
        let old = match self
            .driver
            .replace_node(node_id, SystemNode::Broker(restarted))
        {
            SystemNode::Broker(b) => b,
            SystemNode::Client(_) => unreachable!("broker index maps to a broker node"),
        };
        let rearm_at = self.driver.now() + relocation_timeout;
        for tag in recovered_tags {
            self.driver.schedule_timer(node_id, rearm_at, tag);
        }
        self.driver.metrics_mut().incr("mobility.broker_restart");
        Ok(old)
    }

    /// A durable handle to the write-ahead log backend of broker `index`
    /// (shares storage with the broker's own backend).
    pub fn wal_backend(&self, index: usize) -> Result<Box<dyn LogBackend>, RebecaError> {
        self.wal_backends
            .get(index)
            .map(|b| b.boxed_clone())
            .ok_or(RebecaError::UnknownBroker {
                index,
                brokers: self.broker_nodes.len(),
            })
    }

    /// Read access to a broker by topology index.
    pub fn broker(&self, index: usize) -> Result<&MobileBroker, RebecaError> {
        let node = self.broker_node(index)?;
        match self.driver.node(node) {
            SystemNode::Broker(b) => Ok(b),
            SystemNode::Client(_) => unreachable!("broker index maps to a broker node"),
        }
    }

    /// Read access to a client.
    pub fn client(&self, id: ClientId) -> Result<&ClientNode, RebecaError> {
        let node = self.client_node_id(id)?;
        match self.driver.node(node) {
            SystemNode::Client(c) => Ok(c),
            SystemNode::Broker(_) => Err(RebecaError::NotAClient(id)),
        }
    }

    /// The delivery log of a client.
    pub fn client_log(&self, id: ClientId) -> Result<&ConsumerLog, RebecaError> {
        Ok(self.client(id)?.log())
    }

    /// Ids of all clients added to the system.
    pub fn client_ids(&self) -> impl Iterator<Item = ClientId> + '_ {
        self.clients.keys().copied()
    }
}

impl std::fmt::Debug for MobilitySystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MobilitySystem")
            .field("brokers", &self.broker_nodes.len())
            .field("clients", &self.clients.len())
            .field("now", &self.driver.now())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebeca_filter::{Constraint, Filter, Notification};
    use rebeca_location::MovementGraph;
    use rebeca_routing::RoutingStrategyKind;

    fn parking_filter() -> Filter {
        Filter::new().with("service", Constraint::Eq("parking".into()))
    }

    fn vacancy(seq: i64) -> Notification {
        Notification::builder()
            .attr("service", "parking")
            .attr("spot", seq)
            .build()
    }

    fn config() -> BrokerConfig {
        BrokerConfig::default()
            .with_strategy(RoutingStrategyKind::Covering)
            .with_movement_graph(MovementGraph::paper_example())
            .with_relocation_timeout(SimDuration::from_secs(5))
    }

    fn system(topology: &Topology, delay_millis: u64, seed: u64) -> MobilitySystem {
        SystemBuilder::new(topology)
            .config(config())
            .link_delay(DelayModel::constant_millis(delay_millis))
            .seed(seed)
            .build()
            .expect("valid topology")
    }

    /// Static scenario: a consumer at broker 0 and a producer at broker 2 of
    /// a 3-broker line; every publication must arrive exactly once, in order.
    #[test]
    fn static_end_to_end_delivery_over_a_line() {
        let topo = Topology::line(3);
        let mut sys = system(&topo, 5, 1);

        let consumer = ClientId::new(1);
        let producer = ClientId::new(2);
        sys.add_client(
            consumer,
            LogicalMobilityMode::LocationDependent,
            &[0],
            vec![
                (
                    SimTime::from_millis(1),
                    ClientAction::Attach {
                        broker: sys.broker_node(0).unwrap(),
                    },
                ),
                (
                    SimTime::from_millis(2),
                    ClientAction::Subscribe(parking_filter()),
                ),
            ],
        )
        .unwrap();
        let mut script = vec![(
            SimTime::from_millis(1),
            ClientAction::Attach {
                broker: sys.broker_node(2).unwrap(),
            },
        )];
        for i in 0..10 {
            script.push((
                SimTime::from_millis(100 + i * 10),
                ClientAction::Publish(vacancy(i as i64)),
            ));
        }
        sys.add_client(
            producer,
            LogicalMobilityMode::LocationDependent,
            &[2],
            script,
        )
        .unwrap();

        sys.run_until(SimTime::from_secs(2));

        let log = sys.client_log(consumer).unwrap();
        assert!(log.is_clean(), "violations: {:?}", log.violations());
        assert_eq!(log.len(), 10);
        assert_eq!(
            log.distinct_publisher_seqs(producer),
            (1..=10).collect::<Vec<u64>>()
        );
    }

    /// The same scenario driven through interactive sessions instead of
    /// scripts: imperative calls interleaved with `run_until`, and the
    /// mailbox drains every delivery.
    #[test]
    fn interactive_sessions_deliver_end_to_end() {
        let topo = Topology::line(3);
        let mut sys = system(&topo, 5, 1);

        let consumer = sys.connect(ClientId::new(1), 0).unwrap();
        consumer.subscribe(&mut sys, parking_filter()).unwrap();
        let producer = sys.connect(ClientId::new(2), 2).unwrap();
        sys.run_until(SimTime::from_millis(50));

        for i in 0..10 {
            producer.publish(&mut sys, vacancy(i)).unwrap();
        }
        sys.run_until(SimTime::from_millis(200));

        let polled = consumer.poll_deliveries(&mut sys).unwrap();
        assert_eq!(polled.len(), 10);
        assert!(polled
            .iter()
            .zip(1..)
            .all(|(d, seq)| d.envelope.publisher_seq == seq));
        // The mailbox drains: polling again yields nothing new.
        assert!(consumer.poll_deliveries(&mut sys).unwrap().is_empty());
        assert!(sys.client_log(consumer.client()).unwrap().is_clean());
    }

    /// A session can relocate mid-run with the usual guarantees.
    #[test]
    fn session_relocation_is_lossless() {
        let topo = Topology::line(3);
        let mut sys = system(&topo, 5, 1);

        let consumer = sys.connect(ClientId::new(1), 0).unwrap();
        consumer.subscribe(&mut sys, parking_filter()).unwrap();
        let producer = sys.connect(ClientId::new(2), 2).unwrap();
        sys.run_until(SimTime::from_millis(50));

        for i in 0..5 {
            producer.publish(&mut sys, vacancy(i)).unwrap();
        }
        sys.run_until(SimTime::from_millis(100));
        consumer.move_to(&mut sys, 1).unwrap();
        for i in 5..10 {
            producer.publish(&mut sys, vacancy(i)).unwrap();
        }
        sys.run_until(SimTime::from_secs(6));

        let log = sys.client_log(consumer.client()).unwrap();
        assert!(log.is_clean(), "violations: {:?}", log.violations());
        assert_eq!(
            log.distinct_publisher_seqs(producer.client()),
            (1..=10).collect::<Vec<u64>>()
        );
    }

    /// The same scenario under flooding routing: delivery is identical (the
    /// flooding baseline over-transmits but the border broker still filters
    /// for its local client).
    #[test]
    fn flooding_strategy_delivers_the_same_notifications() {
        let topo = Topology::line(3);
        let mut sys = SystemBuilder::new(&topo)
            .config(config())
            .strategy(RoutingStrategyKind::Flooding)
            .link_delay(DelayModel::constant_millis(5))
            .seed(1)
            .build()
            .unwrap();

        let consumer = ClientId::new(1);
        let producer = ClientId::new(2);
        sys.add_client(
            consumer,
            LogicalMobilityMode::LocationDependent,
            &[0],
            vec![
                (
                    SimTime::from_millis(1),
                    ClientAction::Attach {
                        broker: sys.broker_node(0).unwrap(),
                    },
                ),
                (
                    SimTime::from_millis(2),
                    ClientAction::Subscribe(parking_filter()),
                ),
            ],
        )
        .unwrap();
        sys.add_client(
            producer,
            LogicalMobilityMode::LocationDependent,
            &[1],
            vec![
                (
                    SimTime::from_millis(1),
                    ClientAction::Attach {
                        broker: sys.broker_node(1).unwrap(),
                    },
                ),
                (SimTime::from_millis(100), ClientAction::Publish(vacancy(1))),
                (SimTime::from_millis(110), ClientAction::Publish(vacancy(2))),
            ],
        )
        .unwrap();
        sys.run_until(SimTime::from_secs(1));
        assert_eq!(sys.client_log(consumer).unwrap().len(), 2);
        assert!(sys.client_log(consumer).unwrap().is_clean());
    }

    /// Batched publications travel the same delivery paths as single ones:
    /// the consumer receives every notification of the batch exactly once,
    /// in publisher-FIFO order, end to end over the broker line.
    #[test]
    fn batched_publications_deliver_like_single_ones() {
        let topo = Topology::line(3);
        let mut sys = system(&topo, 5, 1);

        let consumer = ClientId::new(1);
        let producer = ClientId::new(2);
        sys.add_client(
            consumer,
            LogicalMobilityMode::LocationDependent,
            &[0],
            vec![
                (
                    SimTime::from_millis(1),
                    ClientAction::Attach {
                        broker: sys.broker_node(0).unwrap(),
                    },
                ),
                (
                    SimTime::from_millis(2),
                    ClientAction::Subscribe(parking_filter()),
                ),
            ],
        )
        .unwrap();
        let batches: Vec<(SimTime, ClientAction)> = (0..4)
            .map(|b| {
                (
                    SimTime::from_millis(100 + b * 20),
                    ClientAction::PublishBatch((0..5).map(|i| vacancy(b as i64 * 5 + i)).collect()),
                )
            })
            .collect();
        let mut script = vec![(
            SimTime::from_millis(1),
            ClientAction::Attach {
                broker: sys.broker_node(2).unwrap(),
            },
        )];
        script.extend(batches);
        sys.add_client(
            producer,
            LogicalMobilityMode::LocationDependent,
            &[2],
            script,
        )
        .unwrap();

        sys.run_until(SimTime::from_secs(2));

        let log = sys.client_log(consumer).unwrap();
        assert!(log.is_clean(), "violations: {:?}", log.violations());
        assert_eq!(log.len(), 20);
        assert_eq!(
            log.distinct_publisher_seqs(producer),
            (1..=20).collect::<Vec<u64>>()
        );
        assert_eq!(sys.client(producer).unwrap().published(), 20);
    }

    /// A consumer without a matching subscription receives nothing.
    #[test]
    fn unrelated_subscriptions_receive_nothing() {
        let topo = Topology::line(2);
        let mut sys = system(&topo, 5, 1);
        let consumer = ClientId::new(1);
        let producer = ClientId::new(2);
        sys.add_client(
            consumer,
            LogicalMobilityMode::LocationDependent,
            &[0],
            vec![
                (
                    SimTime::from_millis(1),
                    ClientAction::Attach {
                        broker: sys.broker_node(0).unwrap(),
                    },
                ),
                (
                    SimTime::from_millis(2),
                    ClientAction::Subscribe(
                        Filter::new().with("service", Constraint::Eq("weather".into())),
                    ),
                ),
            ],
        )
        .unwrap();
        sys.add_client(
            producer,
            LogicalMobilityMode::LocationDependent,
            &[1],
            vec![
                (
                    SimTime::from_millis(1),
                    ClientAction::Attach {
                        broker: sys.broker_node(1).unwrap(),
                    },
                ),
                (SimTime::from_millis(100), ClientAction::Publish(vacancy(1))),
            ],
        )
        .unwrap();
        sys.run_until(SimTime::from_secs(1));
        assert!(sys.client_log(consumer).unwrap().is_empty());
        assert_eq!(sys.client(producer).unwrap().published(), 1);
    }

    /// System accessors behave as documented.
    #[test]
    fn accessors_expose_brokers_and_clients() {
        let topo = Topology::star(3);
        let mut sys = system(&topo, 1, 7);
        assert_eq!(sys.broker_count(), 4);
        let c = ClientId::new(9);
        sys.add_client(
            c,
            LogicalMobilityMode::LocationDependent,
            &[1],
            vec![(
                SimTime::from_millis(1),
                ClientAction::Attach {
                    broker: sys.broker_node(1).unwrap(),
                },
            )],
        )
        .unwrap();
        sys.run_until(SimTime::from_millis(50));
        assert_eq!(sys.client(c).unwrap().id(), c);
        assert_eq!(sys.client_ids().collect::<Vec<_>>(), vec![c]);
        assert_eq!(sys.broker(0).unwrap().core().id(), NodeId::new(0));
        assert!(sys.total_messages() >= 1);
        assert!(sys.now() >= SimTime::from_millis(50));
    }

    /// Every entry point reports bad input as a typed error, never a panic.
    #[test]
    fn bad_input_yields_typed_errors() {
        let topo = Topology::line(2);
        let mut sys = system(&topo, 1, 1);

        assert_eq!(
            SystemBuilder::new(&Topology::line(0)).build().unwrap_err(),
            RebecaError::EmptyTopology
        );
        assert!(matches!(
            sys.broker_node(7),
            Err(RebecaError::UnknownBroker { index: 7, .. })
        ));
        assert!(matches!(
            sys.broker(9),
            Err(RebecaError::UnknownBroker { .. })
        ));
        assert!(matches!(
            sys.crash_and_restart_broker(5),
            Err(RebecaError::UnknownBroker { .. })
        ));
        assert!(matches!(
            sys.wal_backend(5),
            Err(RebecaError::UnknownBroker { .. })
        ));
        assert_eq!(
            sys.client_log(ClientId::new(3)).unwrap_err(),
            RebecaError::UnknownClient(ClientId::new(3))
        );
        assert!(matches!(
            sys.add_client(
                ClientId::new(1),
                LogicalMobilityMode::LocationDependent,
                &[9],
                Vec::new()
            ),
            Err(RebecaError::UnknownBroker { index: 9, .. })
        ));
        assert!(matches!(
            sys.connect(ClientId::new(1), 9),
            Err(RebecaError::UnknownBroker { .. })
        ));
        let session = sys.connect(ClientId::new(1), 0).unwrap();
        assert_eq!(
            sys.connect(ClientId::new(1), 1).unwrap_err(),
            RebecaError::DuplicateClient(ClientId::new(1))
        );
        assert!(matches!(
            session.move_to(&mut sys, 42),
            Err(RebecaError::UnknownBroker { .. })
        ));
    }

    /// A rejected `add_client` leaves no trace: the same id can be re-added
    /// with a corrected script (registration is atomic on error).
    #[test]
    fn failed_add_client_leaves_no_half_configured_client() {
        let topo = Topology::line(2);
        let mut sys = system(&topo, 1, 1);
        let id = ClientId::new(4);
        let bad = vec![
            (
                SimTime::from_millis(1),
                ClientAction::Attach {
                    broker: sys.broker_node(0).unwrap(),
                },
            ),
            (
                SimTime::from_millis(2),
                ClientAction::Attach {
                    broker: NodeId::new(99),
                },
            ),
        ];
        assert!(matches!(
            sys.add_client(id, LogicalMobilityMode::LocationDependent, &[0], bad),
            Err(RebecaError::UnknownBroker { index: 99, .. })
        ));
        // The failed call registered nothing...
        assert_eq!(sys.client_ids().count(), 0);
        assert!(matches!(sys.client(id), Err(RebecaError::UnknownClient(_))));
        // ...so the corrected retry succeeds.
        sys.add_client(
            id,
            LogicalMobilityMode::LocationDependent,
            &[0],
            vec![(
                SimTime::from_millis(1),
                ClientAction::Attach {
                    broker: sys.broker_node(0).unwrap(),
                },
            )],
        )
        .unwrap();
        sys.run_until(SimTime::from_millis(10));
        assert_eq!(sys.client(id).unwrap().id(), id);
    }

    /// Scripted clients do not accumulate mailbox copies (only interactive
    /// sessions buffer for polling), so long scripted runs stay lean.
    #[test]
    fn scripted_clients_do_not_buffer_a_mailbox() {
        let topo = Topology::line(2);
        let mut sys = system(&topo, 1, 1);
        sys.add_client(
            ClientId::new(1),
            LogicalMobilityMode::LocationDependent,
            &[0],
            vec![
                (
                    SimTime::from_millis(1),
                    ClientAction::Attach {
                        broker: sys.broker_node(0).unwrap(),
                    },
                ),
                (
                    SimTime::from_millis(2),
                    ClientAction::Subscribe(parking_filter()),
                ),
            ],
        )
        .unwrap();
        let producer = sys.connect(ClientId::new(2), 1).unwrap();
        sys.run_until(SimTime::from_millis(20));
        producer.publish(&mut sys, vacancy(1)).unwrap();
        sys.run_until(SimTime::from_millis(200));

        // The log recorded the delivery, but no mailbox copy was kept.
        assert_eq!(sys.client_log(ClientId::new(1)).unwrap().len(), 1);
        assert!(sys
            .drain_client_deliveries(ClientId::new(1))
            .unwrap()
            .is_empty());
    }
}
