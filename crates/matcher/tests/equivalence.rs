//! Equivalence of the predicate index with the linear-scan oracle.
//!
//! These property tests are the exactness contract of `rebeca-matcher`: on
//! seeded, randomized filters and notifications spanning every constraint
//! kind and every index partition (hashed equality, ordered numeric bounds
//! with boundary collisions, existence, residual string/`Ne` predicates),
//! the index must return **byte-identical** results to evaluating
//! `Filter::matches` / `Filter::covers` over every stored filter — including
//! after random removal churn.

use proptest::prelude::*;
use rebeca_filter::{Constraint, Filter, Notification, Value};
use rebeca_matcher::{FilterIndex, FilterSet};

/// Values over a small shared domain so filters and notifications interact
/// often; includes every `Value` kind plus int/float aliasing (`3` vs `3.0`).
fn small_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-12i64..12).prop_map(Value::Int),
        (-12i64..12).prop_map(|i| Value::Float(i as f64 / 2.0)),
        (0u32..8).prop_map(Value::Location),
        prop_oneof![
            Just("parking"),
            Just("weather"),
            Just("Rebeca Drive"),
            Just("Re"),
            Just("stock")
        ]
        .prop_map(|s| Value::Str(s.to_string())),
        prop_oneof![Just(true), Just(false)].prop_map(Value::Bool),
    ]
}

fn ordered_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-12i64..12).prop_map(Value::Int),
        (-12i64..12).prop_map(|i| Value::Float(i as f64 / 2.0)),
        prop_oneof![Just("m"), Just("Re"), Just("parking")].prop_map(|s| Value::Str(s.to_string())),
    ]
}

/// Every constraint kind, so all index partitions (equality classes,
/// ordered numeric maps, exists, residual) are exercised.
fn constraint() -> impl Strategy<Value = Constraint> {
    prop_oneof![
        small_value().prop_map(Constraint::Eq),
        small_value().prop_map(Constraint::Ne),
        ordered_value().prop_map(Constraint::Lt),
        ordered_value().prop_map(Constraint::Le),
        ordered_value().prop_map(Constraint::Gt),
        ordered_value().prop_map(Constraint::Ge),
        (-12i64..12, 0i64..10)
            .prop_map(|(lo, len)| Constraint::Between(Value::Int(lo), Value::Int(lo + len))),
        // `0..4` includes the empty set: `In(∅)` matches nothing but is
        // covered vacuously by every `In`/`Between`, which once slipped
        // past the range-partitioned covering walk.
        prop::collection::btree_set(small_value(), 0..4).prop_map(Constraint::In),
        prop_oneof![Just("Re"), Just("park"), Just("e")]
            .prop_map(|p| Constraint::Prefix(p.to_string())),
        prop_oneof![Just("Drive"), Just("ing")].prop_map(|p| Constraint::Suffix(p.to_string())),
        prop_oneof![Just("bec"), Just("a")].prop_map(|p| Constraint::Contains(p.to_string())),
        Just(Constraint::Exists),
    ]
}

/// Filters over a small attribute alphabet (including none — the universal
/// filter).
fn filter() -> impl Strategy<Value = Filter> {
    prop::collection::btree_map(
        prop_oneof![Just("a"), Just("b"), Just("c"), Just("location")],
        constraint(),
        0..4,
    )
    .prop_map(|m| {
        m.into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<Filter>()
    })
}

fn notification() -> impl Strategy<Value = Notification> {
    prop::collection::btree_map(
        prop_oneof![Just("a"), Just("b"), Just("c"), Just("location")],
        small_value(),
        0..5,
    )
    .prop_map(|m| {
        let mut b = Notification::builder();
        for (k, v) in m {
            b = b.attr(k, v);
        }
        b.build()
    })
}

/// A filter workload with interleaved removals: `(filters, removal mask)`.
fn workload() -> impl Strategy<Value = (Vec<Filter>, Vec<bool>)> {
    (
        prop::collection::vec(filter(), 0..24),
        prop::collection::vec(prop_oneof![Just(false), Just(true)], 24..25),
    )
}

/// Builds the index and the parallel oracle list, applying the removal mask.
fn build(filters: &[Filter], removed: &[bool]) -> (FilterIndex<usize>, Vec<(usize, Filter)>) {
    let mut index = FilterIndex::new();
    for (i, f) in filters.iter().enumerate() {
        index.insert(i, f);
    }
    let mut oracle: Vec<(usize, Filter)> = filters.iter().cloned().enumerate().collect();
    for (i, _) in filters.iter().enumerate() {
        if removed[i % removed.len()] {
            index.remove(&i);
            oracle.retain(|(j, _)| *j != i);
        }
    }
    (index, oracle)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `matching_keys` returns exactly the filters the linear scan matches,
    /// for any insertion/removal history.
    #[test]
    fn index_matches_equal_linear_scan((filters, removed) in workload(), n in notification()) {
        let (index, oracle) = build(&filters, &removed);
        let mut got: Vec<usize> = index.matching_keys(&n).into_iter().copied().collect();
        got.sort_unstable();
        let expected: Vec<usize> = oracle
            .iter()
            .filter(|(_, f)| f.matches(&n))
            .map(|(i, _)| *i)
            .collect();
        prop_assert_eq!(got, expected, "index disagrees with linear scan on {}", n);
    }

    /// `any_match` agrees with the existential linear scan.
    #[test]
    fn any_match_equals_linear_scan((filters, removed) in workload(), n in notification()) {
        let (index, oracle) = build(&filters, &removed);
        prop_assert_eq!(index.any_match(&n), oracle.iter().any(|(_, f)| f.matches(&n)));
    }

    /// `covering_keys` returns exactly the filters the linear scan proves to
    /// cover the probe, and `covers_any` agrees with their existence.
    #[test]
    fn covering_keys_equal_linear_scan((filters, removed) in workload(), probe in filter()) {
        let (index, oracle) = build(&filters, &removed);
        let got: Vec<usize> = index.covering_keys(&probe).into_iter().copied().collect();
        let expected: Vec<usize> = oracle
            .iter()
            .filter(|(_, f)| f.covers(&probe))
            .map(|(i, _)| *i)
            .collect();
        prop_assert_eq!(&got, &expected, "covering keys disagree for {}", probe);
        prop_assert_eq!(index.covers_any(&probe), !expected.is_empty());
    }

    /// `covered_keys` returns exactly the stored filters the probe covers.
    #[test]
    fn covered_keys_equal_linear_scan((filters, removed) in workload(), probe in filter()) {
        let (index, oracle) = build(&filters, &removed);
        let got: Vec<usize> = index.covered_keys(&probe).into_iter().copied().collect();
        let expected: Vec<usize> = oracle
            .iter()
            .filter(|(_, f)| probe.covers(f))
            .map(|(i, _)| *i)
            .collect();
        prop_assert_eq!(got, expected, "covered keys disagree for {}", probe);
    }

    /// `same_attr_keys` returns exactly the stored filters constraining the
    /// probe's attribute set.
    #[test]
    fn same_attr_keys_equal_linear_scan((filters, removed) in workload(), probe in filter()) {
        let (index, oracle) = build(&filters, &removed);
        let got: Vec<usize> = index.same_attr_keys(&probe).into_iter().copied().collect();
        let probe_attrs: Vec<&str> = probe.iter().map(|(a, _)| a).collect();
        let expected: Vec<usize> = oracle
            .iter()
            .filter(|(_, f)| f.iter().map(|(a, _)| a).collect::<Vec<_>>() == probe_attrs)
            .map(|(i, _)| *i)
            .collect();
        prop_assert_eq!(got, expected, "same-attr keys disagree for {}", probe);
    }

    /// The index-backed `FilterSet` preserves the matched-notification set of
    /// plain insertion under covering insertion, and never loses matches
    /// under merging insertion (the property formerly tested in
    /// `rebeca-filter`, now running against the indexed implementation).
    #[test]
    fn covering_filterset_preserves_matching(fs in prop::collection::vec(filter(), 0..6), n in notification()) {
        let mut simple = FilterSet::new();
        let mut covering = FilterSet::new();
        let mut merging = FilterSet::new();
        for f in &fs {
            simple.insert_simple(f.clone());
            covering.insert_covering(f.clone());
            merging.insert_merging(f.clone());
        }
        prop_assert_eq!(simple.matches(&n), covering.matches(&n),
            "covering set differs from simple set on {}", n);
        if simple.matches(&n) {
            prop_assert!(merging.matches(&n), "merging set lost a match on {}", n);
        }
        prop_assert!(covering.len() <= simple.len());
        prop_assert!(merging.len() <= simple.len());
    }

    /// `FilterSet::matches`, `covers` and `contains` agree with a linear
    /// oracle over the stored filters after mixed insertions.
    #[test]
    fn filterset_queries_equal_linear_oracle(
        fs in prop::collection::vec(filter(), 0..10),
        n in notification(),
        probe in filter(),
    ) {
        let mut set = FilterSet::new();
        for f in &fs {
            set.insert_simple(f.clone());
        }
        let stored: Vec<&Filter> = set.iter().collect();
        prop_assert_eq!(set.matches(&n), stored.iter().any(|f| f.matches(&n)));
        prop_assert_eq!(set.covers(&probe), stored.iter().any(|f| f.covers(&probe)));
        prop_assert_eq!(set.contains(&probe), stored.contains(&&probe));
    }
}

/// Large seeded soak: 2000 mixed filters with churn, 500 notifications —
/// beyond what the per-case property tests reach, still deterministic.
#[test]
fn large_seeded_soak_matches_oracle() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xEBECA);
    let services = ["parking", "weather", "traffic", "stock"];

    let mut index: FilterIndex<u32> = FilterIndex::new();
    let mut oracle: Vec<(u32, Filter)> = Vec::new();
    for i in 0..2000u32 {
        let mut f = Filter::new().with(
            "service",
            Constraint::Eq(services[rng.gen_range(0..services.len())].into()),
        );
        match rng.gen_range(0..4) {
            0 => f = f.with("cost", Constraint::Lt(Value::Int(rng.gen_range(-5i64..40)))),
            1 => {
                let lo = rng.gen_range(-5i64..30);
                f = f.with(
                    "cost",
                    Constraint::Between(Value::Int(lo), Value::Int(lo + rng.gen_range(0i64..15))),
                );
            }
            2 => {
                f = f.with(
                    "location",
                    Constraint::any_location_of([rng.gen_range(0u32..50), rng.gen_range(0u32..50)]),
                )
            }
            _ => {}
        }
        index.insert(i, &f);
        oracle.push((i, f));
        // Churn: occasionally remove a random earlier filter.
        if rng.gen_bool(0.2) && !oracle.is_empty() {
            let victim = oracle[rng.gen_range(0..oracle.len())].0;
            index.remove(&victim);
            oracle.retain(|(id, _)| *id != victim);
        }
    }

    for _ in 0..500 {
        let n = Notification::builder()
            .attr("service", services[rng.gen_range(0..services.len())])
            .attr("cost", rng.gen_range(-5i64..45))
            .attr("location", Value::Location(rng.gen_range(0u32..50)))
            .build();
        let mut got: Vec<u32> = index.matching_keys(&n).into_iter().copied().collect();
        got.sort_unstable();
        let mut expected: Vec<u32> = oracle
            .iter()
            .filter(|(_, f)| f.matches(&n))
            .map(|(id, _)| *id)
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected, "soak mismatch on {n}");
    }
}
