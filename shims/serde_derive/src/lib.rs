//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, and nothing in this
//! workspace actually serializes data through serde: the `#[derive]`
//! attributes in the seed code exist so downstream users *could* plug in real
//! serde.  These derive macros therefore expand to nothing; the matching
//! `serde` shim crate provides blanket implementations of the marker traits
//! so trait bounds keep working.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
