//! Identifiers for clients and subscriptions.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a client (producer or consumer) of the notification
/// service.
///
/// Clients keep their identity while roaming between border brokers; the
/// physical-mobility protocol uses the pair `(ClientId, Filter)` to identify
/// the subscription state that has to be relocated.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ClientId(u32);

impl ClientId {
    /// Creates a client id from its raw numeric identity.
    pub const fn new(raw: u32) -> Self {
        ClientId(raw)
    }

    /// The raw numeric identity (e.g. for wire encodings and displays).
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<u32> for ClientId {
    fn from(v: u32) -> Self {
        ClientId(v)
    }
}

/// Error parsing a [`ClientId`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseClientIdError(String);

impl fmt::Display for ParseClientIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid client id {:?} (expected \"c7\" or \"7\")",
            self.0
        )
    }
}

impl std::error::Error for ParseClientIdError {}

impl std::str::FromStr for ClientId {
    type Err = ParseClientIdError;

    /// Parses the [`Display`](fmt::Display) form `"c7"`, or a bare raw id
    /// `"7"` as written on a command line.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s.strip_prefix('c').unwrap_or(s);
        digits
            .parse::<u32>()
            .map(ClientId)
            .map_err(|_| ParseClientIdError(s.to_string()))
    }
}

/// Identifier of one location-dependent subscription of a client (a client
/// may hold several).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SubscriptionId {
    /// The owning client.
    pub client: ClientId,
    /// A client-local sequence number distinguishing its subscriptions.
    pub index: u32,
}

impl SubscriptionId {
    /// Creates a subscription id.
    pub fn new(client: ClientId, index: u32) -> Self {
        Self { client, index }
    }
}

impl fmt::Display for SubscriptionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#s{}", self.client, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(ClientId(3).to_string(), "c3");
        assert_eq!(SubscriptionId::new(ClientId(3), 1).to_string(), "c3#s1");
    }

    #[test]
    fn ordering_and_conversion() {
        assert!(ClientId(1) < ClientId(2));
        assert_eq!(ClientId::from(7u32), ClientId(7));
        let s1 = SubscriptionId::new(ClientId(1), 0);
        let s2 = SubscriptionId::new(ClientId(1), 1);
        assert!(s1 < s2);
    }

    #[test]
    fn parsing_roundtrips_display_and_accepts_bare_numbers() {
        assert_eq!("c7".parse::<ClientId>().unwrap(), ClientId(7));
        assert_eq!("7".parse::<ClientId>().unwrap(), ClientId(7));
        assert_eq!(
            ClientId(12).to_string().parse::<ClientId>().unwrap(),
            ClientId(12)
        );
        for bad in ["", "c", "cx", "n3", "-1", "c-1"] {
            let err = bad.parse::<ClientId>().unwrap_err();
            assert!(err.to_string().contains("invalid client id"), "{bad}");
        }
    }
}
