//! Observability core for the Rebeca mobility middleware.
//!
//! This crate is dependency-free on purpose: it sits *below* the simulator
//! (`rebeca-sim` embeds these types in its `Metrics` store) and *below* the
//! transport (`rebeca-net` ships [`StatusReport`]s over the wire), so it can
//! only depend on `std`.  Three pieces live here:
//!
//! * [`Histogram`] — a fixed-bucket log2 latency histogram: 64 buckets, one
//!   per bit width, mergeable across threads and nodes by plain bucket-wise
//!   addition, with p50/p95/p99 extraction.  Recording is two integer ops
//!   and an array increment — cheap enough for hot paths.
//! * [`ObsEvent`] / [`EventJournal`] — a bounded per-node structured event
//!   ring (relocation phase transitions, WAL appends and checkpoints, link
//!   dial/drop/heartbeat) with monotonic sequence numbers, so an operator
//!   tail can resume from the last sequence it saw and detect gaps.
//! * [`StatusReport`] / [`BrokerStatus`] / [`LinkStatus`] — the cluster
//!   status plane: the answer to a `StatusRequest` admin frame and the
//!   return value of the `Driver::status()` surface, identical in shape
//!   whether it comes from a live TCP broker or the deterministic
//!   simulator.
//!
//! All report types render themselves as JSON via hand-rolled `to_json`
//! methods (the workspace's `serde` is an offline no-op shim); the field
//! names are a stable operator interface documented in the README's
//! "Observability" section.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::fmt::Write as _;

/// Number of buckets in a [`Histogram`]: one per bit width of a `u64`.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Default capacity of an [`EventJournal`] ring.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1024;

/// A fixed-bucket log2 histogram over `u64` samples (latencies in
/// microseconds, sizes, …).
///
/// Bucket `0` holds the value `0`; bucket `i > 0` holds the values with bit
/// width `i`, i.e. the range `[2^(i-1), 2^i - 1]`.  Quantiles are reported
/// as the *upper bound* of the bucket containing the requested rank, so
/// they never under-estimate.  Two histograms merge by bucket-wise
/// addition, which is how per-thread and per-node recordings aggregate into
/// a cluster-wide view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

/// The bucket index a value falls into (its bit width, 0 for 0).
fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The inclusive upper bound of a bucket.
fn bucket_upper(index: usize) -> u64 {
    match index {
        0 => 0,
        63.. => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// The inclusive lower bound of a bucket.
fn bucket_lower(index: usize) -> u64 {
    match index {
        0 => 0,
        i => 1u64 << (i - 1),
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value).min(HISTOGRAM_BUCKETS - 1)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The raw per-bucket counts (index = bit width of the value).
    pub fn bucket_counts(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Rebuilds a histogram from raw bucket counts and a sample sum — the
    /// wire-decode constructor.  The sample count is derived.
    pub fn from_parts(buckets: [u64; HISTOGRAM_BUCKETS], sum: u64) -> Self {
        let count = buckets.iter().sum();
        Self {
            buckets,
            count,
            sum,
        }
    }

    /// Adds another histogram's samples into this one (bucket-wise).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The value below which a fraction `q` (in `0.0..=1.0`) of the samples
    /// fall, reported as the containing bucket's upper bound.  Returns 0
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(HISTOGRAM_BUCKETS - 1)
    }

    /// The median (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The 95th percentile (bucket upper bound).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// The 99th percentile (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The non-empty buckets as `(lower, upper, count)` triples.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_lower(i), bucket_upper(i), n))
    }

    /// Renders the histogram as a JSON object:
    /// `{"count":..,"sum":..,"p50":..,"p95":..,"p99":..,"buckets":[[lo,hi,n],..]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
            self.count,
            self.sum,
            self.p50(),
            self.p95(),
            self.p99()
        );
        for (i, (lo, hi, n)) in self.nonzero_buckets().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{lo},{hi},{n}]");
        }
        out.push_str("]}");
        out
    }
}

/// One structured journal entry: something observable happened on this node.
///
/// `kind` follows the same dotted naming convention as the counters
/// (`relocation.holding`, `wal.checkpoint`, `link.heartbeat`, …); `detail`
/// is free-form `key=value` text for the operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsEvent {
    /// Monotonic per-journal sequence number (gaps mean the ring evicted
    /// entries between two tails).
    pub seq: u64,
    /// Node-local timestamp in microseconds (virtual time under the
    /// simulator, wall time since process start under the TCP driver).
    pub at_micros: u64,
    /// Dotted event kind, e.g. `"relocation.settled"`.
    pub kind: String,
    /// Free-form `key=value` detail text.
    pub detail: String,
}

impl ObsEvent {
    /// Renders the event as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\":{},\"at_micros\":{},\"kind\":\"{}\",\"detail\":\"{}\"}}",
            self.seq,
            self.at_micros,
            json_escape(&self.kind),
            json_escape(&self.detail)
        )
    }
}

/// A bounded ring of [`ObsEvent`]s with monotonic sequence numbers.
///
/// The ring keeps the most recent `capacity` events; sequence numbers keep
/// counting across evictions, so a tailing client that remembers the last
/// sequence it saw can both resume (`events_after`) and detect that it
/// missed entries (a gap in the numbers).  A capacity of 0 disables the
/// journal entirely — [`EventJournal::record`] becomes a no-op and
/// [`EventJournal::enabled`] lets callers skip building the detail string,
/// which is the cheap guard the hot paths use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventJournal {
    events: VecDeque<ObsEvent>,
    capacity: usize,
    next_seq: u64,
}

impl Default for EventJournal {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_JOURNAL_CAPACITY)
    }
}

impl EventJournal {
    /// Creates a journal retaining at most `capacity` events (0 disables).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            events: VecDeque::new(),
            capacity,
            next_seq: 0,
        }
    }

    /// `true` when recording is enabled (capacity > 0).  Check this before
    /// formatting an expensive detail string.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Changes the retention capacity (0 disables and drops all entries).
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.events.len() > capacity {
            self.events.pop_front();
        }
    }

    /// Appends an event, evicting the oldest entry when full.  Returns the
    /// assigned sequence number, or `None` when the journal is disabled.
    pub fn record(
        &mut self,
        at_micros: u64,
        kind: impl Into<String>,
        detail: impl Into<String>,
    ) -> Option<u64> {
        if self.capacity == 0 {
            return None;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(ObsEvent {
            seq,
            at_micros,
            kind: kind.into(),
            detail: detail.into(),
        });
        Some(seq)
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &ObsEvent> {
        self.events.iter()
    }

    /// The retained events with a sequence number strictly greater than
    /// `seq` — the resumable-tail cursor.
    pub fn events_after(&self, seq: u64) -> impl Iterator<Item = &ObsEvent> {
        self.events.iter().filter(move |e| e.seq > seq)
    }

    /// The sequence number the next recorded event will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drops every retained event, keeping the capacity and the sequence
    /// counter (a tail spanning the clear still sees monotonic numbers).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Appends another journal's retained events into this one, assigning
    /// *fresh* sequence numbers from this journal (per-thread journals use
    /// independent counters, so the original numbers would collide).
    pub fn merge(&mut self, other: &EventJournal) {
        for event in other.events() {
            self.record(event.at_micros, event.kind.clone(), event.detail.clone());
        }
    }
}

/// Liveness of one broker↔peer link as seen from the reporting broker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkStatus {
    /// Peer broker index.
    pub peer: u64,
    /// `true` when the link currently has a live connection (always `true`
    /// under the in-process drivers, whose links cannot drop).
    pub connected: bool,
    /// Milliseconds since the peer was last heard from (heartbeat or any
    /// frame).  `None` when the peer has never been heard from, or under
    /// the in-process drivers, which have no heartbeats.
    pub last_heartbeat_age_ms: Option<u64>,
    /// Milliseconds since the link lost its connection (writer redialing or
    /// heartbeat silence past the liveness budget).  `None` while the link
    /// is connected — and always under the in-process drivers.
    pub down_since_ms: Option<u64>,
    /// Cumulative redial attempts the local writer has made towards this
    /// peer over the link's lifetime (0 under the in-process drivers).
    pub redial_attempts: u64,
}

impl LinkStatus {
    /// Renders the link status as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"peer\":{},\"connected\":{},\"last_heartbeat_age_ms\":{},\
             \"down_since_ms\":{},\"redial_attempts\":{}}}",
            self.peer,
            self.connected,
            json_opt_u64(self.last_heartbeat_age_ms),
            json_opt_u64(self.down_since_ms),
            self.redial_attempts
        )
    }
}

/// The status of one broker: routing and WAL state, relocation activity,
/// link liveness.  One entry per hosted broker in a [`StatusReport`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BrokerStatus {
    /// Broker index (== its node id in the cluster topology).
    pub broker: u64,
    /// Restart epoch: how many incarnations this broker has had.  Under the
    /// TCP driver this is the larger of the process `--epoch` flag and the
    /// WAL recovery generation; under the in-process drivers it is the
    /// recovery generation alone.
    pub restart_epoch: u64,
    /// WAL recovery generation (0 for a broker that never recovered).
    pub generation: u64,
    /// Number of entries in the content-based routing table.
    pub routing_entries: u64,
    /// Number of subscription subgroups (distinct filters) in the routing
    /// table — the size the predicate index actually pays.  The
    /// entries-per-subgroup ratio `routing_entries / routing_subgroups`
    /// is the table's compaction factor.
    pub routing_subgroups: u64,
    /// Number of live records in the handoff write-ahead log.
    pub wal_depth: u64,
    /// Records appended since the last checkpoint compaction.
    pub wal_since_checkpoint: u64,
    /// Milliseconds since the last checkpoint compaction (`None` when the
    /// broker never checkpointed).
    pub last_checkpoint_age_ms: Option<u64>,
    /// Active mobility counterparts (paper Section 4: stand-ins buffering
    /// for relocating clients).
    pub counterparts: u64,
    /// Notifications currently buffered for relocating clients.
    pub buffered_deliveries: u64,
    /// Relocations currently in flight at this broker.
    pub pending_relocations: u64,
    /// Publications currently retained for time-aware subscriptions
    /// (0 when retention is not configured).
    pub retained_publications: u64,
    /// Segments (archived + live) of the retention store (0 when retention
    /// is not configured).
    pub retained_segments: u64,
    /// Milliseconds since the oldest retained publication was appended
    /// (`None` when nothing is retained).
    pub oldest_retained_age_ms: Option<u64>,
    /// Counterpart streams expired by the lease sweep over this broker
    /// incarnation's lifetime.
    pub expired_leases: u64,
    /// The `mobility.*` counters, in name order.
    pub relocations: Vec<(String, u64)>,
    /// Relocation hand-off latency (ReSubscribe hold to replay settle), in
    /// microseconds.  Node-local: per-process under the TCP driver,
    /// cluster-wide under the in-process drivers (one shared metrics
    /// store); merge across brokers for the cluster view.
    pub handoff_latency_micros: Histogram,
    /// Per-link liveness, one entry per topology neighbour.
    pub links: Vec<LinkStatus>,
}

impl BrokerStatus {
    /// Renders the broker status as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"broker\":{},\"restart_epoch\":{},\"generation\":{},\"routing_entries\":{},\
             \"routing_subgroups\":{},\
             \"wal_depth\":{},\"wal_since_checkpoint\":{},\"last_checkpoint_age_ms\":{},\
             \"counterparts\":{},\"buffered_deliveries\":{},\"pending_relocations\":{},\
             \"retained_publications\":{},\"retained_segments\":{},\
             \"oldest_retained_age_ms\":{},\"expired_leases\":{},",
            self.broker,
            self.restart_epoch,
            self.generation,
            self.routing_entries,
            self.routing_subgroups,
            self.wal_depth,
            self.wal_since_checkpoint,
            json_opt_u64(self.last_checkpoint_age_ms),
            self.counterparts,
            self.buffered_deliveries,
            self.pending_relocations,
            self.retained_publications,
            self.retained_segments,
            json_opt_u64(self.oldest_retained_age_ms),
            self.expired_leases,
        );
        out.push_str("\"relocations\":{");
        for (i, (name, value)) in self.relocations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_escape(name), value);
        }
        let _ = write!(
            out,
            "}},\"handoff_latency_micros\":{},\"links\":[",
            self.handoff_latency_micros.to_json()
        );
        for (i, link) in self.links.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&link.to_json());
        }
        out.push_str("]}");
        out
    }
}

/// The answer to a status request: everything one driver (one process under
/// TCP deployment, the whole cluster under the in-process drivers) knows
/// about its hosted brokers, plus an optional slice of the event journal.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatusReport {
    /// Reporting driver's current time in microseconds.
    pub now_micros: u64,
    /// Total nodes hosted by the reporting driver (brokers *and* clients).
    pub node_count: u64,
    /// One status per hosted broker, in broker-index order.
    pub brokers: Vec<BrokerStatus>,
    /// Journal slice: empty unless the request asked to tail from a
    /// sequence cursor (`StatusRequest::events_after`).
    pub events: Vec<ObsEvent>,
}

impl StatusReport {
    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"now_micros\":{},\"node_count\":{},\"brokers\":[",
            self.now_micros, self.node_count
        );
        for (i, broker) in self.brokers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&broker.to_json());
        }
        out.push_str("],\"events\":[");
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&event.to_json());
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_opt_u64(v: Option<u64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_bit_width() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 1); // 0
        assert_eq!(counts[1], 1); // 1
        assert_eq!(counts[2], 2); // 2, 3
        assert_eq!(counts[3], 2); // 4, 7
        assert_eq!(counts[4], 1); // 8
        assert_eq!(counts[10], 1); // 1023
        assert_eq!(counts[11], 1); // 1024
        assert_eq!(counts[63], 1); // u64::MAX
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let mut h = Histogram::new();
        assert_eq!(h.p50(), 0);
        for _ in 0..98 {
            h.record(100); // bucket 7: [64, 127]
        }
        h.record(5_000); // bucket 13: [4096, 8191]
        h.record(100_000); // bucket 17: [65536, 131071]
        assert_eq!(h.p50(), 127);
        assert_eq!(h.p95(), 127);
        assert_eq!(h.p99(), 8191);
        assert_eq!(h.quantile(1.0), 131071);
    }

    #[test]
    fn histograms_merge_bucket_wise() {
        let mut a = Histogram::new();
        a.record(10);
        let mut b = Histogram::new();
        b.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 1020);
        assert_eq!(a.bucket_counts()[4], 2);
    }

    #[test]
    fn histogram_roundtrips_through_parts() {
        let mut h = Histogram::new();
        h.record(7);
        h.record(900);
        let again = Histogram::from_parts(*h.bucket_counts(), h.sum());
        assert_eq!(again, h);
    }

    #[test]
    fn journal_is_bounded_with_monotonic_seqs() {
        let mut j = EventJournal::with_capacity(3);
        for i in 0..5u64 {
            assert_eq!(j.record(i, "k", "d"), Some(i));
        }
        assert_eq!(j.len(), 3);
        let seqs: Vec<u64> = j.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]); // oldest evicted, numbering continues
        let tail: Vec<u64> = j.events_after(3).map(|e| e.seq).collect();
        assert_eq!(tail, vec![4]);
        assert_eq!(j.next_seq(), 5);
    }

    #[test]
    fn disabled_journal_records_nothing() {
        let mut j = EventJournal::with_capacity(0);
        assert!(!j.enabled());
        assert_eq!(j.record(1, "k", "d"), None);
        assert!(j.is_empty());
        j.set_capacity(2);
        assert!(j.enabled());
        assert_eq!(j.record(1, "k", "d"), Some(0));
    }

    #[test]
    fn journal_merge_renumbers() {
        let mut a = EventJournal::with_capacity(8);
        a.record(1, "a", "");
        let mut b = EventJournal::with_capacity(8);
        b.record(2, "b1", "");
        b.record(3, "b2", "");
        a.merge(&b);
        let seqs: Vec<u64> = a.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(a.events().nth(1).unwrap().kind, "b1");
    }

    #[test]
    fn report_renders_json() {
        let mut h = Histogram::new();
        h.record(100);
        let report = StatusReport {
            now_micros: 42,
            node_count: 4,
            brokers: vec![BrokerStatus {
                broker: 0,
                restart_epoch: 1,
                generation: 1,
                routing_entries: 3,
                routing_subgroups: 2,
                wal_depth: 2,
                wal_since_checkpoint: 2,
                last_checkpoint_age_ms: None,
                counterparts: 0,
                buffered_deliveries: 0,
                pending_relocations: 0,
                retained_publications: 5,
                retained_segments: 2,
                oldest_retained_age_ms: Some(30),
                expired_leases: 1,
                relocations: vec![("mobility.broker_restart".into(), 1)],
                handoff_latency_micros: h,
                links: vec![LinkStatus {
                    peer: 1,
                    connected: true,
                    last_heartbeat_age_ms: Some(12),
                    down_since_ms: None,
                    redial_attempts: 4,
                }],
            }],
            events: vec![ObsEvent {
                seq: 7,
                at_micros: 40,
                kind: "wal.checkpoint".into(),
                detail: "depth=1".into(),
            }],
        };
        let json = report.to_json();
        assert!(json.starts_with("{\"now_micros\":42,\"node_count\":4,"));
        assert!(json.contains("\"routing_subgroups\":2"));
        assert!(json.contains("\"last_checkpoint_age_ms\":null"));
        assert!(json.contains("\"retained_publications\":5"));
        assert!(json.contains("\"retained_segments\":2"));
        assert!(json.contains("\"oldest_retained_age_ms\":30"));
        assert!(json.contains("\"expired_leases\":1"));
        assert!(json.contains("\"last_heartbeat_age_ms\":12"));
        assert!(json.contains("\"down_since_ms\":null"));
        assert!(json.contains("\"redial_attempts\":4"));
        assert!(json.contains("\"mobility.broker_restart\":1"));
        assert!(json.contains("\"kind\":\"wal.checkpoint\""));
        assert!(json.contains("\"p50\":127"));
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
