//! Property-based tests for the filter model: covering is consistent with
//! matching, merging produces covers, and the covering relation behaves like
//! a preorder.

use proptest::prelude::*;
use rebeca_filter::{Constraint, Filter, Notification, Value};

/// Strategy for small integer values (shared domain so that constraints and
/// notifications actually interact).
fn small_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-20i64..20).prop_map(Value::Int),
        (0u32..10).prop_map(Value::Location),
        prop_oneof![
            Just("parking"),
            Just("weather"),
            Just("traffic"),
            Just("stock")
        ]
        .prop_map(|s| Value::Str(s.to_string())),
    ]
}

fn int_value() -> impl Strategy<Value = Value> {
    (-20i64..20).prop_map(Value::Int)
}

fn constraint() -> impl Strategy<Value = Constraint> {
    prop_oneof![
        small_value().prop_map(Constraint::Eq),
        int_value().prop_map(Constraint::Lt),
        int_value().prop_map(Constraint::Le),
        int_value().prop_map(Constraint::Gt),
        int_value().prop_map(Constraint::Ge),
        (-20i64..20, 0i64..20)
            .prop_map(|(lo, len)| Constraint::Between(Value::Int(lo), Value::Int(lo + len))),
        prop::collection::btree_set(small_value(), 1..5).prop_map(Constraint::In),
        Just(Constraint::Exists),
    ]
}

/// A filter over a small fixed attribute alphabet so that random filters and
/// notifications overlap frequently.
fn filter() -> impl Strategy<Value = Filter> {
    prop::collection::btree_map(
        prop_oneof![Just("a"), Just("b"), Just("c"), Just("location")],
        constraint(),
        0..4,
    )
    .prop_map(|m| {
        m.into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<Filter>()
    })
}

fn notification() -> impl Strategy<Value = Notification> {
    prop::collection::btree_map(
        prop_oneof![Just("a"), Just("b"), Just("c"), Just("location")],
        small_value(),
        0..5,
    )
    .prop_map(|m| {
        m.into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<Notification>()
    })
}

proptest! {
    /// Soundness of covering: if F1 covers F2, every notification matched by
    /// F2 is matched by F1.  This is the property the routing correctness of
    /// covering/merging routing depends on.
    #[test]
    fn covering_implies_match_inclusion(f1 in filter(), f2 in filter(), n in notification()) {
        if f1.covers(&f2) && f2.matches(&n) {
            prop_assert!(f1.matches(&n), "{f1} covers {f2} but does not match {n}");
        }
    }

    /// Covering is reflexive.
    #[test]
    fn covering_is_reflexive(f in filter()) {
        prop_assert!(f.covers(&f));
    }

    /// Covering is transitive.
    #[test]
    fn covering_is_transitive(f1 in filter(), f2 in filter(), f3 in filter()) {
        if f1.covers(&f2) && f2.covers(&f3) {
            prop_assert!(f1.covers(&f3));
        }
    }

    /// The universal filter covers and matches everything.
    #[test]
    fn universal_filter_is_top(f in filter(), n in notification()) {
        prop_assert!(Filter::universal().covers(&f));
        prop_assert!(Filter::universal().matches(&n));
    }

    /// A perfect merger covers both of its inputs, and never matches a
    /// notification that neither input matches *unless* it had to widen —
    /// for the constraint kinds we merge (covers, finite sets, adjacent
    /// integer intervals, complementary half-lines) the merger is exact, so
    /// it matches exactly the union.
    #[test]
    fn merging_produces_exact_covers(f1 in filter(), f2 in filter(), n in notification()) {
        if let Some(m) = f1.try_merge(&f2) {
            prop_assert!(m.covers(&f1), "merger {m} must cover {f1}");
            prop_assert!(m.covers(&f2), "merger {m} must cover {f2}");
            if m.matches(&n) {
                // Exactness: the merger accepts only notifications accepted
                // by at least one of the inputs.
                prop_assert!(f1.matches(&n) || f2.matches(&n),
                    "merger {m} of {f1} and {f2} wrongly matches {n}");
            }
        }
    }

    /// If two filters do not overlap, no notification matches both.
    #[test]
    fn non_overlap_means_disjoint(f1 in filter(), f2 in filter(), n in notification()) {
        if !f1.overlaps(&f2) {
            prop_assert!(!(f1.matches(&n) && f2.matches(&n)),
                "{f1} and {f2} reported disjoint but both match {n}");
        }
    }

    // (The FilterSet preservation property moved to `rebeca-matcher`'s
    // equivalence tests together with the FilterSet implementation.)

    /// Constraint-level covering soundness over the integer domain.
    #[test]
    fn constraint_covering_sound(c1 in constraint(), c2 in constraint(), v in small_value()) {
        if c1.covers(&c2) && c2.matches_value(&v) {
            prop_assert!(c1.matches_value(&v), "{c1} covers {c2} but rejects {v}");
        }
    }

    /// Constraint-level overlap soundness: disjointness is real.
    #[test]
    fn constraint_overlap_sound(c1 in constraint(), c2 in constraint(), v in small_value()) {
        if !c1.overlaps(&c2) {
            prop_assert!(!(c1.matches_value(&v) && c2.matches_value(&v)));
        }
    }
}
